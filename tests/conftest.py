"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PTuckerConfig
from repro.data import generate_movielens_like, planted_tucker_tensor, random_sparse_tensor
from repro.tensor import SparseTensor


def assert_bitwise_equal(a, b, context: str = "") -> None:
    """Assert two arrays are byte-for-byte identical, with diagnostics.

    ``np.array_equal`` treats ``-0.0 == 0.0`` and fails on NaN; this
    helper compares dtype, shape and raw bytes, and on mismatch reports
    the first differing element (by unravelled index) alongside both
    values — far more actionable than a bare boolean assert.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    prefix = f"{context}: " if context else ""
    assert a.dtype == b.dtype, f"{prefix}dtype {a.dtype} != {b.dtype}"
    assert a.shape == b.shape, f"{prefix}shape {a.shape} != {b.shape}"
    a_c = np.ascontiguousarray(a)
    b_c = np.ascontiguousarray(b)
    if a_c.tobytes() == b_c.tobytes():
        return
    # Locate the first differing element for the failure message.
    a_bytes = a_c.view(np.uint8).reshape(-1)
    b_bytes = b_c.view(np.uint8).reshape(-1)
    first_byte = int(np.nonzero(a_bytes != b_bytes)[0][0])
    flat_index = first_byte // max(a.dtype.itemsize, 1)
    position = np.unravel_index(flat_index, a.shape) if a.shape else ()
    raise AssertionError(
        f"{prefix}arrays differ; first difference at index {position}: "
        f"{a_c.reshape(-1)[flat_index]!r} != {b_c.reshape(-1)[flat_index]!r}"
    )


@pytest.fixture
def bitwise():
    """The :func:`assert_bitwise_equal` helper as a fixture."""
    return assert_bitwise_equal


@pytest.fixture
def rng():
    """A seeded random generator for test-local randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_dense_tensor(rng):
    """A small dense 3-way array for exact comparisons."""
    return rng.uniform(0.0, 1.0, size=(4, 5, 3))


@pytest.fixture
def small_sparse_tensor():
    """A tiny handcrafted sparse tensor with known entries."""
    entries = [
        ((0, 0, 0), 1.0),
        ((1, 2, 0), 2.5),
        ((2, 1, 1), -0.5),
        ((3, 3, 2), 4.0),
        ((1, 1, 1), 0.75),
    ]
    return SparseTensor.from_entries(entries, shape=(4, 4, 3))


@pytest.fixture
def planted_small():
    """A small planted Tucker tensor with low noise (fast to factorize)."""
    return planted_tucker_tensor(
        shape=(20, 18, 16), ranks=(3, 3, 3), nnz=1500, noise_level=0.01, seed=42
    )


@pytest.fixture
def planted_4way():
    """A small planted 4-way tensor."""
    return planted_tucker_tensor(
        shape=(12, 10, 8, 6), ranks=(2, 2, 2, 2), nnz=900, noise_level=0.01, seed=7
    )


@pytest.fixture
def random_small():
    """A small random sparse tensor (no planted structure)."""
    return random_sparse_tensor((15, 15, 15), nnz=600, seed=3)


@pytest.fixture
def movielens_tiny():
    """A tiny MovieLens-style dataset for discovery tests."""
    return generate_movielens_like(
        n_users=60, n_movies=40, n_years=6, n_hours=8, n_ratings=2500, seed=11
    )


@pytest.fixture
def fast_config():
    """A config that converges quickly on the small fixtures."""
    return PTuckerConfig(ranks=(3, 3, 3), max_iterations=5, seed=0)
