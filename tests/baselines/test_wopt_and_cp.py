"""Tests for Tucker-wOpt and the CP-ALS reference."""

import numpy as np
import pytest

from repro.baselines import CpAls, TuckerWopt
from repro.core import PTuckerConfig
from repro.data import planted_tucker_tensor
from repro.exceptions import OutOfMemoryError
from repro.tensor import SparseTensor


class TestTuckerWopt:
    def test_loss_decreases(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=8, seed=0, tolerance=0.0)
        result = TuckerWopt(config).fit(planted_small.tensor)
        assert result.trace.errors[-1] < result.trace.errors[0]

    def test_observed_entry_objective_ignores_missing_cells(self):
        """wOpt must fit the observed entries without being dragged to zero."""
        planted = planted_tucker_tensor(
            (15, 15, 15), (2, 2, 2), nnz=600, noise_level=0.0, seed=4
        )
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=25, seed=0, tolerance=0.0)
        result = TuckerWopt(config).fit(planted.tensor)
        predictions = result.predict_tensor(planted.tensor)
        observed_mean = float(np.mean(planted.tensor.values))
        assert float(np.mean(predictions)) > 0.5 * observed_mean

    def test_dense_intermediates_tracked(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        result = TuckerWopt(config).fit(planted_small.tensor)
        cells = int(np.prod(planted_small.tensor.shape))
        assert result.memory.peak_bytes >= 3 * cells * 8

    def test_oom_on_tight_budget(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=2, seed=0, memory_budget_bytes=1000
        )
        with pytest.raises(OutOfMemoryError):
            TuckerWopt(config).fit(planted_small.tensor)

    def test_memory_exceeds_ptucker(self, planted_small):
        from repro.core import PTucker

        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        wopt = TuckerWopt(config).fit(planted_small.tensor)
        ptucker = PTucker(config).fit(planted_small.tensor)
        assert wopt.memory.peak_bytes > 100 * ptucker.memory.peak_bytes


class TestCpAls:
    def test_error_decreases_and_converges(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=10, seed=0, tolerance=0.0)
        result = CpAls(config).fit(planted_small.tensor)
        errors = result.trace.errors
        assert errors[-1] < 0.5 * errors[0]

    def test_core_is_superdiagonal(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=3, seed=0)
        result = CpAls(config).fit(planted_small.tensor)
        core = result.core
        for index in np.ndindex(*core.shape):
            if len(set(index)) != 1:
                assert core[index] == 0.0

    def test_rejects_mixed_ranks(self, planted_small):
        config = PTuckerConfig(ranks=(2, 3, 2), max_iterations=2, seed=0)
        with pytest.raises(ValueError):
            CpAls(config).fit(planted_small.tensor)

    def test_factor_columns_unit_norm(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=4, seed=0)
        result = CpAls(config).fit(planted_small.tensor)
        for factor in result.factors:
            norms = np.linalg.norm(factor, axis=0)
            np.testing.assert_allclose(norms, np.ones_like(norms), rtol=1e-6)

    def test_recovers_planted_cp_structure(self, rng):
        """A rank-1 planted tensor should be fit almost exactly."""
        dims = (12, 10, 8)
        vectors = [rng.uniform(0.5, 1.0, size=d) for d in dims]
        dense = np.einsum("i,j,k->ijk", *vectors)
        tensor = SparseTensor.from_dense(dense, keep_zeros=True)
        config = PTuckerConfig(
            ranks=(1, 1, 1),
            max_iterations=10,
            seed=0,
            tolerance=0.0,
            regularization=1e-9,
        )
        result = CpAls(config).fit(tensor)
        assert result.trace.errors[-1] < 1e-5 * tensor.norm()
