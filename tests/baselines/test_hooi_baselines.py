"""Tests for the HOOI-style baselines: Tucker-ALS, Tucker-CSF and S-HOT."""

import numpy as np
import pytest

from repro.baselines import SHot, TuckerAls, TuckerCsf
from repro.baselines.base import leading_left_singular_vectors
from repro.core import PTuckerConfig
from repro.data import planted_tucker_tensor
from repro.tensor import SparseTensor


@pytest.fixture
def dense_planted():
    """A fully observed planted tensor: HOOI's zero-fill semantics are exact here."""
    planted = planted_tucker_tensor(
        (12, 11, 10), (3, 3, 3), nnz=12 * 11 * 10, noise_level=0.0, seed=5
    )
    return planted


@pytest.fixture
def hooi_config():
    return PTuckerConfig(ranks=(3, 3, 3), max_iterations=6, seed=0, tolerance=1e-8)


class TestLeadingSingularVectors:
    def test_matrix_path_matches_numpy(self, rng):
        matrix = rng.standard_normal((20, 6))
        u_full, _, _ = np.linalg.svd(matrix, full_matrices=False)
        u_top = leading_left_singular_vectors(matrix, None, 3)
        # Columns may differ by sign; compare projectors.
        np.testing.assert_allclose(
            u_top @ u_top.T, u_full[:, :3] @ u_full[:, :3].T, atol=1e-8
        )

    def test_gram_path_matches_matrix_path(self, rng):
        matrix = rng.standard_normal((30, 5))
        gram = matrix.T @ matrix
        direct = leading_left_singular_vectors(matrix, None, 2)
        via_gram = leading_left_singular_vectors(
            None, gram, 2, producer=lambda v: matrix @ v
        )
        np.testing.assert_allclose(
            direct @ direct.T, via_gram @ via_gram.T, atol=1e-8
        )

    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            leading_left_singular_vectors(None, None, 2)


class TestAgreementBetweenBaselines:
    def test_all_three_agree_on_errors(self, random_small, hooi_config):
        """CSF and S-HOT are computational reorganisations of Tucker-ALS."""
        errors = {}
        for cls in (TuckerAls, TuckerCsf, SHot):
            result = cls(hooi_config).fit(random_small)
            errors[cls.__name__] = result.trace.errors
        np.testing.assert_allclose(
            errors["TuckerAls"], errors["TuckerCsf"], rtol=1e-5
        )
        np.testing.assert_allclose(errors["TuckerAls"], errors["SHot"], rtol=1e-5)

    def test_factors_are_orthonormal(self, random_small, hooi_config):
        for cls in (TuckerAls, TuckerCsf, SHot):
            result = cls(hooi_config).fit(random_small)
            assert result.orthogonality_defect() < 1e-8


class TestRecoveryOnFullyObservedData:
    def test_tucker_als_fits_dense_low_rank_tensor(self, dense_planted, hooi_config):
        result = TuckerAls(hooi_config).fit(dense_planted.tensor)
        final_error = result.trace.errors[-1]
        norm = dense_planted.tensor.norm()
        assert final_error < 0.02 * norm

    def test_shot_matches_tucker_als_on_dense_data(self, dense_planted, hooi_config):
        als = TuckerAls(hooi_config).fit(dense_planted.tensor)
        shot = SHot(hooi_config).fit(dense_planted.tensor)
        assert shot.trace.errors[-1] == pytest.approx(als.trace.errors[-1], rel=1e-4)


class TestMemoryProfiles:
    def test_tucker_als_intermediate_larger_than_shot(self, hooi_config):
        # A tensor with one long mode makes the dense Y_(n) clearly larger than
        # the S-HOT Gram matrix.
        planted = planted_tucker_tensor(
            (400, 12, 12), (3, 3, 3), nnz=3000, noise_level=0.0, seed=2
        )
        als = TuckerAls(hooi_config).fit(planted.tensor)
        shot = SHot(hooi_config).fit(planted.tensor)
        assert als.memory.peak_bytes > shot.memory.peak_bytes

    def test_oom_budget_stops_tucker_als(self, hooi_config):
        planted = planted_tucker_tensor(
            (3000, 10, 10), (3, 3, 3), nnz=2000, noise_level=0.0, seed=2
        )
        from repro.exceptions import OutOfMemoryError

        config = hooi_config.with_updates(memory_budget_bytes=10_000)
        with pytest.raises(OutOfMemoryError):
            TuckerAls(config).fit(planted.tensor)


class TestZeroFillSemantics:
    def test_sparse_observations_pull_predictions_to_zero(self, hooi_config):
        """With few observed entries, zero-fill baselines underestimate values."""
        planted = planted_tucker_tensor(
            (30, 30, 30), (3, 3, 3), nnz=500, noise_level=0.0, seed=3
        )
        result = TuckerAls(hooi_config).fit(planted.tensor)
        predictions = result.predict_tensor(planted.tensor)
        observed_mean = float(np.mean(planted.tensor.values))
        assert float(np.mean(predictions)) < observed_mean
