"""Tests for the shared HOOI baseline machinery (core projection, config reuse)."""

import numpy as np
import pytest

from repro.baselines import TuckerAls
from repro.baselines.base import HooiBaseline
from repro.core import PTuckerConfig
from repro.tensor import SparseTensor, multi_mode_product, tucker_reconstruct


class TestCoreFromFactors:
    def test_matches_dense_projection(self, rng):
        """The streaming core computation equals X x_1 A^T ... x_N A^T on dense data."""
        dense = rng.uniform(size=(6, 5, 4))
        tensor = SparseTensor.from_dense(dense, keep_zeros=True)
        factors = [np.linalg.qr(rng.standard_normal((d, 2)))[0] for d in dense.shape]
        baseline = TuckerAls(PTuckerConfig(ranks=(2, 2, 2)))
        core = baseline._core_from_factors(tensor, factors)
        expected = multi_mode_product(dense, factors, transpose=True)
        np.testing.assert_allclose(core, expected, atol=1e-10)

    def test_orthonormal_factors_give_best_core(self, rng):
        """For fixed orthonormal factors the projected core minimises the dense error."""
        dense = rng.uniform(size=(6, 5, 4))
        tensor = SparseTensor.from_dense(dense, keep_zeros=True)
        factors = [np.linalg.qr(rng.standard_normal((d, 2)))[0] for d in dense.shape]
        baseline = TuckerAls(PTuckerConfig(ranks=(2, 2, 2)))
        core = baseline._core_from_factors(tensor, factors)
        best_error = np.linalg.norm(dense - tucker_reconstruct(core, factors))
        perturbed = core + rng.normal(0, 0.1, core.shape)
        worse_error = np.linalg.norm(dense - tucker_reconstruct(perturbed, factors))
        assert best_error <= worse_error + 1e-12


class TestBaseClassContract:
    def test_abstract_update_raises(self, random_small):
        baseline = HooiBaseline(PTuckerConfig(ranks=(2, 2, 2), max_iterations=1))
        with pytest.raises(NotImplementedError):
            baseline.fit(random_small)

    def test_initial_factors_orthonormal(self, random_small, rng):
        baseline = TuckerAls(PTuckerConfig(ranks=(3, 3, 3)))
        factors = baseline._initial_factors(random_small, (3, 3, 3), rng)
        for factor in factors:
            np.testing.assert_allclose(factor.T @ factor, np.eye(3), atol=1e-10)

    def test_default_config_used_when_none_given(self):
        baseline = TuckerAls()
        assert baseline.config.max_iterations == 20
