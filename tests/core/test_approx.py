"""Tests for P-Tucker-Approx and the partial reconstruction error R(β)."""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerApprox, PTuckerConfig
from repro.core.approx import partial_reconstruction_errors, truncate_noisy_entries
from repro.metrics.errors import reconstruction_error
from repro.tensor import sparse_reconstruct


@pytest.fixture
def fitted_small(planted_small):
    config = PTuckerConfig(
        ranks=(3, 3, 3), max_iterations=3, seed=0, orthogonalize=False
    )
    result = PTucker(config).fit(planted_small.tensor)
    return planted_small.tensor, result


class TestPartialReconstructionError:
    def test_matches_direct_definition(self, fitted_small):
        """R(β) equals error(with β) - error(without β), entry by entry."""
        tensor, result = fitted_small
        scores = partial_reconstruction_errors(tensor, result.core, result.factors)
        full_sq = reconstruction_error(tensor, result.core, result.factors) ** 2
        flat = result.core.reshape(-1)
        for position in (0, 5, 13, 26):
            without = flat.copy()
            without[position] = 0.0
            err_without = (
                reconstruction_error(
                    tensor, without.reshape(result.core.shape), result.factors
                )
                ** 2
            )
            np.testing.assert_allclose(
                scores[position], full_sq - err_without, rtol=1e-6, atol=1e-8
            )

    def test_blocked_equals_unblocked(self, fitted_small):
        tensor, result = fitted_small
        full = partial_reconstruction_errors(tensor, result.core, result.factors)
        blocked = partial_reconstruction_errors(
            tensor, result.core, result.factors, block_size=37
        )
        np.testing.assert_allclose(full, blocked, atol=1e-8)

    def test_zero_core_entry_has_zero_score(self, fitted_small):
        tensor, result = fitted_small
        core = result.core.copy()
        core.reshape(-1)[4] = 0.0
        scores = partial_reconstruction_errors(tensor, core, result.factors)
        assert scores[4] == pytest.approx(0.0, abs=1e-12)


class TestTruncation:
    def test_removes_expected_fraction(self, fitted_small):
        tensor, result = fitted_small
        truncated, removed = truncate_noisy_entries(
            tensor, result.core, result.factors, truncation_rate=0.25
        )
        n_nonzero = int(np.count_nonzero(result.core))
        assert removed.size == int(np.floor(0.25 * n_nonzero))
        assert np.count_nonzero(truncated) == n_nonzero - removed.size

    def test_removes_highest_r_entries(self, fitted_small):
        tensor, result = fitted_small
        scores = partial_reconstruction_errors(tensor, result.core, result.factors)
        _, removed = truncate_noisy_entries(
            tensor, result.core, result.factors, truncation_rate=0.2
        )
        kept = np.setdiff1d(np.arange(result.core.size), removed)
        assert scores[removed].min() >= scores[kept].max() - 1e-9

    def test_small_rate_removes_nothing_for_tiny_core(self, planted_small, rng):
        tensor = planted_small.tensor
        core = rng.uniform(size=(2, 2, 2))
        factors = [rng.uniform(size=(d, 2)) for d in tensor.shape]
        _, removed = truncate_noisy_entries(tensor, core, factors, truncation_rate=0.05)
        assert removed.size == 0

    def test_all_zero_core(self, planted_small):
        tensor = planted_small.tensor
        core = np.zeros((3, 3, 3))
        factors = [np.ones((d, 3)) for d in tensor.shape]
        truncated, removed = truncate_noisy_entries(tensor, core, factors, 0.5)
        assert removed.size == 0
        assert np.all(truncated == 0.0)


class TestPTuckerApprox:
    def test_core_shrinks_monotonically(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3),
            max_iterations=5,
            truncation_rate=0.2,
            seed=0,
            tolerance=0.0,
            orthogonalize=False,
        )
        result = PTuckerApprox(config).fit(planted_small.tensor)
        core_sizes = [r.core_nnz for r in result.trace.records]
        assert all(b <= a for a, b in zip(core_sizes, core_sizes[1:]))
        assert core_sizes[-1] < core_sizes[0]

    def test_accuracy_stays_close_to_exact(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=6, truncation_rate=0.2, seed=0, tolerance=0.0
        )
        exact = PTucker(config).fit(planted_small.tensor)
        approx = PTuckerApprox(config).fit(planted_small.tensor)
        assert approx.trace.errors[-1] <= 3.0 * exact.trace.errors[-1]

    def test_removed_counts_recorded(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=3, truncation_rate=0.3, seed=0, tolerance=0.0
        )
        solver = PTuckerApprox(config)
        solver.fit(planted_small.tensor)
        assert len(solver.removed_per_iteration) == 3
        assert solver.removed_per_iteration[0] > 0

    def test_final_core_is_sparse(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3),
            max_iterations=5,
            truncation_rate=0.3,
            seed=0,
            tolerance=0.0,
            orthogonalize=False,
        )
        result = PTuckerApprox(config).fit(planted_small.tensor)
        assert result.core_nnz < 27
