"""Unit tests for the columnar narrow index blocks (:mod:`repro.columns`)."""

import pickle

import numpy as np
import pytest

from repro.columns import (
    IndexColumns,
    as_index_block,
    index_dtype_for_max,
    index_dtypes_for_shape,
)
from repro.exceptions import ShapeError


@pytest.fixture
def block():
    return IndexColumns(
        [
            np.arange(10, dtype=np.uint8),
            np.arange(10, 20, dtype=np.uint16),
            np.arange(20, 30, dtype=np.int64),
        ]
    )


class TestIndexColumns:
    def test_shape_and_dtypes(self, block):
        assert block.shape == (10, 3)
        assert block.ndim == 2
        assert len(block) == 10
        assert block.dtypes == (
            np.dtype(np.uint8),
            np.dtype(np.uint16),
            np.dtype(np.int64),
        )
        assert block.nbytes == 10 * (1 + 2 + 8)

    def test_full_column_access_is_a_view(self, block):
        column = block[:, 1]
        assert column.dtype == np.uint16
        assert column is block.columns[1]  # no copy, not even a view object

    def test_row_slice_keeps_views(self, block):
        sliced = block[2:5]
        assert isinstance(sliced, IndexColumns)
        assert sliced.shape == (3, 3)
        assert sliced.columns[0].base is block.columns[0]
        np.testing.assert_array_equal(sliced[:, 2], [22, 23, 24])

    def test_partial_2d_access(self, block):
        np.testing.assert_array_equal(block[2:5, 1], [12, 13, 14])
        row = block[3]
        assert row.dtype == np.int64
        np.testing.assert_array_equal(row, [3, 13, 23])

    def test_fancy_row_gather(self, block):
        picked = block[np.asarray([7, 0, 7])]
        assert isinstance(picked, IndexColumns)
        assert picked.dtypes == block.dtypes
        np.testing.assert_array_equal(picked[:, 0], [7, 0, 7])

    def test_asarray_materialises_int64_matrix(self, block):
        matrix = np.asarray(block)
        assert matrix.shape == (10, 3)
        assert matrix.dtype == np.int64
        np.testing.assert_array_equal(matrix[:, 1], np.arange(10, 20))

    def test_as_index_block_passthrough(self, block):
        assert as_index_block(block) is block
        matrix = [[1, 2], [3, 4]]
        out = as_index_block(matrix)
        assert isinstance(out, np.ndarray)

    def test_from_matrix_narrows_by_shape(self):
        matrix = np.asarray([[0, 5], [3, 70_000]], dtype=np.int64)
        block = IndexColumns.from_matrix(matrix, shape=(4, 70_001))
        assert block.dtypes == (np.dtype(np.uint8), np.dtype(np.uint32))
        np.testing.assert_array_equal(np.asarray(block), matrix)
        # Without a shape the columns narrow to their own maxima.
        assert IndexColumns.from_matrix(matrix).dtypes == (
            np.dtype(np.uint8),
            np.dtype(np.uint32),
        )

    def test_validation(self):
        with pytest.raises(ShapeError):
            IndexColumns([])
        with pytest.raises(ShapeError):
            IndexColumns([np.zeros((2, 2), dtype=np.int64)])
        with pytest.raises(ShapeError):
            IndexColumns([np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64)])
        with pytest.raises(ShapeError):
            IndexColumns([np.zeros(2, dtype=np.float64)])
        with pytest.raises(ShapeError):
            IndexColumns.from_matrix(np.zeros((2, 3), dtype=np.int64), shape=(4, 4))

    def test_pickle_round_trip(self, block):
        """Process-pool workers receive gathered blocks by pickle."""
        clone = pickle.loads(pickle.dumps(block))
        assert clone.dtypes == block.dtypes
        np.testing.assert_array_equal(np.asarray(clone), np.asarray(block))

    def test_numpy_fancy_indexing_accepts_narrow_columns(self, block):
        """The property every kernel gather relies on."""
        table = np.arange(200.0).reshape(20, 10)
        gathered = table[block[:, 1] - 10]
        np.testing.assert_array_equal(gathered[:, 0], table[np.arange(10), 0])


class TestDtypeHelpers:
    def test_index_dtype_for_max(self):
        assert index_dtype_for_max(255) == np.dtype(np.uint8)
        assert index_dtype_for_max(256) == np.dtype(np.uint16)
        assert index_dtype_for_max(2**32 - 1) == np.dtype(np.uint32)
        assert index_dtype_for_max(2**32) == np.dtype(np.int64)

    def test_index_dtypes_for_shape_policies(self):
        shape = (10, 300, 100_000)
        assert index_dtypes_for_shape(shape) == (
            np.dtype(np.uint8),
            np.dtype(np.uint16),
            np.dtype(np.uint32),
        )
        assert index_dtypes_for_shape(shape, "wide") == (np.dtype(np.int64),) * 3


class TestAutoBackendWithNarrowBlocks:
    def test_autotuned_dispatch_consumes_columns(self, rng):
        """backend="auto" calibrates over narrow blocks without widening."""
        from repro.core.row_update import build_mode_context, update_factor_mode
        from repro.data import random_sparse_tensor

        tensor = random_sparse_tensor((30, 20, 10), nnz=400, seed=2)
        core = rng.uniform(-0.5, 0.5, size=(3, 3, 3))
        factors = [
            rng.uniform(-0.5, 0.5, size=(dim, 3)) for dim in tensor.shape
        ]
        results = {}
        for policy in ("auto", "wide"):
            context = build_mode_context(tensor, 0, index_dtype=policy)
            fresh = [np.array(f, copy=True) for f in factors]
            update_factor_mode(
                tensor, fresh, core, 0, 0.01, context=context, backend="auto"
            )
            results[policy] = fresh[0]
        np.testing.assert_array_equal(results["auto"], results["wide"])
