"""Autotuner unit tests: measured selection, cache hits, JSON persistence."""

import json

import numpy as np
import pytest

from repro.core.row_update import update_factor_mode
from repro.kernels.backends import (
    AutoBackend,
    Autotuner,
    block_size_bucket,
    shape_class_key,
)
from repro.kernels.backends.autotune import default_auto_backend
from repro.tensor import SparseTensor


class StubTimer:
    """Deterministic timer: scripted seconds per backend name, call counting."""

    def __init__(self, seconds):
        self.seconds = dict(seconds)
        self.calls = 0

    def __call__(self, kernel, args, repeats):
        self.calls += 1
        name = getattr(kernel, "stub_name")
        return self.seconds[name], kernel(*args)


def _named_kernel(name, scale):
    def kernel(indices, values, starts):
        return (
            np.full((starts.shape[0], 2, 2), scale, dtype=np.float64),
            np.full((starts.shape[0], 2), scale, dtype=np.float64),
        )

    kernel.stub_name = name
    return kernel


CALIBRATION = (
    np.zeros((6, 3), dtype=np.int64),
    np.ones(6),
    np.asarray([0, 2, 4], dtype=np.int64),
)


def test_shape_class_key_buckets_block_sizes():
    assert block_size_bucket(0) == 0
    assert block_size_bucket(1) == 1
    assert block_size_bucket(90_000) == block_size_bucket(100_000) == 1 << 17
    assert shape_class_key(3, (10, 10, 10), 100_000) == "order=3|ranks=10x10x10|block=131072"
    assert shape_class_key(3, (10, 10, 10), 1_000) != shape_class_key(
        3, (10, 10, 10), 100_000
    )


def test_pick_selects_measured_fastest_never_slower():
    timer = StubTimer({"numpy": 2.0, "threaded": 5.0})
    tuner = Autotuner(timer=timer)
    candidates = {
        "numpy": _named_kernel("numpy", 1.0),
        "threaded": _named_kernel("threaded", 2.0),
    }
    winner, result = tuner.pick("k1", candidates, CALIBRATION)
    assert winner == "numpy"  # threaded measured slower: never selected
    assert result is not None and result[0][0, 0, 0] == 1.0
    assert tuner.timings("k1") == {"numpy": 2.0, "threaded": 5.0}


def test_cache_hit_skips_re_timing():
    timer = StubTimer({"numpy": 1.0, "threaded": 0.5})
    tuner = Autotuner(timer=timer)
    candidates = {
        "numpy": _named_kernel("numpy", 1.0),
        "threaded": _named_kernel("threaded", 2.0),
    }
    winner, _ = tuner.pick("k1", candidates, CALIBRATION)
    assert winner == "threaded"
    calls_after_first = timer.calls
    assert calls_after_first == 2  # one measurement per candidate

    winner2, result2 = tuner.pick("k1", candidates, CALIBRATION)
    assert winner2 == "threaded"
    assert result2 is None  # cache hit: caller runs the winner itself
    assert timer.calls == calls_after_first  # no re-timing

    # A different shape class calibrates independently.
    tuner.pick("k2", candidates, CALIBRATION)
    assert timer.calls == calls_after_first + 2


def test_json_cache_roundtrip(tmp_path):
    path = str(tmp_path / "autotune.json")
    timer = StubTimer({"numpy": 3.0, "threaded": 1.0})
    tuner = Autotuner(cache_path=path, timer=timer)
    tuner.pick(
        "k1",
        {
            "numpy": _named_kernel("numpy", 1.0),
            "threaded": _named_kernel("threaded", 2.0),
        },
        CALIBRATION,
    )
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["choices"] == {"k1": "threaded"}

    # A fresh tuner (new process in real life) reuses the persisted winner
    # without ever invoking its timer.
    fresh_timer = StubTimer({"numpy": 0.1, "threaded": 9.0})
    fresh = Autotuner(cache_path=path, timer=fresh_timer)
    winner, result = fresh.pick(
        "k1",
        {
            "numpy": _named_kernel("numpy", 1.0),
            "threaded": _named_kernel("threaded", 2.0),
        },
        CALIBRATION,
    )
    assert winner == "threaded"
    assert result is None
    assert fresh_timer.calls == 0


def test_corrupt_cache_file_is_ignored(tmp_path):
    path = tmp_path / "autotune.json"
    path.write_text("{not json")
    tuner = Autotuner(cache_path=str(path))
    assert tuner.lookup("anything") is None


def test_cached_winner_outside_candidates_recalibrates():
    timer = StubTimer({"numpy": 1.0})
    tuner = Autotuner(timer=timer)
    tuner._choices["k1"] = "numba"  # e.g. cache written on a numba host
    winner, _ = tuner.pick(
        "k1", {"numpy": _named_kernel("numpy", 1.0)}, CALIBRATION
    )
    assert winner == "numpy"
    assert timer.calls == 1


def test_auto_backend_update_matches_numpy():
    rng = np.random.default_rng(4)
    indices = np.stack([rng.integers(0, d, 500) for d in (12, 10, 8)], axis=1)
    tensor = SparseTensor(
        indices.astype(np.int64), rng.uniform(0.1, 1.0, 500), (12, 10, 8)
    ).deduplicate()
    factors = [rng.uniform(-1, 1, (d, 3)) for d in tensor.shape]
    core = rng.uniform(-1, 1, (3, 3, 3))
    reference = [f.copy() for f in factors]
    update_factor_mode(tensor, reference, core, 0, 0.01, backend="numpy")
    auto = [f.copy() for f in factors]
    update_factor_mode(
        tensor, auto, core, 0, 0.01, backend=AutoBackend(tuner=Autotuner())
    )
    np.testing.assert_allclose(auto[0], reference[0], atol=1e-12, rtol=1e-12)


def test_auto_backend_calibrates_once_per_shape_class():
    timer = StubTimer({"numpy": 1.0, "threaded": 2.0})
    tuner = Autotuner(timer=timer)

    # Patch candidate kernels through a custom AutoBackend whose candidate
    # set is stubbed at the tuner level: drive pick() directly with blocks
    # of two different shape classes.
    candidates = {
        "numpy": _named_kernel("numpy", 1.0),
        "threaded": _named_kernel("threaded", 2.0),
    }
    small = (np.zeros((100, 3), np.int64), np.ones(100), np.zeros(5, np.int64))
    large = (np.zeros((5000, 3), np.int64), np.ones(5000), np.zeros(9, np.int64))
    for block in (small, small, large, large, small):
        key = shape_class_key(3, (3, 3, 3), block[0].shape[0])
        tuner.pick(key, candidates, block)
    # Two distinct shape classes -> exactly two calibrations (4 timings).
    assert timer.calls == 4


def test_default_auto_backend_is_shared_singleton():
    assert default_auto_backend() is default_auto_backend()
