"""Unit and regression tests for the contraction-ordered kernel subsystem."""

import numpy as np
import pytest

from repro.core.row_update import (
    accumulate_normal_equations,
    brute_force_row_update,
    build_mode_context,
    compute_delta_block,
    core_unfolding,
    update_factor_mode,
)
from repro.kernels import (
    block_segment_starts,
    contract_delta_block,
    contract_value_block,
    normal_equations_sorted,
    segment_gram,
    segment_positions,
    segment_sum,
    solve_rows,
)
from repro.kernels import contraction as contraction_module
from repro.tensor import SparseTensor, factor_rows_product


def random_problem(rng, shape, ranks, nnz):
    """A random sparse tensor with matching random factors and core."""
    indices = np.stack([rng.integers(0, d, size=nnz) for d in shape], axis=1)
    tensor = SparseTensor(
        indices, rng.uniform(0.5, 1.5, size=nnz), shape
    ).deduplicate()
    factors = [rng.uniform(0.1, 1.0, size=(d, r)) for d, r in zip(shape, ranks)]
    core = rng.uniform(-1.0, 1.0, size=ranks)
    return tensor, factors, core


# Ragged ranks across orders 3-5 exercise every contraction schedule.
PROBLEMS = [
    ((8, 7, 6), (3, 2, 4), 60),
    ((6, 5, 7, 4), (2, 3, 2, 4), 80),
    ((5, 4, 6, 3, 4), (2, 3, 2, 4, 2), 90),
]


class TestContraction:
    @pytest.mark.parametrize("shape,ranks,nnz", PROBLEMS)
    def test_delta_matches_seed_kernel_every_mode(self, rng, shape, ranks, nnz):
        """The contraction gives the same δ as the Kronecker kernel."""
        tensor, factors, core = random_problem(rng, shape, ranks, nnz)
        for mode in range(tensor.order):
            expected = compute_delta_block(
                tensor.indices, factors, core_unfolding(core, mode), mode
            )
            actual = contract_delta_block(tensor.indices, factors, core, mode)
            np.testing.assert_allclose(actual, expected, atol=1e-12)

    @pytest.mark.parametrize("shape,ranks,nnz", PROBLEMS)
    def test_value_block_matches_kronecker_weights(self, rng, shape, ranks, nnz):
        """Full contraction equals the (nnz, |G|) weight matrix route."""
        tensor, factors, core = random_problem(rng, shape, ranks, nnz)
        weights = factor_rows_product(tensor, factors, skip=-1)
        expected = weights @ core.reshape(-1)
        actual = contract_value_block(tensor.indices, factors, core)
        np.testing.assert_allclose(actual, expected, atol=1e-12)

    def test_batched_fallback_matches_precontraction(self, rng, monkeypatch):
        """A zero table budget forces the GEMM path; results are identical."""
        tensor, factors, core = random_problem(rng, (9, 8, 7), (3, 4, 2), 70)
        with_tables = contract_delta_block(tensor.indices, factors, core, 1)
        monkeypatch.setattr(contraction_module, "PRECONTRACT_CELL_BUDGET", 0)
        batched = contract_delta_block(tensor.indices, factors, core, 1)
        np.testing.assert_allclose(batched, with_tables, atol=1e-12)

    def test_empty_entry_block(self, rng):
        _, factors, core = random_problem(rng, (5, 4, 3), (2, 2, 2), 10)
        empty = np.empty((0, 3), dtype=np.int64)
        assert contract_delta_block(empty, factors, core, 0).shape == (0, 2)
        assert contract_value_block(empty, factors, core).shape == (0,)


class TestBatchInvariantContraction:
    """``batch_invariant=True`` makes results independent of block shape."""

    def test_rows_alone_equal_rows_in_block_bitwise(self, rng, monkeypatch):
        tensor, factors, core = random_problem(rng, (9, 8, 7), (3, 4, 2), 70)
        # Zero table budget forces the batched GEMM/einsum path — the one
        # whose accumulation order the flag pins down.
        monkeypatch.setattr(contraction_module, "PRECONTRACT_CELL_BUDGET", 0)
        delta = contraction_module.make_delta_contractor(
            factors, core, 1, tensor.nnz, batch_invariant=True
        )
        value = contraction_module.make_value_contractor(
            factors, core, tensor.nnz, batch_invariant=True
        )
        block_delta = delta(tensor.indices)
        block_value = value(tensor.indices)
        for row in (0, 7, tensor.nnz - 1):
            single = tensor.indices[row : row + 1]
            np.testing.assert_array_equal(delta(single)[0], block_delta[row])
            np.testing.assert_array_equal(value(single)[0], block_value[row])

    def test_split_block_equals_whole_block_bitwise(self, rng, monkeypatch):
        tensor, factors, core = random_problem(rng, (8, 7, 6), (3, 2, 4), 64)
        monkeypatch.setattr(contraction_module, "PRECONTRACT_CELL_BUDGET", 0)
        delta = contraction_module.make_delta_contractor(
            factors, core, 0, tensor.nnz, batch_invariant=True
        )
        whole = delta(tensor.indices)
        halves = np.concatenate(
            [delta(tensor.indices[:31]), delta(tensor.indices[31:])]
        )
        np.testing.assert_array_equal(halves, whole)

    def test_matches_default_path_numerically(self, rng, monkeypatch):
        tensor, factors, core = random_problem(rng, (9, 8, 7), (3, 4, 2), 70)
        monkeypatch.setattr(contraction_module, "PRECONTRACT_CELL_BUDGET", 0)
        default = contraction_module.make_delta_contractor(
            factors, core, 1, tensor.nnz
        )(tensor.indices)
        invariant = contraction_module.make_delta_contractor(
            factors, core, 1, tensor.nnz, batch_invariant=True
        )(tensor.indices)
        np.testing.assert_allclose(invariant, default, atol=1e-12)


class TestSegments:
    def test_block_segment_starts(self):
        ids = np.array([4, 4, 7, 9, 9, 9])
        starts, run_ids = block_segment_starts(ids)
        np.testing.assert_array_equal(starts, [0, 2, 3])
        np.testing.assert_array_equal(run_ids, [4, 7, 9])
        empty_starts, empty_ids = block_segment_starts(np.empty(0, dtype=np.int64))
        assert empty_starts.size == 0 and empty_ids.size == 0

    def test_segment_sum_and_gram_match_manual(self, rng):
        deltas = rng.standard_normal((12, 3))
        starts = np.array([0, 5, 6])
        sums = segment_sum(deltas, starts)
        grams = segment_gram(deltas, starts)
        bounds = [(0, 5), (5, 6), (6, 12)]
        for row, (lo, hi) in enumerate(bounds):
            np.testing.assert_allclose(sums[row], deltas[lo:hi].sum(axis=0))
            np.testing.assert_allclose(grams[row], deltas[lo:hi].T @ deltas[lo:hi])

    def test_normal_equations_match_seed_accumulation(self, rng):
        """reduceat/bucketed reductions equal the np.add.at seed kernel."""
        deltas = rng.standard_normal((20, 4))
        values = rng.standard_normal(20)
        segment_of_entry = np.sort(rng.integers(0, 5, size=20))
        starts, seg_ids = block_segment_starts(segment_of_entry)
        b_new, c_new = normal_equations_sorted(deltas, values, starts)
        b_old, c_old = accumulate_normal_equations(deltas, values, segment_of_entry, 5)
        np.testing.assert_allclose(b_new, b_old[seg_ids], atol=1e-12)
        np.testing.assert_allclose(c_new, c_old[seg_ids], atol=1e-12)

    def test_segment_positions_gathers_selected_ranges(self):
        starts = np.array([0, 3, 10])
        counts = np.array([2, 3, 1])
        np.testing.assert_array_equal(
            segment_positions(starts, counts), [0, 1, 3, 4, 5, 10]
        )
        assert segment_positions(np.empty(0), np.empty(0)).size == 0


class TestUpdateFactorModeKernels:
    def test_regression_contracted_matches_seed_kernel(self):
        """Fixed-seed tensor: both kernels produce the same factor update."""
        rng = np.random.default_rng(20180416)
        tensor, factors, core = random_problem(rng, (12, 10, 9), (4, 3, 5), 180)
        for mode in range(tensor.order):
            via_kron = [f.copy() for f in factors]
            via_contraction = [f.copy() for f in factors]
            update_factor_mode(tensor, via_kron, core, mode, 0.01, kernel="kron")
            update_factor_mode(
                tensor, via_contraction, core, mode, 0.01, kernel="contracted"
            )
            np.testing.assert_allclose(
                via_contraction[mode], via_kron[mode], atol=1e-10
            )

    def test_unknown_kernel_rejected(self, rng):
        tensor, factors, core = random_problem(rng, (5, 4, 3), (2, 2, 2), 20)
        with pytest.raises(ValueError, match="unknown kernel"):
            update_factor_mode(tensor, factors, core, 0, 0.01, kernel="turbo")

    @pytest.mark.parametrize("shape,ranks,nnz", PROBLEMS)
    def test_matches_brute_force_including_ridge_corner(self, rng, shape, ranks, nnz):
        """Contracted updates equal the per-row brute force, λ > 0 and λ = 0."""
        tensor, factors, core = random_problem(rng, shape, ranks, nnz)
        for regularization in (0.05, 0.0):
            for mode in range(tensor.order):
                fresh = [f.copy() for f in factors]
                update_factor_mode(tensor, fresh, core, mode, regularization)
                ctx = build_mode_context(tensor, mode)
                for row in ctx.row_ids[:3]:
                    expected = brute_force_row_update(
                        tensor, factors, core, mode, int(row), regularization
                    )
                    np.testing.assert_allclose(
                        fresh[mode][row], expected, atol=1e-8
                    )

    def test_rows_without_observations_untouched(self, rng):
        """Empty rows (no entries in Ω^(n)_i) keep their factor values."""
        shape = (10, 6, 5)
        nnz = 40
        indices = np.stack(
            [
                rng.integers(0, 5, size=nnz),  # rows 5..9 of mode 0 stay empty
                rng.integers(0, shape[1], size=nnz),
                rng.integers(0, shape[2], size=nnz),
            ],
            axis=1,
        )
        tensor = SparseTensor(indices, rng.uniform(0.5, 1.5, nnz), shape).deduplicate()
        factors = [rng.uniform(0.1, 1.0, size=(d, 3)) for d in shape]
        core = rng.uniform(-1.0, 1.0, size=(3, 3, 3))
        before = factors[0].copy()
        update_factor_mode(tensor, factors, core, 0, 0.01)
        np.testing.assert_array_equal(factors[0][5:], before[5:])
        assert not np.allclose(factors[0][:5], before[:5])

    def test_solve_rows_exported_from_kernels(self, rng):
        b = rng.standard_normal((3, 2, 2))
        b = np.einsum("nij,nkj->nik", b, b)
        c = rng.standard_normal((3, 2))
        solutions = solve_rows(b, c, 0.1)
        for row in range(3):
            np.testing.assert_allclose(
                solutions[row], np.linalg.solve(b[row] + 0.1 * np.eye(2), c[row])
            )
