"""Unit tests for the row-wise update kernel (Eqs. 9-12)."""

import numpy as np
import pytest

from repro.core import PTuckerConfig
from repro.core.row_update import (
    accumulate_normal_equations,
    brute_force_row_update,
    build_all_mode_contexts,
    build_mode_context,
    compute_delta_block,
    core_unfolding,
    solve_rows,
    update_factor_mode,
)
from repro.metrics.errors import regularized_loss
from repro.metrics.memory import MemoryTracker
from repro.tensor import SparseTensor


@pytest.fixture
def setup_small(rng):
    """A small tensor plus random factors/core for kernel-level checks."""
    shape, ranks = (8, 7, 6), (3, 2, 2)
    nnz = 60
    indices = np.stack(
        [rng.integers(0, dim, size=nnz) for dim in shape], axis=1
    )
    tensor = SparseTensor(indices, rng.uniform(0.5, 1.5, size=nnz), shape).deduplicate()
    factors = [rng.uniform(0.1, 1.0, size=(d, r)) for d, r in zip(shape, ranks)]
    core = rng.uniform(0.1, 1.0, size=ranks)
    return tensor, factors, core


class TestModeContext:
    def test_row_segments_cover_all_entries(self, setup_small):
        tensor, _, _ = setup_small
        for mode in range(3):
            ctx = build_mode_context(tensor, mode)
            assert int(ctx.row_counts.sum()) == tensor.nnz
            # Each segment's entries really have that row index.
            for pos, row in enumerate(ctx.row_ids):
                start = ctx.row_starts[pos]
                stop = start + ctx.row_counts[pos]
                assert np.all(ctx.sorted_indices[start:stop, mode] == row)

    def test_contexts_for_all_modes(self, setup_small):
        tensor, _, _ = setup_small
        contexts = build_all_mode_contexts(tensor)
        assert len(contexts) == tensor.order
        assert [c.mode for c in contexts] == [0, 1, 2]


class TestDelta:
    def test_delta_matches_bruteforce_definition(self, setup_small):
        tensor, factors, core = setup_small
        mode = 1
        unfolded = core_unfolding(core, mode)
        deltas = compute_delta_block(tensor.indices, factors, unfolded, mode)
        # Brute force Eq. (12) for a handful of entries.
        for entry in (0, 5, 17):
            idx = tensor.indices[entry]
            expected = np.zeros(core.shape[mode])
            for beta in np.ndindex(*core.shape):
                weight = core[beta]
                for k in range(3):
                    if k == mode:
                        continue
                    weight *= factors[k][idx[k], beta[k]]
                expected[beta[mode]] += weight
            np.testing.assert_allclose(deltas[entry], expected)

    def test_core_unfolding_shape(self, setup_small):
        _, _, core = setup_small
        for mode in range(3):
            unfolded = core_unfolding(core, mode)
            assert unfolded.shape[0] == core.shape[mode]
            assert unfolded.size == core.size

    def test_prediction_identity(self, setup_small):
        """Model prediction equals <delta_alpha, a^(n)_{i_n,:}> for any mode."""
        tensor, factors, core = setup_small
        from repro.tensor import sparse_reconstruct

        predictions = sparse_reconstruct(tensor, core, factors)
        for mode in range(3):
            unfolded = core_unfolding(core, mode)
            deltas = compute_delta_block(tensor.indices, factors, unfolded, mode)
            via_delta = np.sum(
                deltas * factors[mode][tensor.indices[:, mode]], axis=1
            )
            np.testing.assert_allclose(via_delta, predictions, atol=1e-10)


class TestNormalEquations:
    def test_accumulation_matches_manual_sum(self, rng):
        deltas = rng.standard_normal((10, 3))
        values = rng.standard_normal(10)
        segments = np.array([0, 0, 1, 1, 1, 2, 2, 2, 2, 2])
        b_matrices, c_vectors = accumulate_normal_equations(deltas, values, segments, 3)
        for segment in range(3):
            rows = segments == segment
            expected_b = sum(np.outer(d, d) for d in deltas[rows])
            expected_c = sum(v * d for v, d in zip(values[rows], deltas[rows]))
            np.testing.assert_allclose(b_matrices[segment], expected_b)
            np.testing.assert_allclose(c_vectors[segment], expected_c)

    def test_solve_rows_solves_systems(self, rng):
        b_matrices = rng.standard_normal((4, 3, 3))
        b_matrices = np.einsum("nij,nkj->nik", b_matrices, b_matrices)  # SPD
        c_vectors = rng.standard_normal((4, 3))
        solutions = solve_rows(b_matrices, c_vectors, regularization=0.1)
        for row in range(4):
            expected = np.linalg.solve(
                b_matrices[row] + 0.1 * np.eye(3), c_vectors[row]
            )
            np.testing.assert_allclose(solutions[row], expected)

    def test_solve_rows_zero_regularization_is_finite(self, rng):
        b_matrices = np.zeros((2, 3, 3))
        c_vectors = np.zeros((2, 3))
        solutions = solve_rows(b_matrices, c_vectors, regularization=0.0)
        assert np.all(np.isfinite(solutions))


class TestUpdateFactorMode:
    def test_matches_brute_force_rows(self, setup_small):
        tensor, factors, core = setup_small
        regularization = 0.05
        for mode in range(3):
            fresh = [f.copy() for f in factors]
            update_factor_mode(tensor, fresh, core, mode, regularization)
            ctx = build_mode_context(tensor, mode)
            for row in ctx.row_ids[:4]:
                expected = brute_force_row_update(
                    tensor, factors, core, mode, int(row), regularization
                )
                np.testing.assert_allclose(fresh[mode][row], expected, atol=1e-8)

    def test_rows_without_observations_untouched(self, setup_small):
        tensor, factors, core = setup_small
        mode = 0
        observed_rows = set(np.unique(tensor.indices[:, mode]).tolist())
        untouched = [r for r in range(tensor.shape[mode]) if r not in observed_rows]
        before = factors[mode].copy()
        update_factor_mode(tensor, factors, core, mode, 0.01)
        for row in untouched:
            np.testing.assert_array_equal(factors[mode][row], before[row])

    def test_update_decreases_loss(self, setup_small):
        tensor, factors, core = setup_small
        regularization = 0.01
        before = regularized_loss(tensor, core, factors, regularization)
        update_factor_mode(tensor, factors, core, 0, regularization)
        after = regularized_loss(tensor, core, factors, regularization)
        assert after <= before + 1e-9

    def test_update_is_row_optimal(self, setup_small, rng):
        """Perturbing any updated row can only increase the loss (Theorem 1)."""
        tensor, factors, core = setup_small
        regularization = 0.01
        mode = 2
        update_factor_mode(tensor, factors, core, mode, regularization)
        baseline = regularized_loss(tensor, core, factors, regularization)
        observed_rows = np.unique(tensor.indices[:, mode])
        # Only the L2 term involving updated rows matters; perturb them one by one.
        for row in observed_rows[:3]:
            perturbed = [f.copy() for f in factors]
            perturbed[mode][row] += rng.standard_normal(core.shape[mode]) * 0.05
            assert (
                regularized_loss(tensor, core, perturbed, regularization)
                >= baseline - 1e-9
            )

    def test_block_size_does_not_change_result(self, setup_small):
        tensor, factors, core = setup_small
        one_block = [f.copy() for f in factors]
        many_blocks = [f.copy() for f in factors]
        update_factor_mode(tensor, one_block, core, 0, 0.01, block_size=10**6)
        update_factor_mode(tensor, many_blocks, core, 0, 0.01, block_size=7)
        np.testing.assert_allclose(one_block[0], many_blocks[0], atol=1e-10)

    def test_memory_tracker_records_workspace(self, setup_small):
        tensor, factors, core = setup_small
        tracker = MemoryTracker()
        update_factor_mode(tensor, factors, core, 0, 0.01, memory=tracker)
        assert tracker.peak_bytes > 0
        assert tracker.current_bytes == 0  # workspace released after the update
