"""Tests for the P-Tucker-Sampled extension (sampling on observed entries)."""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerConfig, PTuckerSampled
from repro.exceptions import ShapeError


class TestConfiguration:
    def test_rejects_invalid_fraction(self):
        with pytest.raises(ShapeError):
            PTuckerSampled(sample_fraction=0.0)
        with pytest.raises(ShapeError):
            PTuckerSampled(sample_fraction=1.5)

    def test_full_fraction_matches_plain_ptucker(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=3, seed=0, tolerance=0.0)
        exact = PTucker(config).fit(planted_small.tensor)
        sampled = PTuckerSampled(config, sample_fraction=1.0).fit(planted_small.tensor)
        np.testing.assert_allclose(exact.trace.errors, sampled.trace.errors, rtol=1e-9)


class TestBehaviour:
    def test_error_still_decreases_with_sampling(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=6, seed=0, tolerance=0.0)
        result = PTuckerSampled(config, sample_fraction=0.5).fit(planted_small.tensor)
        assert result.trace.errors[-1] < 0.6 * result.trace.errors[0]

    def test_accuracy_close_to_exact_for_moderate_sampling(self, planted_small, rng):
        train, test = planted_small.tensor.split(0.9, rng=rng)
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=8, seed=0, tolerance=0.0)
        exact_rmse = PTucker(config).fit(train).test_rmse(test)
        sampled_rmse = (
            PTuckerSampled(config, sample_fraction=0.7).fit(train).test_rmse(test)
        )
        assert sampled_rmse <= 2.5 * exact_rmse

    def test_error_measured_on_full_tensor(self, planted_small):
        """The trace error is Eq. (5) over all of Omega, not over the sample."""
        from repro.metrics.errors import reconstruction_error

        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=3, seed=0, tolerance=0.0, orthogonalize=False
        )
        result = PTuckerSampled(config, sample_fraction=0.4).fit(planted_small.tensor)
        recomputed = reconstruction_error(
            planted_small.tensor, result.core, result.factors
        )
        assert result.trace.errors[-1] == pytest.approx(recomputed, rel=1e-9)

    def test_result_records_sample_fraction(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        result = PTuckerSampled(config, sample_fraction=0.3).fit(planted_small.tensor)
        assert result.sample_fraction == pytest.approx(0.3)
        assert result.algorithm == "P-Tucker-Sampled"

    def test_fixed_sample_mode(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=4, seed=0, tolerance=0.0)
        result = PTuckerSampled(
            config, sample_fraction=0.5, resample_each_iteration=False
        ).fit(planted_small.tensor)
        assert result.trace.n_iterations == 4
        assert np.all(np.isfinite(result.core))

    def test_deterministic_given_seed(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=3, seed=4, tolerance=0.0)
        first = PTuckerSampled(config, sample_fraction=0.5).fit(planted_small.tensor)
        second = PTuckerSampled(config, sample_fraction=0.5).fit(planted_small.tensor)
        np.testing.assert_allclose(first.trace.errors, second.trace.errors)

    def test_orthogonal_output(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=3, seed=0)
        result = PTuckerSampled(config, sample_fraction=0.5).fit(planted_small.tensor)
        assert result.orthogonality_defect() < 1e-8
