"""Tests for P-Tucker-Cache: identical results to P-Tucker, more memory."""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerCache, PTuckerConfig


class TestEquivalence:
    def test_same_errors_as_ptucker(self, planted_small):
        """The cache only changes how δ is computed, never its value."""
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=4, seed=0, tolerance=0.0
        )
        exact = PTucker(config).fit(planted_small.tensor)
        cached = PTuckerCache(config).fit(planted_small.tensor)
        np.testing.assert_allclose(
            exact.trace.errors, cached.trace.errors, rtol=1e-6
        )

    def test_same_factors_as_ptucker(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=3, seed=0, tolerance=0.0
        )
        exact = PTucker(config).fit(planted_small.tensor)
        cached = PTuckerCache(config).fit(planted_small.tensor)
        for a, b in zip(exact.factors, cached.factors):
            np.testing.assert_allclose(a, b, atol=1e-6)

    def test_equivalence_on_4way(self, planted_4way):
        config = PTuckerConfig(
            ranks=(2, 2, 2, 2), max_iterations=3, seed=0, tolerance=0.0
        )
        exact = PTucker(config).fit(planted_4way.tensor)
        cached = PTuckerCache(config).fit(planted_4way.tensor)
        np.testing.assert_allclose(exact.trace.errors, cached.trace.errors, rtol=1e-6)

    def test_handles_zero_factor_entries(self, planted_small):
        """Zero divisors must fall back to the direct computation, not produce NaN."""
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=3, seed=3, tolerance=0.0
        )
        result = PTuckerCache(config).fit(planted_small.tensor)
        assert np.all(np.isfinite(result.core))
        for factor in result.factors:
            assert np.all(np.isfinite(factor))


class TestMemoryProfile:
    def test_cache_uses_more_intermediate_memory(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        exact = PTucker(config).fit(planted_small.tensor)
        cached = PTuckerCache(config).fit(planted_small.tensor)
        assert cached.memory.peak_bytes > exact.memory.peak_bytes

    def test_cache_memory_scales_with_core_size(self, planted_small):
        small_rank = PTuckerCache(
            PTuckerConfig(ranks=(2, 2, 2), max_iterations=1, seed=0)
        ).fit(planted_small.tensor)
        large_rank = PTuckerCache(
            PTuckerConfig(ranks=(4, 4, 4), max_iterations=1, seed=0)
        ).fit(planted_small.tensor)
        assert large_rank.memory.peak_bytes > small_rank.memory.peak_bytes

    def test_cache_table_accounted_as_omega_times_core(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=1, seed=0)
        result = PTuckerCache(config).fit(planted_small.tensor)
        expected = planted_small.tensor.nnz * 27 * 8  # |Omega| * |G| * 8 bytes
        assert result.memory.peak_bytes >= expected
