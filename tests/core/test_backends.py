"""Kernel backend registry and cross-backend equivalence tests.

Every backend must reproduce the reference NumPy results to ~1e-12 across
the shapes that historically break segment logic: higher orders, ragged
ranks, empty rows (mode slices with no observed entries), and
single-entry segments.  The threaded backend is additionally exercised
with a forced multi-worker configuration so the chunked code path runs
even on single-CPU hosts (where it normally degrades to the serial path).
"""

import numpy as np
import pytest

from repro.core.row_update import build_mode_context, update_factor_mode
from repro.kernels import available_backends, get_backend, resolve_backend
from repro.kernels.backends import (
    HAVE_NUMBA,
    AutoBackend,
    KernelBackend,
    NumpyBackend,
    ThreadedBackend,
    backend_names_for_cli,
    register_backend,
)
from repro.kernels.backends.threaded import chunk_boundaries
from repro.tensor import SparseTensor

#: Backends every equivalence test runs against the NumPy reference.
CANDIDATES = [
    ThreadedBackend(n_workers=3, min_chunk_entries=8),  # force chunking
    "threaded",  # default construction (may degrade to serial on 1 CPU)
]
if HAVE_NUMBA:
    CANDIDATES.append("numba")


def _problem(order, seed, ragged=True, nnz=400, single_entry_rows=False):
    rng = np.random.default_rng(seed)
    shape = tuple(int(d) for d in rng.integers(6, 14, size=order))
    if ragged:
        ranks = tuple(int(r) for r in rng.integers(1, 5, size=order))
    else:
        ranks = (3,) * order
    ranks = tuple(min(r, s) for r, s in zip(ranks, shape))
    if single_entry_rows:
        # Exactly one entry per mode-0 row: every segment has length 1.
        indices = np.stack(
            [np.arange(shape[0])]
            + [rng.integers(0, d, shape[0]) for d in shape[1:]],
            axis=1,
        ).astype(np.int64)
    else:
        # Keep the last slice of every mode empty so empty rows are hit.
        indices = np.stack(
            [rng.integers(0, d - 1, nnz) for d in shape], axis=1
        ).astype(np.int64)
    tensor = SparseTensor(
        indices, rng.uniform(0.1, 2.0, indices.shape[0]), shape
    ).deduplicate()
    factors = [rng.uniform(-1.0, 1.0, size=(d, r)) for d, r in zip(shape, ranks)]
    core = rng.uniform(-1.0, 1.0, size=ranks)
    return tensor, factors, core


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_lists_numpy_first_and_threaded():
    names = available_backends()
    assert names[0] == "numpy"
    assert "threaded" in names


def test_get_unknown_backend_raises_with_choices():
    with pytest.raises(KeyError, match="available"):
        get_backend("gpu")


def test_optional_numba_name_always_resolves():
    """Requesting numba without the dependency falls back to numpy silently."""
    backend = resolve_backend("numba")
    if HAVE_NUMBA:
        assert backend.name == "numba"
    else:
        assert backend.name == "numpy"


def test_resolve_passthrough_and_specials():
    instance = ThreadedBackend(n_workers=2)
    assert resolve_backend(instance) is instance
    assert resolve_backend(None).name == "numpy"
    assert isinstance(resolve_backend("auto"), AutoBackend)


def test_cli_names_include_optional_backends():
    names = backend_names_for_cli()
    assert names[0] == "auto"
    assert {"numpy", "threaded", "numba"} <= set(names)


def test_register_backend_last_wins():
    class Custom(NumpyBackend):
        name = "custom-test"

    backend = Custom()
    register_backend(backend)
    try:
        assert resolve_backend("custom-test") is backend
    finally:
        from repro.kernels.backends.base import _REGISTRY

        _REGISTRY.pop("custom-test", None)


# ----------------------------------------------------------------------
# Chunk boundaries
# ----------------------------------------------------------------------

def test_chunk_boundaries_align_with_segments():
    starts = np.asarray([0, 5, 6, 20, 21, 40], dtype=np.int64)
    edges = chunk_boundaries(starts, 50, 3)
    assert edges[0] == 0 and edges[-1] == starts.shape[0]
    assert np.all(np.diff(edges) > 0)


def test_chunk_boundaries_degenerate_cases():
    assert chunk_boundaries(np.asarray([0]), 10, 4).tolist() == [0, 1]
    assert chunk_boundaries(np.asarray([0, 3]), 6, 1).tolist() == [0, 2]


# ----------------------------------------------------------------------
# Equivalence
# ----------------------------------------------------------------------

@pytest.mark.parametrize("order", [3, 4, 5])
@pytest.mark.parametrize("candidate", CANDIDATES, ids=lambda c: str(c))
def test_backend_matches_numpy_ragged_ranks(order, candidate):
    tensor, factors, core = _problem(order, seed=order * 11)
    for mode in range(order):
        reference = [f.copy() for f in factors]
        update_factor_mode(tensor, reference, core, mode, 0.01, backend="numpy")
        candidate_factors = [f.copy() for f in factors]
        update_factor_mode(
            tensor, candidate_factors, core, mode, 0.01, backend=candidate
        )
        np.testing.assert_allclose(
            candidate_factors[mode], reference[mode], atol=1e-12, rtol=1e-12
        )


@pytest.mark.parametrize("candidate", CANDIDATES, ids=lambda c: str(c))
def test_backend_matches_numpy_single_entry_segments(candidate):
    tensor, factors, core = _problem(3, seed=5, single_entry_rows=True)
    reference = [f.copy() for f in factors]
    update_factor_mode(tensor, reference, core, 0, 0.01, backend="numpy")
    candidate_factors = [f.copy() for f in factors]
    update_factor_mode(tensor, candidate_factors, core, 0, 0.01, backend=candidate)
    np.testing.assert_allclose(
        candidate_factors[0], reference[0], atol=1e-12, rtol=1e-12
    )


@pytest.mark.parametrize("candidate", CANDIDATES, ids=lambda c: str(c))
def test_backend_leaves_empty_rows_untouched(candidate):
    tensor, factors, core = _problem(3, seed=9)
    before = factors[0].copy()
    update_factor_mode(tensor, factors, core, 0, 0.01, backend=candidate)
    ctx = build_mode_context(tensor, 0)
    empty_rows = np.setdiff1d(np.arange(tensor.shape[0]), ctx.row_ids)
    assert empty_rows.size > 0
    np.testing.assert_array_equal(factors[0][empty_rows], before[empty_rows])


def test_threaded_chunked_is_bitwise_equal_to_numpy():
    """Segment-aligned chunks reduce in the same order as the full pass."""
    tensor, factors, core = _problem(3, seed=21, nnz=900)
    ctx = build_mode_context(tensor, 0)
    numpy_kernel = NumpyBackend().make_normal_equations_kernel(
        factors, core, 0, tensor.nnz
    )
    threaded_kernel = ThreadedBackend(
        n_workers=4, min_chunk_entries=4
    ).make_normal_equations_kernel(factors, core, 0, tensor.nnz)
    b_ref, c_ref = numpy_kernel(
        ctx.sorted_indices, ctx.sorted_values, ctx.row_starts
    )
    b_thr, c_thr = threaded_kernel(
        ctx.sorted_indices, ctx.sorted_values, ctx.row_starts
    )
    np.testing.assert_array_equal(b_thr, b_ref)
    np.testing.assert_array_equal(c_thr, c_ref)


def test_threaded_primitives_match_reference():
    tensor, factors, core = _problem(4, seed=33, nnz=700)
    backend = ThreadedBackend(n_workers=3, min_chunk_entries=16)
    reference = NumpyBackend()
    deltas_ref = reference.contract_delta_block(tensor.indices, factors, core, 1)
    deltas_thr = backend.contract_delta_block(tensor.indices, factors, core, 1)
    np.testing.assert_array_equal(deltas_thr, deltas_ref)

    rng = np.random.default_rng(0)
    gram = rng.uniform(0.5, 1.0, size=(64, 3, 3))
    b_matrices = gram @ gram.transpose(0, 2, 1)
    c_vectors = rng.uniform(-1.0, 1.0, size=(64, 3))
    solved_thr = ThreadedBackend(n_workers=2, min_chunk_entries=8).solve_rows(
        b_matrices, c_vectors, 0.01
    )
    solved_ref = reference.solve_rows(b_matrices, c_vectors, 0.01)
    np.testing.assert_allclose(solved_thr, solved_ref, atol=1e-13)


# ----------------------------------------------------------------------
# Solver-level wiring
# ----------------------------------------------------------------------

def test_ptucker_config_backend_roundtrip(planted_small):
    from repro.core import PTucker, PTuckerConfig

    reference = PTucker(
        PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
    ).fit(planted_small.tensor)
    threaded = PTucker(
        PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=2, seed=0, backend="threaded"
        )
    ).fit(planted_small.tensor)
    np.testing.assert_allclose(
        threaded.trace.errors, reference.trace.errors, rtol=1e-10
    )


def test_config_rejects_unknown_backend():
    from repro.core import PTuckerConfig
    from repro.exceptions import ShapeError

    with pytest.raises(ShapeError, match="backend"):
        PTuckerConfig(backend="cuda")


def test_legacy_kron_kernel_respects_delta_provider():
    """An explicit δ provider takes precedence over the seed kernel too."""
    from repro.kernels.contraction import contract_delta_block

    tensor, factors, core = _problem(3, seed=13)
    calls = []

    def provider(entry_positions, mode):
        calls.append(entry_positions.shape[0])
        return contract_delta_block(
            tensor.indices[entry_positions], factors, core, mode
        )

    reference = [f.copy() for f in factors]
    update_factor_mode(tensor, reference, core, 0, 0.01, kernel="kron")
    provided = [f.copy() for f in factors]
    update_factor_mode(
        tensor, provided, core, 0, 0.01, kernel="kron", delta_provider=provider
    )
    assert sum(calls) == tensor.nnz  # the provider really fed the kron path
    np.testing.assert_allclose(provided[0], reference[0], atol=1e-12)


def test_legacy_kron_kernel_ignores_backend():
    tensor, factors, core = _problem(3, seed=2)
    reference = [f.copy() for f in factors]
    update_factor_mode(tensor, reference, core, 0, 0.01, kernel="kron")
    via_threaded = [f.copy() for f in factors]
    update_factor_mode(
        tensor, via_threaded, core, 0, 0.01, kernel="kron", backend="threaded"
    )
    np.testing.assert_allclose(via_threaded[0], reference[0], atol=1e-12)
