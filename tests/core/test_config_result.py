"""Tests for PTuckerConfig validation and the TuckerResult/trace objects."""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerConfig, TuckerResult
from repro.core.trace import ConvergenceTrace, IterationRecord
from repro.exceptions import ShapeError


class TestConfigValidation:
    def test_defaults_are_paper_defaults(self):
        config = PTuckerConfig()
        assert config.regularization == pytest.approx(0.01)
        assert config.max_iterations == 20
        assert config.truncation_rate == pytest.approx(0.2)
        assert config.scheduling == "dynamic"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"regularization": -1.0},
            {"max_iterations": 0},
            {"min_iterations": 0},
            {"min_iterations": 5, "max_iterations": 3},
            {"tolerance": -0.1},
            {"threads": 0},
            {"scheduling": "guided"},
            {"truncation_rate": 0.0},
            {"truncation_rate": 1.0},
            {"block_size": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ShapeError):
            PTuckerConfig(**kwargs)

    def test_resolve_ranks_broadcast(self):
        assert PTuckerConfig(ranks=(4,)).resolve_ranks(3) == (4, 4, 4)

    def test_resolve_ranks_explicit(self):
        assert PTuckerConfig(ranks=(2, 3, 4)).resolve_ranks(3) == (2, 3, 4)

    def test_resolve_ranks_mismatch(self):
        with pytest.raises(ShapeError):
            PTuckerConfig(ranks=(2, 3)).resolve_ranks(3)

    def test_with_updates_returns_new_config(self):
        base = PTuckerConfig()
        changed = base.with_updates(max_iterations=5)
        assert changed.max_iterations == 5
        assert base.max_iterations == 20


class TestTrace:
    def _record(self, i, err):
        return IterationRecord(iteration=i, reconstruction_error=err, loss=err**2, seconds=0.1)

    def test_relative_change(self):
        trace = ConvergenceTrace()
        trace.add(self._record(1, 10.0))
        trace.add(self._record(2, 9.0))
        assert trace.relative_change() == pytest.approx(0.1)

    def test_relative_change_single_record_is_inf(self):
        trace = ConvergenceTrace()
        trace.add(self._record(1, 10.0))
        assert trace.relative_change() == float("inf")

    def test_relative_change_zero_previous(self):
        trace = ConvergenceTrace()
        trace.add(self._record(1, 0.0))
        trace.add(self._record(2, 0.0))
        assert trace.relative_change() == 0.0

    def test_mean_iteration_seconds(self):
        trace = ConvergenceTrace()
        trace.add(self._record(1, 2.0))
        trace.add(self._record(2, 1.0))
        assert trace.mean_iteration_seconds == pytest.approx(0.1)

    def test_property_lists(self):
        trace = ConvergenceTrace()
        trace.add(self._record(1, 3.0))
        assert trace.errors == [3.0]
        assert trace.losses == [9.0]
        assert trace.n_iterations == 1


class TestTuckerResult:
    def test_summary_contains_key_facts(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        summary = result.summary()
        assert "P-Tucker" in summary
        assert "ranks=(3, 3, 3)" in summary

    def test_to_dense_shape(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        dense = result.to_dense()
        assert dense.shape == planted_small.tensor.shape

    def test_predict_tensor_matches_predict(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        via_tensor = result.predict_tensor(planted_small.tensor)
        via_indices = result.predict(planted_small.tensor.indices)
        np.testing.assert_allclose(via_tensor, via_indices)

    def test_core_nnz(self):
        core = np.zeros((2, 2))
        core[0, 0] = 1.0
        result = TuckerResult(core=core, factors=[np.ones((3, 2)), np.ones((4, 2))])
        assert result.core_nnz == 1
        assert result.shape == (3, 4)
        assert result.ranks == (2, 2)
