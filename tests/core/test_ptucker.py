"""Unit and behaviour tests for the P-Tucker solver."""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerConfig
from repro.exceptions import OutOfMemoryError


class TestConvergence:
    def test_loss_monotonically_non_increasing(self, planted_small):
        """Theorem 2: the regularised loss never increases across iterations."""
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=6, seed=0, tolerance=0.0
        )
        result = PTucker(config).fit(planted_small.tensor)
        losses = result.trace.losses
        assert all(b <= a + 1e-6 for a, b in zip(losses, losses[1:]))

    def test_error_decreases_substantially_on_planted_data(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=6, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        errors = result.trace.errors
        assert errors[-1] < 0.5 * errors[0]

    def test_converges_before_max_iterations_when_tolerance_loose(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=20, tolerance=0.05, seed=0
        )
        result = PTucker(config).fit(planted_small.tensor)
        assert result.trace.converged
        assert result.trace.n_iterations < 20

    def test_stop_reason_reported(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, tolerance=0.0, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        assert "max_iterations" in result.trace.stop_reason

    def test_4way_tensor(self, planted_4way):
        config = PTuckerConfig(ranks=(2, 2, 2, 2), max_iterations=4, seed=0)
        result = PTucker(config).fit(planted_4way.tensor)
        assert result.order == 4
        assert result.trace.errors[-1] < result.trace.errors[0]


class TestOutputContract:
    def test_shapes_and_ranks(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=3, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        assert result.shape == planted_small.tensor.shape
        assert result.ranks == (3, 3, 3)
        assert result.core.shape == (3, 3, 3)

    def test_single_rank_broadcasts(self, planted_small):
        config = PTuckerConfig(ranks=(3,), max_iterations=2, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        assert result.ranks == (3, 3, 3)

    def test_orthogonal_factors_after_fit(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=3, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        assert result.orthogonality_defect() < 1e-8

    def test_orthogonalization_preserves_error(self, planted_small):
        base = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=3, seed=0, orthogonalize=False
        )
        raw = PTucker(base).fit(planted_small.tensor)
        ortho = PTucker(base.with_updates(orthogonalize=True)).fit(planted_small.tensor)
        raw_error = raw.reconstruction_error(planted_small.tensor)
        ortho_error = ortho.reconstruction_error(planted_small.tensor)
        assert ortho_error == pytest.approx(raw_error, rel=1e-6)

    def test_deterministic_given_seed(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=3, seed=5)
        first = PTucker(config).fit(planted_small.tensor)
        second = PTucker(config).fit(planted_small.tensor)
        np.testing.assert_allclose(first.core, second.core)
        for a, b in zip(first.factors, second.factors):
            np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self, planted_small):
        first = PTucker(PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=1)).fit(
            planted_small.tensor
        )
        second = PTucker(PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=2)).fit(
            planted_small.tensor
        )
        assert not np.allclose(first.core, second.core)

    def test_memory_tracking_optional(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=2, seed=0, track_memory=False
        )
        result = PTucker(config).fit(planted_small.tensor)
        assert result.memory is None

    def test_scheduler_records_all_modes(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0, tolerance=0.0)
        result = PTucker(config).fit(planted_small.tensor)
        # 2 iterations x 3 modes
        assert len(result.scheduler.mode_workloads) == 6


class TestAccuracy:
    def test_recovers_planted_model_on_test_split(self, planted_small, rng):
        train, test = planted_small.tensor.split(0.9, rng=rng)
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=8, seed=0)
        result = PTucker(config).fit(train)
        rmse = result.test_rmse(test)
        spread = float(np.std(test.values))
        assert rmse < 0.5 * spread

    def test_prediction_interface(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=4, seed=0)
        result = PTucker(config).fit(planted_small.tensor)
        single = result.predict(planted_small.tensor.indices[0])
        batch = result.predict(planted_small.tensor.indices[:5])
        assert single.shape == (1,)
        assert batch.shape == (5,)
        np.testing.assert_allclose(batch[0], single[0])


class TestMemoryBudget:
    def test_tiny_budget_raises_oom(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=2, seed=0, memory_budget_bytes=8
        )
        with pytest.raises(OutOfMemoryError):
            PTucker(config).fit(planted_small.tensor)

    def test_generous_budget_ok(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3),
            max_iterations=2,
            seed=0,
            memory_budget_bytes=10 * 1024 * 1024,
        )
        result = PTucker(config).fit(planted_small.tensor)
        assert result.memory is not None
        assert result.memory.peak_bytes <= 10 * 1024 * 1024
