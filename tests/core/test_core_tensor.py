"""Tests for core-tensor utilities: init, orthogonalisation, LS core, SparseCore."""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerConfig, least_squares_core, orthogonalize
from repro.core.core_tensor import SparseCore, initialize_core, initialize_factors
from repro.exceptions import ShapeError
from repro.metrics.errors import reconstruction_error
from repro.tensor import sparse_reconstruct


class TestInitialization:
    def test_factor_shapes_and_range(self, rng):
        factors = initialize_factors((5, 6, 7), (2, 3, 4), rng)
        assert [f.shape for f in factors] == [(5, 2), (6, 3), (7, 4)]
        for factor in factors:
            assert factor.min() >= 0.0
            assert factor.max() < 1.0

    def test_core_shape_and_range(self, rng):
        core = initialize_core((2, 3, 4), rng)
        assert core.shape == (2, 3, 4)
        assert core.min() >= 0.0
        assert core.max() < 1.0

    def test_rank_count_mismatch(self, rng):
        with pytest.raises(ShapeError):
            initialize_factors((5, 6), (2, 2, 2), rng)


class TestOrthogonalize:
    def test_factors_become_orthonormal(self, rng):
        factors = [rng.uniform(size=(10, 3)), rng.uniform(size=(8, 2))]
        core = rng.uniform(size=(3, 2))
        new_factors, _ = orthogonalize(factors, core)
        for factor in new_factors:
            gram = factor.T @ factor
            np.testing.assert_allclose(gram, np.eye(factor.shape[1]), atol=1e-10)

    def test_reconstruction_unchanged(self, planted_small, rng):
        """Eq. (7)-(8): Q R push keeps G x_n A^(n) products identical."""
        tensor = planted_small.tensor
        factors = [rng.uniform(size=(d, 3)) for d in tensor.shape]
        core = rng.uniform(size=(3, 3, 3))
        before = sparse_reconstruct(tensor, core, factors)
        new_factors, new_core = orthogonalize(factors, core)
        after = sparse_reconstruct(tensor, new_core, new_factors)
        np.testing.assert_allclose(before, after, atol=1e-8)

    def test_error_unchanged(self, planted_small, rng):
        tensor = planted_small.tensor
        factors = [rng.uniform(size=(d, 3)) for d in tensor.shape]
        core = rng.uniform(size=(3, 3, 3))
        new_factors, new_core = orthogonalize(factors, core)
        assert reconstruction_error(tensor, core, factors) == pytest.approx(
            reconstruction_error(tensor, new_core, new_factors), rel=1e-9
        )


class TestLeastSquaresCore:
    def test_improves_or_matches_reconstruction(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=3, seed=0, orthogonalize=False
        )
        result = PTucker(config).fit(planted_small.tensor)
        refit = least_squares_core(planted_small.tensor, result.factors)
        original_error = reconstruction_error(
            planted_small.tensor, result.core, result.factors
        )
        refit_error = reconstruction_error(
            planted_small.tensor, refit, result.factors
        )
        assert refit_error <= original_error + 1e-6

    def test_exact_on_noiseless_planted_data(self, rng):
        from repro.data import planted_tucker_tensor

        planted = planted_tucker_tensor(
            (15, 12, 10), (2, 2, 2), nnz=800, noise_level=0.0, seed=9
        )
        core = least_squares_core(planted.tensor, list(planted.factors))
        predictions = sparse_reconstruct(planted.tensor, core, list(planted.factors))
        np.testing.assert_allclose(predictions, planted.tensor.values, atol=1e-6)


class TestSparseCore:
    def test_roundtrip(self, rng):
        dense = rng.uniform(size=(3, 3, 3))
        dense[dense < 0.5] = 0.0
        sparse = SparseCore.from_dense(dense)
        np.testing.assert_allclose(sparse.to_dense(), dense)
        assert sparse.nnz == int(np.count_nonzero(dense))

    def test_drop(self, rng):
        dense = rng.uniform(0.1, 1.0, size=(2, 2, 2))
        sparse = SparseCore.from_dense(dense)
        dropped = sparse.drop(np.array([0, 1]))
        assert dropped.nnz == sparse.nnz - 2

    def test_empty_core(self):
        sparse = SparseCore.from_dense(np.zeros((2, 2)))
        assert sparse.nnz == 0
        np.testing.assert_allclose(sparse.to_dense(), np.zeros((2, 2)))
