"""Tests for the from-scratch K-means implementation."""

import numpy as np
import pytest

from repro.discovery import cluster_purity, kmeans


@pytest.fixture
def three_blobs(rng):
    """Three well-separated Gaussian blobs with known labels."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = []
    labels = []
    for label, center in enumerate(centers):
        points.append(center + rng.normal(0, 0.4, size=(40, 2)))
        labels.extend([label] * 40)
    return np.vstack(points), np.asarray(labels)


class TestKMeans:
    def test_recovers_separated_blobs(self, three_blobs):
        data, truth = three_blobs
        result = kmeans(data, 3, seed=0)
        assert cluster_purity(result.labels, truth) > 0.95

    def test_label_range_and_shapes(self, three_blobs):
        data, _ = three_blobs
        result = kmeans(data, 3, seed=0)
        assert result.labels.shape == (data.shape[0],)
        assert result.centroids.shape == (3, 2)
        assert set(np.unique(result.labels)) <= {0, 1, 2}

    def test_inertia_decreases_with_more_clusters(self, three_blobs):
        data, _ = three_blobs
        few = kmeans(data, 2, seed=0)
        many = kmeans(data, 6, seed=0)
        assert many.inertia <= few.inertia

    def test_single_cluster_centroid_is_mean(self, three_blobs):
        data, _ = three_blobs
        result = kmeans(data, 1, seed=0)
        np.testing.assert_allclose(result.centroids[0], data.mean(axis=0), atol=1e-8)
        assert np.all(result.labels == 0)

    def test_deterministic_given_seed(self, three_blobs):
        data, _ = three_blobs
        first = kmeans(data, 3, seed=7)
        second = kmeans(data, 3, seed=7)
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_cluster_members_and_sizes(self, three_blobs):
        data, _ = three_blobs
        result = kmeans(data, 3, seed=0)
        sizes = result.cluster_sizes()
        assert sizes.sum() == data.shape[0]
        for cluster in range(3):
            assert result.cluster_members(cluster).shape[0] == sizes[cluster]

    def test_rejects_more_clusters_than_rows(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 5)

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)

    def test_rejects_non_2d_data(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(10), 2)

    def test_duplicate_points_handled(self):
        data = np.ones((20, 3))
        result = kmeans(data, 2, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)


class TestClusterPurity:
    def test_perfect_purity(self):
        labels = np.array([0, 0, 1, 1])
        truth = np.array([1, 1, 0, 0])
        assert cluster_purity(labels, truth) == 1.0

    def test_random_assignment_lower_purity(self):
        labels = np.array([0, 1, 0, 1])
        truth = np.array([0, 0, 1, 1])
        assert cluster_purity(labels, truth) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cluster_purity(np.zeros(3, dtype=int), np.zeros(4, dtype=int))
