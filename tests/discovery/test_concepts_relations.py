"""Tests for concept and relation discovery on Tucker results."""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerConfig, TuckerResult
from repro.data import block_structured_tensor, generate_movielens_like, movie_titles
from repro.discovery import (
    concept_alignment,
    discover_concepts,
    discover_relations,
    relation_table,
)


@pytest.fixture(scope="module")
def movielens_result():
    dataset = generate_movielens_like(
        n_users=80, n_movies=60, n_years=6, n_hours=12, n_ratings=6000, seed=3
    )
    config = PTuckerConfig(ranks=(4, 4, 3, 3), max_iterations=5, seed=0)
    result = PTucker(config).fit(dataset.tensor)
    return dataset, result


class TestConceptDiscovery:
    def test_every_object_gets_a_concept(self, movielens_result):
        dataset, result = movielens_result
        discovery = discover_concepts(result, mode=1, n_concepts=4, seed=0)
        total = sum(c.size for c in discovery.concepts)
        assert total == dataset.tensor.shape[1]

    def test_representatives_belong_to_concept(self, movielens_result):
        _, result = movielens_result
        discovery = discover_concepts(result, mode=1, n_concepts=4, seed=0)
        for concept in discovery.concepts:
            members = set(concept.member_indices.tolist())
            for rep in concept.representative_indices:
                assert int(rep) in members

    def test_describe_uses_labels(self, movielens_result):
        dataset, result = movielens_result
        discovery = discover_concepts(result, mode=1, n_concepts=3, seed=0)
        titles = movie_titles(dataset)
        text = discovery.concepts[0].describe(titles, top=2)
        assert "Movie-" in text

    def test_as_table_rows(self, movielens_result):
        _, result = movielens_result
        discovery = discover_concepts(result, mode=1, n_concepts=3, seed=0)
        rows = discovery.as_table(top=2)
        assert all({"concept", "index", "attribute"} <= set(r) for r in rows)

    def test_concept_of(self, movielens_result):
        _, result = movielens_result
        discovery = discover_concepts(result, mode=1, n_concepts=3, seed=0)
        concept = discovery.concept_of(0)
        assert 0 in discovery.concepts[concept].member_indices

    def test_block_structure_recovered(self):
        """Factor-row clustering should align with planted co-cluster blocks."""
        tensor, assignments = block_structured_tensor(
            shape=(40, 40, 8), n_blocks=3, nnz=4000, seed=5
        )
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=6, seed=0)
        result = PTucker(config).fit(tensor)
        discovery = discover_concepts(result, mode=0, n_concepts=3, seed=0)
        purity = concept_alignment(discovery, assignments[0])
        assert purity > 0.5  # markedly better than the 1/3 chance level


class TestRelationDiscovery:
    def test_relations_sorted_by_strength(self, movielens_result):
        _, result = movielens_result
        relations = discover_relations(result, n_relations=5)
        strengths = [abs(r.strength) for r in relations]
        assert strengths == sorted(strengths, reverse=True)

    def test_core_index_points_to_reported_strength(self, movielens_result):
        _, result = movielens_result
        relations = discover_relations(result, n_relations=3)
        for relation in relations:
            assert result.core[relation.core_index] == pytest.approx(relation.strength)

    def test_top_attributes_are_valid_indices(self, movielens_result):
        dataset, result = movielens_result
        relations = discover_relations(result, n_relations=2, modes=(2, 3))
        for relation in relations:
            for mode, attributes in relation.top_attributes.items():
                assert attributes.max() < dataset.tensor.shape[mode]

    def test_requested_modes_only(self, movielens_result):
        _, result = movielens_result
        relations = discover_relations(result, n_relations=1, modes=(1, 2))
        assert set(relations[0].top_attributes) == {1, 2}

    def test_n_relations_capped_by_core_size(self, rng):
        result = TuckerResult(
            core=rng.uniform(size=(2, 2)),
            factors=[rng.uniform(size=(5, 2)), rng.uniform(size=(4, 2))],
        )
        relations = discover_relations(result, n_relations=100)
        assert len(relations) == 4

    def test_relation_table_and_describe(self, movielens_result):
        _, result = movielens_result
        relations = discover_relations(result, n_relations=2, modes=(2, 3))
        rows = relation_table(relations, mode_names=("user", "movie", "year", "hour"))
        assert len(rows) == 2
        assert "year" in rows[0]["details"]
