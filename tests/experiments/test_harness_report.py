"""Tests for the experiment harness and the text report utilities."""

import numpy as np
import pytest

from repro.core import PTuckerConfig
from repro.experiments import (
    ALGORITHM_REGISTRY,
    make_solver,
    render_table,
    run_algorithm,
    run_algorithms,
    summarize_speedups,
)
from repro.experiments.report import format_cell, ratio


class TestHarness:
    def test_registry_contains_all_paper_methods(self):
        for name in (
            "P-Tucker",
            "P-Tucker-Cache",
            "P-Tucker-Approx",
            "Tucker-ALS",
            "Tucker-wOpt",
            "Tucker-CSF",
            "S-HOT",
            "CP-ALS",
        ):
            assert name in ALGORITHM_REGISTRY

    def test_make_solver_unknown_name(self):
        with pytest.raises(KeyError):
            make_solver("NotATucker", PTuckerConfig())

    def test_run_algorithm_collects_metrics(self, planted_small, rng):
        train, test = planted_small.tensor.split(0.9, rng=rng)
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        outcome = run_algorithm("P-Tucker", train, config, test)
        assert outcome.result is not None
        assert outcome.seconds_per_iteration > 0
        assert np.isfinite(outcome.reconstruction_error)
        assert np.isfinite(outcome.test_rmse)
        assert not outcome.out_of_memory

    def test_run_algorithm_flags_oom(self, planted_small):
        config = PTuckerConfig(
            ranks=(3, 3, 3), max_iterations=2, seed=0, memory_budget_bytes=16
        )
        outcome = run_algorithm("Tucker-wOpt", planted_small.tensor, config)
        assert outcome.out_of_memory
        assert outcome.result is None

    def test_run_algorithms_order_preserved(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=1, seed=0)
        outcomes = run_algorithms(["S-HOT", "P-Tucker"], planted_small.tensor, config)
        assert [o.algorithm for o in outcomes] == ["S-HOT", "P-Tucker"]

    def test_outcome_as_row_keys(self, planted_small):
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=1, seed=0)
        outcome = run_algorithm("P-Tucker", planted_small.tensor, config)
        row = outcome.as_row()
        assert {"algorithm", "sec/iter", "recon_error", "test_rmse", "oom"} <= set(row)


class TestReport:
    def test_render_table_alignment_and_title(self):
        rows = [
            {"name": "a", "value": 1.0},
            {"name": "long-name", "value": 123456.789},
        ]
        text = render_table(rows, title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1]
        # All data lines have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_render_table_respects_column_order(self):
        rows = [{"b": 1, "a": 2}]
        text = render_table(rows, columns=["a", "b"])
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_format_cell_variants(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(0.0) == "0"
        assert "e" in format_cell(1.5e-7)
        assert format_cell("text") == "text"

    def test_ratio_handles_zero_denominator(self):
        assert ratio(1.0, 0.0) == float("inf")
        assert ratio(0.0, 0.0) == 1.0

    def test_summarize_speedups(self):
        rows = [
            {"slow": 10.0, "fast": 2.0},
            {"slow": 6.0, "fast": 3.0},
        ]
        summary = summarize_speedups(rows, "slow", "fast")
        assert summary["min"] == pytest.approx(2.0)
        assert summary["max"] == pytest.approx(5.0)
