"""Tests for the headline-claim summary helpers."""

import pytest

from repro.experiments.harness import ExperimentResult
from repro.experiments.summary import accuracy_summary, headline, speedup_summary


def _speed_result():
    result = ExperimentResult(name="speed")
    result.rows = [
        {"sweep": "nnz", "point": "a", "algorithm": "P-Tucker", "sec/iter": 1.0, "oom": False},
        {"sweep": "nnz", "point": "a", "algorithm": "S-HOT", "sec/iter": 3.0, "oom": False},
        {"sweep": "nnz", "point": "a", "algorithm": "Tucker-wOpt", "sec/iter": 50.0, "oom": False},
        {"sweep": "nnz", "point": "b", "algorithm": "P-Tucker", "sec/iter": 2.0, "oom": False},
        {"sweep": "nnz", "point": "b", "algorithm": "S-HOT", "sec/iter": 4.0, "oom": False},
        {"sweep": "nnz", "point": "b", "algorithm": "Tucker-wOpt", "sec/iter": 1.0, "oom": True},
    ]
    return result


def _accuracy_result():
    result = ExperimentResult(name="accuracy")
    result.rows = [
        {"dataset": "ml", "algorithm": "P-Tucker", "test_rmse": 0.1, "oom": False},
        {"dataset": "ml", "algorithm": "S-HOT", "test_rmse": 0.4, "oom": False},
        {"dataset": "ya", "algorithm": "P-Tucker", "test_rmse": 0.2, "oom": False},
        {"dataset": "ya", "algorithm": "S-HOT", "test_rmse": 0.3, "oom": False},
    ]
    return result


class TestSpeedupSummary:
    def test_ratio_uses_best_competitor(self):
        summary = speedup_summary(_speed_result())
        # point a: best competitor 3.0 / P-Tucker 1.0 = 3; point b: 4/2 = 2.
        assert summary["min"] == pytest.approx(2.0)
        assert summary["max"] == pytest.approx(3.0)
        assert summary["count"] == 2

    def test_oom_competitors_excluded(self):
        summary = speedup_summary(_speed_result())
        # The O.O.M. Tucker-wOpt row at point b (1.0s) must not be the reference.
        assert summary["min"] == pytest.approx(2.0)

    def test_empty_rows(self):
        assert speedup_summary(ExperimentResult(name="x"))["count"] == 0

    def test_missing_target_group_skipped(self):
        result = ExperimentResult(name="x")
        result.rows = [
            {"sweep": "s", "point": "a", "algorithm": "S-HOT", "sec/iter": 1.0, "oom": False}
        ]
        assert speedup_summary(result)["count"] == 0

    def test_nan_metric_skipped(self):
        result = _speed_result()
        result.rows[0]["sec/iter"] = float("nan")
        summary = speedup_summary(result)
        assert summary["count"] == 1


class TestAccuracyAndHeadline:
    def test_accuracy_ratios(self):
        summary = accuracy_summary(_accuracy_result())
        assert summary["min"] == pytest.approx(1.5)
        assert summary["max"] == pytest.approx(4.0)

    def test_headline_combines_both(self):
        out = headline([_speed_result()], [_accuracy_result()])
        assert out["speedup"]["max"] == pytest.approx(3.0)
        assert out["error_reduction"]["max"] == pytest.approx(4.0)
        assert out["speedup"]["min"] >= 1.0

    def test_headline_with_no_data(self):
        out = headline([], [])
        assert out["speedup"] == {"min": 1.0, "max": 1.0}
