"""Smoke and shape tests for every figure/table experiment module.

Each experiment is run at a reduced size and checked for the structural
properties the paper's corresponding figure/table relies on (which methods
appear, which columns exist, the expected qualitative ordering).
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, figure5, figure8, figure9, figure10, table1, table3, table5, table6


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        expected = {
            "table1",
            "table3",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "table5",
            "table6",
            "bench-kernels",
        }
        assert expected == set(EXPERIMENTS)

    def test_every_experiment_module_has_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)


class TestTable1:
    def test_ptucker_gets_all_checkmarks(self):
        result = table1.run(dimensionality=25, nnz=1500, max_iterations=2)
        by_method = {row["method"]: row for row in result.rows}
        ptucker = by_method["P-Tucker"]
        assert all(ptucker[key] for key in ("scale", "speed", "memory", "accuracy"))

    def test_all_methods_reported(self):
        result = table1.run(dimensionality=25, nnz=1500, max_iterations=2)
        assert {row["method"] for row in result.rows} == set(table1.TABLE1_METHODS)


class TestTable3:
    def test_time_rows_grow_with_nnz(self):
        rows = table3.time_scaling_rows(nnz_values=(500, 4000), dimensionality=150)
        assert rows[-1]["sec/iter"] > rows[0]["sec/iter"]

    def test_memory_rows_rank_ptucker_smallest(self):
        rows = table3.memory_model_rows(dimensionality=120, nnz=2500, rank=4)
        measured = {row["algorithm"]: row["measured_MB"] for row in rows}
        assert measured["P-Tucker"] <= min(
            measured["P-Tucker-Cache"], measured["Tucker-ALS"]
        )

    def test_model_column_present(self):
        rows = table3.memory_model_rows(dimensionality=80, nnz=1000, rank=3)
        assert all("model_MB" in row for row in rows)


class TestFigure5:
    def test_cumulative_share_monotone_and_bounded(self):
        result = figure5.run(rank=4, n_ratings=3000, max_iterations=2)
        shares = [row["cumulative_error_share"] for row in result.rows]
        assert all(b >= a - 1e-12 for a, b in zip(shares, shares[1:]))
        assert shares[-1] == pytest.approx(1.0)

    def test_top_entries_carry_disproportionate_error(self):
        result = figure5.run(rank=4, n_ratings=3000, max_iterations=2)
        by_fraction = {
            row["core_entry_fraction"]: row["cumulative_error_share"]
            for row in result.rows
        }
        assert by_fraction[0.2] > 0.3  # far above the uniform 0.2 share


class TestFigure8:
    def test_cache_uses_more_memory_everywhere(self):
        result = figure8.run(orders=(3, 4), dimensionality=25, nnz=400, max_iterations=1)
        by_key = {(row["order"], row["algorithm"]): row for row in result.rows}
        for order in (3, 4):
            assert (
                by_key[(order, "P-Tucker-Cache")]["peak_mem_MB"]
                > by_key[(order, "P-Tucker")]["peak_mem_MB"]
            )

    def test_cache_memory_grows_with_order(self):
        result = figure8.run(orders=(3, 5), dimensionality=25, nnz=400, max_iterations=1)
        cache_rows = [r for r in result.rows if r["algorithm"] == "P-Tucker-Cache"]
        assert cache_rows[-1]["peak_mem_MB"] > cache_rows[0]["peak_mem_MB"]


class TestFigure9:
    def test_core_shrinks_only_for_approx(self):
        result = figure9.run(rank=4, n_ratings=2500, max_iterations=3)
        approx_core = [
            row["core_nnz"] for row in result.rows if row["algorithm"] == "P-Tucker-Approx"
        ]
        exact_core = [
            row["core_nnz"] for row in result.rows if row["algorithm"] == "P-Tucker"
        ]
        assert approx_core[-1] < approx_core[0]
        assert exact_core[-1] == exact_core[0]

    def test_both_methods_report_every_iteration(self):
        result = figure9.run(rank=4, n_ratings=2500, max_iterations=3)
        per_method = {}
        for row in result.rows:
            per_method.setdefault(row["algorithm"], []).append(row["iteration"])
        assert per_method["P-Tucker"] == [1, 2, 3]
        assert per_method["P-Tucker-Approx"] == [1, 2, 3]


class TestFigure10:
    def test_speedup_monotone_in_threads(self):
        result = figure10.run(
            thread_counts=(1, 2, 4, 8), dimensionality=400, nnz=4000, max_iterations=1
        )
        speedups = [row["speedup"] for row in result.rows]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[0] == pytest.approx(1.0, rel=1e-6)

    def test_memory_linear_in_threads(self):
        result = figure10.run(
            thread_counts=(1, 4), dimensionality=400, nnz=4000, max_iterations=1
        )
        assert result.rows[1]["memory_MB"] == pytest.approx(
            4 * result.rows[0]["memory_MB"], rel=1e-6
        )


class TestDiscoveryTables:
    def test_table5_reports_dominant_genres(self):
        result = table5.run(rank=5, n_concepts=4, n_ratings=5000, max_iterations=3)
        assert result.rows, "expected at least one concept row"
        for row in result.rows:
            assert 0.0 <= row["genre_share"] <= 1.0
            assert row["size"] > 0

    def test_table6_reports_relations_with_valid_attributes(self):
        result = table6.run(rank=4, n_relations=2, n_ratings=5000, max_iterations=3)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["g_value"] >= 0.0
            assert row["top_years"]
            assert row["top_hours"]
