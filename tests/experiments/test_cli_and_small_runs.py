"""Tests for the experiments CLI and small-scale runs of the heavier experiments."""

import pytest

from repro.experiments import figure6, figure7, figure11
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.summary import accuracy_summary, speedup_summary


class TestExperimentsCli:
    def test_runs_named_experiment(self, capsys):
        assert experiments_main(["figure5"]) == 0
        output = capsys.readouterr().out
        assert "figure5" in output
        assert "cumulative_error_share" in output

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["figure99"])


class TestFigure6SmallMode:
    def test_small_sweep_produces_rows_for_every_method(self):
        result = figure6.run(
            panels=("order",),
            methods=("P-Tucker", "S-HOT"),
            small=True,
            max_iterations=1,
        )
        algorithms = {row["algorithm"] for row in result.rows}
        assert algorithms == {"P-Tucker", "S-HOT"}
        assert len(result.rows) == 2 * 3  # two methods x three sweep points

    def test_unknown_panel_rejected(self):
        with pytest.raises(KeyError):
            figure6.run(panels=("time",), small=True)

    def test_speedup_summary_from_small_run(self):
        result = figure6.run(
            panels=("nnz",),
            methods=("P-Tucker", "Tucker-CSF", "S-HOT"),
            small=True,
            max_iterations=1,
        )
        summary = speedup_summary(result)
        assert summary["count"] == 3
        assert summary["max"] >= summary["min"] > 0


class TestRealWorldExperimentsTiny:
    def test_figure7_tiny_scale(self):
        result = figure7.run(
            methods=("P-Tucker", "S-HOT"), scale=0.08, max_iterations=1
        )
        datasets = {row["dataset"] for row in result.rows}
        assert datasets == {"MovieLens", "Yahoo-music", "Video", "Image"}
        ptucker_rows = [r for r in result.rows if r["algorithm"] == "P-Tucker"]
        assert all(not r["oom"] for r in ptucker_rows)

    def test_figure11_tiny_scale_accuracy_ordering(self):
        result = figure11.run(
            methods=("P-Tucker", "S-HOT"), scale=0.08, max_iterations=2
        )
        summary = accuracy_summary(result)
        # P-Tucker should be at least as accurate as the zero-fill baseline on
        # most datasets; the summary max must show a clear win somewhere.
        assert summary["count"] >= 1
        assert summary["max"] > 1.0
