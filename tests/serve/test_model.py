"""ServingModel: brute-force equivalence, batch invariance, caches, exclusion."""

import numpy as np
import pytest

from repro.exceptions import DataFormatError, ShapeError
from repro.serve import ServingModel
from repro.serve.topk import canonical_topk


def make_model(shape, ranks, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    factors = [rng.standard_normal((i, j)) for i, j in zip(shape, ranks)]
    core = rng.standard_normal(ranks)
    return ServingModel(factors, core, algorithm="ptucker", **kwargs), factors, core


def dense_mode_scores(factors, core, context, mode):
    """Brute force: reconstruct the whole fibre along ``mode`` densely."""
    q = core
    axis_modes = list(range(core.ndim))
    for k in range(core.ndim):
        if k == mode:
            continue
        pos = axis_modes.index(k)
        q = np.tensordot(q, np.asarray(factors[k][context[k]]), axes=([pos], [0]))
        axis_modes.pop(pos)
    # q now has mode's rank axis only.
    return np.asarray(factors[mode]) @ q.reshape(-1)


class TestTopkAgainstDenseReconstruction:
    @pytest.mark.parametrize(
        "shape,ranks",
        [
            ((9, 40, 6), (2, 3, 2)),  # order 3
            ((7, 55, 5, 4), (2, 4, 2, 2)),  # order 4, ragged ranks
            ((5, 30, 4, 3, 3), (1, 3, 2, 2, 1)),  # order 5
        ],
    )
    def test_topk_equals_dense_brute_force(self, shape, ranks):
        model, factors, core = make_model(shape, ranks, seed=len(shape))
        rng = np.random.default_rng(99)
        mode = 1
        for trial in range(8):
            context = tuple(int(rng.integers(d)) for d in shape)
            k = int(rng.integers(1, shape[mode] + 2))
            result = model.topk(context, mode, k)
            dense = dense_mode_scores(factors, core, context, mode)
            expected = canonical_topk(dense, k)
            np.testing.assert_array_equal(result.items, expected.items)
            np.testing.assert_allclose(
                result.scores, dense[result.items], rtol=1e-10
            )

    def test_every_mode_can_be_the_item_mode(self):
        model, factors, core = make_model((8, 12, 10), (2, 3, 4), seed=5)
        context = (3, 7, 9)
        for mode in range(3):
            result = model.topk(context, mode, 4)
            dense = dense_mode_scores(factors, core, context, mode)
            expected = canonical_topk(dense, 4)
            np.testing.assert_array_equal(result.items, expected.items)


class TestBatchInvariance:
    def test_batched_unbatched_single_identical_bitwise(self, bitwise):
        model, _, _ = make_model((20, 3000, 9), (3, 5, 2), seed=2)
        rng = np.random.default_rng(3)
        contexts = [
            tuple(int(rng.integers(d)) for d in (20, 3000, 9)) for _ in range(40)
        ]
        batch = model.topk_batch(contexts, 1, 7)
        # Fresh model: no cache interaction between the two paths.
        model2, _, _ = make_model((20, 3000, 9), (3, 5, 2), seed=2)
        singles = [model2.topk(c, 1, 7) for c in contexts]
        for n, (b, s) in enumerate(zip(batch, singles)):
            bitwise(b.items, s.items, f"items for context {contexts[n]}")
            bitwise(b.scores, s.scores, f"scores for context {contexts[n]}")

    def test_cache_hits_do_not_change_answers(self, bitwise):
        model, _, _ = make_model((10, 500, 4), (2, 3, 2), seed=4)
        context = (7, 0, 2)
        first = model.topk(context, 1, 5)
        again = model.topk(context, 1, 5)  # q comes from the cache now
        bitwise(first.items, again.items, "cached items")
        bitwise(first.scores, again.scores, "cached scores")
        assert model.counters.get("query_cache.hit") >= 1

    def test_predict_batch_invariant_bitwise(self, bitwise):
        model, _, _ = make_model((15, 80, 7), (3, 4, 2), seed=6)
        rng = np.random.default_rng(7)
        block = np.column_stack(
            [rng.integers(d, size=64) for d in (15, 80, 7)]
        )
        batched = model.predict(block)
        singles = np.array([model.predict(row)[0] for row in block])
        bitwise(batched, singles, "batched vs per-row predictions")


class TestEdgeCases:
    def test_k_larger_than_mode_dimension(self):
        model, factors, core = make_model((6, 9, 5), (2, 2, 2), seed=8)
        result = model.topk((2, 0, 1), 1, 50)
        assert len(result.items) == 9

    def test_k_zero(self):
        model, _, _ = make_model((6, 9, 5), (2, 2, 2), seed=8)
        result = model.topk((2, 0, 1), 1, 0)
        assert result.items.shape == (0,)

    def test_empty_user_row_scores_zero_everywhere(self):
        model, factors, core = make_model((6, 9, 5), (2, 2, 2), seed=9)
        factors[0][3] = 0.0  # an all-zero (cold / empty) user row
        model = ServingModel(factors, core)
        result = model.topk((3, 0, 2), 1, 9)
        np.testing.assert_array_equal(result.scores, np.zeros(9))
        # Ties broken canonically: ascending item order.
        np.testing.assert_array_equal(result.items, np.arange(9))

    def test_short_context_form(self, bitwise):
        model, factors, core = make_model((6, 9, 5), (2, 2, 2), seed=10)
        full = model.topk((4, 0, 3), 1, 4)
        short = model.topk((4, 3), 1, 4)  # item-mode position omitted
        bitwise(full.items, short.items, "short-context items")
        bitwise(full.scores, short.scores, "short-context scores")

    def test_bad_context_raises_shape_error(self):
        model, _, _ = make_model((6, 9, 5), (2, 2, 2), seed=11)
        with pytest.raises(ShapeError):
            model.topk((4,), 1, 3)
        with pytest.raises(ShapeError):
            model.topk((6, 0, 0), 1, 3)  # mode-0 index out of range
        with pytest.raises(ShapeError):
            model.topk((0, 0, 0), 7, 3)
        with pytest.raises(ShapeError):
            model.predict((0, 0))

    def test_empty_batch(self):
        model, _, _ = make_model((6, 9, 5), (2, 2, 2), seed=12)
        assert model.topk_batch([], 1, 3) == []

    def test_inconsistent_model_rejected(self):
        rng = np.random.default_rng(0)
        factors = [rng.standard_normal((4, 2)), rng.standard_normal((5, 3))]
        with pytest.raises(DataFormatError):
            ServingModel(factors, np.zeros((2, 2)))


class TestExcludeObserved:
    def test_requires_a_store(self):
        model, _, _ = make_model((6, 9, 5), (2, 2, 2), seed=13)
        with pytest.raises(DataFormatError):
            model.topk((0, 0, 0), 1, 3, exclude_observed=True)

    def test_observed_items_are_masked(self, tmp_path):
        from repro.shards import ShardStore
        from repro.tensor import SparseTensor

        model, factors, core = make_model((6, 9, 5), (2, 2, 2), seed=14)
        indices = np.array(
            [[2, 1, 3], [2, 4, 3], [2, 7, 3], [2, 4, 0], [5, 4, 3]]
        )
        tensor = SparseTensor(
            indices=indices, values=np.ones(5), shape=(6, 9, 5)
        )
        store = ShardStore.build(tensor, str(tmp_path / "shards"))
        model.attach_store(store)
        result = model.topk((2, 0, 3), 1, 9, exclude_observed=True)
        # Only the entries matching the full context (2, *, 3) are excluded.
        assert set(result.items) == set(range(9)) - {1, 4, 7}
        # And the kept scores agree with the unmasked ranking.
        unmasked = model.topk((2, 0, 3), 1, 9)
        kept = {int(i): float(s) for i, s in zip(unmasked.items, unmasked.scores)}
        for item, score in zip(result.items, result.scores):
            assert kept[int(item)] == score

    def test_context_with_no_observations_excludes_nothing(
        self, tmp_path, bitwise
    ):
        from repro.shards import ShardStore
        from repro.tensor import SparseTensor

        model, _, _ = make_model((6, 9, 5), (2, 2, 2), seed=15)
        tensor = SparseTensor(
            indices=np.array([[0, 0, 0]]), values=np.ones(1), shape=(6, 9, 5)
        )
        model.attach_store(ShardStore.build(tensor, str(tmp_path / "shards")))
        plain = model.topk((3, 0, 2), 1, 4)
        masked = model.topk((3, 0, 2), 1, 4, exclude_observed=True)
        bitwise(plain.items, masked.items, "masked items with no observations")

    def test_store_shape_mismatch_rejected(self, tmp_path):
        from repro.shards import ShardStore
        from repro.tensor import SparseTensor

        model, _, _ = make_model((6, 9, 5), (2, 2, 2), seed=16)
        tensor = SparseTensor(
            indices=np.array([[0, 0]]), values=np.ones(1), shape=(3, 3)
        )
        store = ShardStore.build(tensor, str(tmp_path / "shards"))
        with pytest.raises(ShapeError):
            model.attach_store(store)


class TestStats:
    def test_stats_payload_shape(self):
        model, _, _ = make_model((6, 9, 5), (2, 3, 2), seed=17)
        model.topk((0, 0, 0), 1, 3)
        model.predict((1, 2, 3))
        stats = model.stats()
        assert stats["shape"] == [6, 9, 5]
        assert stats["ranks"] == [2, 3, 2]
        assert stats["counters"]["model.topk_queries"] == 1
        assert stats["counters"]["model.predictions"] == 1
        assert stats["query_cache"]["misses"] == 1
