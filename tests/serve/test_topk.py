"""Canonical top-K selection and the deterministic blocked scorer."""

import numpy as np
import pytest

from repro.serve.topk import (
    TopKResult,
    canonical_topk,
    score_block,
    score_pairs,
    topk_scores,
)


def brute_topk(scores, k, exclude=None):
    """Reference selection straight from the canonical definition."""
    scores = np.asarray(scores, dtype=np.float64)
    items = np.arange(scores.shape[0])
    if exclude is not None and len(exclude):
        keep = np.ones(scores.shape[0], dtype=bool)
        keep[np.asarray(exclude)] = False
        items = items[keep]
    order = sorted(items, key=lambda i: (-scores[i], i))[: min(k, len(items))]
    chosen = np.asarray(order, dtype=np.int64)
    return TopKResult(items=chosen, scores=scores[chosen])


def assert_same(a: TopKResult, b: TopKResult, bitwise):
    bitwise(a.items, b.items, "top-K items")
    bitwise(a.scores, b.scores, "top-K scores")


class TestCanonicalTopk:
    def test_matches_brute_force_on_random_vectors(self, bitwise):
        rng = np.random.default_rng(0)
        for trial in range(25):
            n = int(rng.integers(1, 400))
            scores = rng.standard_normal(n)
            k = int(rng.integers(0, n + 3))
            assert_same(canonical_topk(scores, k), brute_topk(scores, k),
                        bitwise)

    def test_ties_at_the_k_boundary_pick_smallest_items(self):
        scores = np.array([1.0, 5.0, 3.0, 3.0, 3.0, 0.0])
        result = canonical_topk(scores, 3)
        # 5.0 first, then the tied 3.0s by ascending index.
        assert list(result.items) == [1, 2, 3]

    def test_all_tied(self):
        result = canonical_topk(np.zeros(10), 4)
        assert list(result.items) == [0, 1, 2, 3]

    def test_k_at_least_dimension_returns_everything(self):
        scores = np.array([2.0, -1.0, 3.0])
        for k in (3, 4, 100):
            result = canonical_topk(scores, k)
            assert list(result.items) == [2, 0, 1]

    def test_k_zero_is_empty(self):
        result = canonical_topk(np.ones(5), 0)
        assert result.items.shape == (0,)
        assert result.scores.shape == (0,)

    def test_exclusion(self, bitwise):
        rng = np.random.default_rng(1)
        scores = rng.standard_normal(50)
        exclude = np.array([int(np.argmax(scores)), 7, 7, 12])
        result = canonical_topk(scores, 5, exclude)
        assert_same(result, brute_topk(scores, 5, exclude), bitwise)
        assert not set(exclude) & set(result.items)

    def test_excluding_everything_is_empty(self):
        scores = np.arange(4.0)
        result = canonical_topk(scores, 2, np.arange(4))
        assert result.items.shape == (0,)


class TestScoreBlock:
    def test_matches_gemm_values(self):
        rng = np.random.default_rng(2)
        q = rng.standard_normal((5, 7))
        projection = rng.standard_normal((7, 33))
        np.testing.assert_allclose(
            score_block(q, projection), q @ projection, rtol=1e-12
        )

    def test_batch_shape_invariant_bitwise(self, bitwise):
        rng = np.random.default_rng(3)
        q = rng.standard_normal((64, 16))
        projection = rng.standard_normal((16, 501))
        full = score_block(q, projection)
        one = score_block(q[17:18], projection)
        bitwise(full[17], one[0], "row 17 vs single-row batch")

    def test_score_pairs_bitwise_equal_to_score_block_gather(self, bitwise):
        rng = np.random.default_rng(8)
        q = rng.standard_normal((9, 11))
        projection = rng.standard_normal((11, 200))
        row_map = rng.integers(9, size=57)
        col_map = rng.integers(200, size=57)
        gathered = score_block(q, projection)[row_map, col_map]
        bitwise(
            score_pairs(q, projection, row_map, col_map),
            gathered,
            "score_pairs vs gathered block",
        )

    def test_column_blocking_invariant_bitwise(self, bitwise):
        rng = np.random.default_rng(4)
        q = rng.standard_normal((3, 8))
        projection = rng.standard_normal((8, 100))
        full = score_block(q, projection)
        split = np.concatenate(
            [score_block(q, projection[:, s]) for s in
             (slice(0, 37), slice(37, 64), slice(64, 100))],
            axis=1,
        )
        bitwise(full, split, "column-blocked scores")


class TestTopkScores:
    @pytest.mark.parametrize("items_total", [1, 5, 100, 2048, 2049, 5000])
    @pytest.mark.parametrize("k", [1, 3, 64])
    def test_matches_canonical_full_scan(self, items_total, k, bitwise):
        rng = np.random.default_rng(items_total * 31 + k)
        q = rng.standard_normal((4, 6))
        projection = rng.standard_normal((6, items_total))
        results = topk_scores(q, projection, k)
        for row in range(4):
            full = score_block(q[row : row + 1], projection)[0]
            assert_same(results[row], canonical_topk(full, k), bitwise)

    def test_pruning_survives_adversarial_ties(self):
        # Constant scores: every chunk maximum equals every score, so the
        # pruning bound keeps all chunks and ties resolve canonically.
        q = np.ones((2, 3))
        projection = np.ones((3, 5000))
        for k in (1, 10, 2048, 4999, 5000):
            results = topk_scores(q, projection, k)
            for result in results:
                assert list(result.items) == list(range(min(k, 5000)))

    def test_batched_equals_unbatched_bitwise(self, bitwise):
        rng = np.random.default_rng(9)
        q = rng.standard_normal((50, 12))
        projection = rng.standard_normal((12, 7001))
        batch = topk_scores(q, projection, 9)
        for row in range(50):
            single = topk_scores(q[row : row + 1], projection, 9)[0]
            assert_same(batch[row], single, bitwise)

    def test_row_and_col_block_geometry_does_not_change_results(self, bitwise):
        rng = np.random.default_rng(10)
        q = rng.standard_normal((7, 5))
        projection = rng.standard_normal((5, 3000))
        reference = topk_scores(q, projection, 12)
        for col_block, row_block in [(128, 2), (999, 3), (3000, 7), (4096, 1)]:
            results = topk_scores(
                q, projection, 12, col_block=col_block, row_block=row_block
            )
            for a, b in zip(results, reference):
                assert_same(a, b, bitwise)

    def test_per_query_exclusion(self, bitwise):
        rng = np.random.default_rng(11)
        q = rng.standard_normal((3, 4))
        projection = rng.standard_normal((4, 600))
        exclude = [np.array([0, 5, 599]), None, np.arange(300)]
        results = topk_scores(q, projection, 8, exclude)
        for row in range(3):
            full = score_block(q[row : row + 1], projection)[0]
            assert_same(
                results[row], canonical_topk(full, 8, exclude[row]), bitwise
            )
