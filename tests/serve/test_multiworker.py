"""Multi-worker serving: item-sharded queries, degradation, hot-swap.

The engine's contract is that worker processes are *invisible* in the
answers: every top-K/predict reply is bitwise identical to the in-loop
``ServingModel``, whatever the worker count, and whether or not workers
died along the way.  The violent variant (SIGKILL mid-stream) is under
the ``chaos`` marker; everything else runs in tier-1.
"""

import os

import numpy as np
import pytest

from repro.core import TuckerResult
from repro.fabric import FabricError
from repro.model_io import save_model
from repro.serve import ServingModel, ServingWorkerEngine
from repro.serve.server import ModelServer
from repro.serve.topk import TopKResult
from repro.serve.workers import _merge_topk

SHAPE = (6, 9, 5)
RANKS = (2, 3, 2)
CONTEXTS = [[2, 4], [0, 0], [5, 3], [1, 2], [3, 1]]


def build_parts(seed=0):
    rng = np.random.default_rng(seed)
    factors = [
        rng.standard_normal((dim, rank)) for dim, rank in zip(SHAPE, RANKS)
    ]
    core = rng.standard_normal(RANKS)
    return factors, core


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    factors, core = build_parts()
    return save_model(
        TuckerResult(core=core, factors=factors, algorithm="ptucker"),
        str(tmp_path_factory.mktemp("model") / "model"),
    )


@pytest.fixture(scope="module")
def engine(model_path):
    factors, core = build_parts()
    local = ServingModel(factors, core, algorithm="ptucker")
    eng = ServingWorkerEngine(model_path, local_model=local, n_workers=3)
    assert eng.wait_ready(60.0)
    yield eng
    eng.shutdown()


@pytest.fixture()
def reference():
    factors, core = build_parts()
    return ServingModel(factors, core, algorithm="ptucker")


def assert_topk_bitwise(results, expected):
    for ours, theirs in zip(results, expected):
        np.testing.assert_array_equal(ours.items, theirs.items)
        assert ours.scores.tobytes() == theirs.scores.tobytes()


class TestBitwise:
    @pytest.mark.parametrize("mode,k", [(1, 3), (1, 9), (0, 4), (2, 5)])
    def test_topk_matches_inloop(self, engine, reference, mode, k):
        """Item sharding across 3 workers is invisible: same items, same
        score bytes, ties included (k=9 covers the whole mode-1 axis)."""
        assert_topk_bitwise(
            engine.topk_batch(CONTEXTS, mode, k),
            reference.topk_batch(CONTEXTS, mode, k),
        )

    def test_predict_matches_inloop(self, engine, reference):
        indices = [[1, 2, 3], [0, 0, 0], [5, 8, 4], [3, 3, 3]]
        ours = np.asarray(engine.predict(indices))
        assert ours.tobytes() == reference.predict(indices).tobytes()

    def test_more_workers_than_items_still_exact(self, model_path, reference):
        """Empty item shards (workers > items) are skipped, not queried."""
        factors, core = build_parts()
        local = ServingModel(factors, core, algorithm="ptucker")
        engine = ServingWorkerEngine(
            model_path, local_model=local, n_workers=2
        )
        try:
            assert engine.wait_ready(60.0)
            assert_topk_bitwise(
                engine.topk_batch(CONTEXTS[:2], 2, 5),
                reference.topk_batch(CONTEXTS[:2], 2, 5),
            )
        finally:
            engine.shutdown()


class TestMergeTopk:
    def test_boundary_ties_resolve_by_ascending_item(self):
        parts = [
            (np.array([3, 0]), np.array([2.0, 1.0])),
            (np.array([5, 7]), np.array([2.0, 1.0])),
        ]
        merged = _merge_topk(parts, k=3)
        # Tie at 2.0 → items 3 then 5; tie at 1.0 → item 0 beats 7.
        np.testing.assert_array_equal(merged.items, [3, 5, 0])
        np.testing.assert_array_equal(merged.scores, [2.0, 2.0, 1.0])

    def test_k_larger_than_union(self):
        merged = _merge_topk([(np.array([1]), np.array([0.5]))], k=10)
        np.testing.assert_array_equal(merged.items, [1])


class TestHotSwap:
    def test_apply_update_fans_out_bitwise(self, model_path):
        factors, core = build_parts()
        local = ServingModel(factors, core, algorithm="ptucker")
        mirror = ServingModel(
            [f.copy() for f in factors], core.copy(), algorithm="ptucker"
        )
        engine = ServingWorkerEngine(
            model_path, local_model=local, n_workers=2
        )
        try:
            assert engine.wait_ready(60.0)
            rng = np.random.default_rng(42)
            rows = np.array([0, 3, 7])
            new_rows = rng.standard_normal((3, RANKS[1]))
            assert engine.apply_update(1, rows, new_rows) == 3
            mirror.apply_update(1, rows, new_rows)
            assert_topk_bitwise(
                engine.topk_batch(CONTEXTS, 1, 4),
                mirror.topk_batch(CONTEXTS, 1, 4),
            )
        finally:
            engine.shutdown()


class TestExcludeObserved:
    def test_sharded_exclusion_matches_inloop(self, tmp_path):
        from repro.shards import ShardStore
        from repro.tensor import SparseTensor

        factors, core = build_parts()
        indices = np.array(
            [[2, 1, 3], [2, 4, 3], [2, 7, 3], [2, 4, 0], [5, 4, 3]]
        )
        tensor = SparseTensor(
            indices=indices, values=np.ones(5), shape=SHAPE
        )
        store_path = str(tmp_path / "shards")
        ShardStore.build(tensor, store_path)

        path = save_model(
            TuckerResult(core=core, factors=factors, algorithm="ptucker"),
            str(tmp_path / "model"),
        )
        local = ServingModel(factors, core, algorithm="ptucker")
        local.attach_store(store_path)
        reference = ServingModel(factors, core, algorithm="ptucker")
        reference.attach_store(store_path)

        engine = ServingWorkerEngine(
            path, local_model=local, n_workers=3, store_path=store_path
        )
        try:
            assert engine.wait_ready(60.0)
            # The observed items of context (2, *, 3) span several item
            # shards; each worker masks only its own global-id range.
            assert_topk_bitwise(
                engine.topk_batch(
                    [[2, 3]], 1, 9, exclude_observed=True
                ),
                reference.topk_batch(
                    [[2, 3]], 1, 9, exclude_observed=True
                ),
            )
        finally:
            engine.shutdown()


class TestDegradation:
    def test_fabric_error_falls_back_to_local_model(
        self, engine, reference, monkeypatch
    ):
        """A broken pool degrades to in-loop execution: answers stay
        bitwise-correct and the fallback is counted."""

        def broken(tasks, **kwargs):
            raise FabricError("pool is gone")

        monkeypatch.setattr(engine.supervisor, "run_tasks", broken)
        before = engine.counters.get("serve.fallbacks")
        assert_topk_bitwise(
            engine.topk_batch(CONTEXTS, 1, 4),
            reference.topk_batch(CONTEXTS, 1, 4),
        )
        ours = np.asarray(engine.predict([[1, 2, 3]]))
        assert ours.tobytes() == reference.predict([[1, 2, 3]]).tobytes()
        assert engine.counters.get("serve.fallbacks") == before + 2


class TestServerIntegration:
    def test_health_reports_ready_and_worker_liveness(self, engine):
        import asyncio

        server = ModelServer(engine.local_model, engine=engine)

        async def scenario():
            try:
                return await server.handle_request("health", {})
            finally:
                await server.batcher.close()

        reply = asyncio.run(scenario())
        assert reply["ready"] is True
        assert reply["status"] == "ok"
        assert len(reply["workers"]) == 3
        assert all(w["alive"] for w in reply["workers"])

    def test_stats_carries_degraded_flag(self, engine):
        server = ModelServer(engine.local_model, engine=engine)
        stats = server.op_stats()
        assert stats["degraded"] is False
        assert stats["serving"]["n_workers"] == 3

    def test_inloop_server_is_ready_immediately(self):
        factors, core = build_parts()
        server = ModelServer(ServingModel(factors, core))
        assert server.ready()
        assert server.op_health() == {"status": "ok", "ready": True}


@pytest.mark.chaos
class TestChaosServing:
    def test_worker_sigkill_mid_stream_answers_stay_bitwise(self, model_path):
        """Kill a serving worker between queries: the next wave re-dispatches
        its shard, answers stay byte-identical, the pool heals."""
        factors, core = build_parts()
        local = ServingModel(factors, core, algorithm="ptucker")
        reference = ServingModel(factors, core, algorithm="ptucker")
        engine = ServingWorkerEngine(
            model_path, local_model=local, n_workers=3
        )
        try:
            assert engine.wait_ready(60.0)
            expected = reference.topk_batch(CONTEXTS, 1, 4)
            assert_topk_bitwise(engine.topk_batch(CONTEXTS, 1, 4), expected)

            victim = engine.liveness()[0]["pid"]
            os.kill(victim, 9)
            # Immediately after the kill: answers are still bitwise-exact
            # (the dead worker's shard is re-dispatched to a survivor).
            assert_topk_bitwise(engine.topk_batch(CONTEXTS, 1, 4), expected)
            # And the slot heals: eventually all three are back and ready.
            assert engine.wait_ready(60.0)
            assert_topk_bitwise(engine.topk_batch(CONTEXTS, 1, 4), expected)
        finally:
            engine.shutdown()
