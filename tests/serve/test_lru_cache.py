"""LRU hot-row cache: eviction order, counters, disabled mode."""

from repro.metrics import Counters
from repro.serve import LRUCache


class TestLRUBehaviour:
    def test_get_returns_cached_value(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # 'a' is now more recent than 'b'
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_existing_key_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not grow
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10
        assert len(cache) == 2

    def test_get_or_compute_only_computes_on_miss(self):
        calls = []
        cache = LRUCache(4)

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1

    def test_clear_drops_entries_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.snapshot()["hits"] == 1


class TestDisabledCache:
    def test_zero_capacity_stores_nothing(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_zero_capacity_always_recomputes(self):
        calls = []
        cache = LRUCache(0)
        for _ in range(3):
            cache.get_or_compute("k", lambda: calls.append(1) or len(calls))
        assert len(calls) == 3


class TestCounters:
    def test_hit_miss_eviction_counts(self):
        cache = LRUCache(1, name="rows")
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.get("a")  # hit
        cache.put("b", 2)  # evicts 'a'
        snapshot = cache.snapshot()
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["evictions"] == 1
        assert snapshot["hit_rate"] == 0.5
        assert snapshot["size"] == 1
        assert snapshot["capacity"] == 1

    def test_shared_counters_namespace_events_by_name(self):
        shared = Counters()
        rows = LRUCache(2, name="rows", counters=shared)
        queries = LRUCache(2, name="queries", counters=shared)
        rows.get("x")
        queries.get("y")
        queries.get("y")
        assert shared.get("rows.miss") == 1
        assert shared.get("queries.miss") == 2
        # No cross-talk: each cache's snapshot reads only its own labels.
        assert rows.snapshot()["misses"] == 1
