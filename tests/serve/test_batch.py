"""MicroBatcher: coalescing, deadlines, error forwarding, drain/close."""

import asyncio

import pytest

from repro.metrics import Counters
from repro.serve import MicroBatcher


def run(coro):
    return asyncio.run(coro)


class RecordingHandler:
    """Synchronous batch handler that records every (group, payloads) call."""

    def __init__(self, fail_on=None):
        self.calls = []
        self.fail_on = fail_on

    def __call__(self, group, payloads):
        self.calls.append((group, list(payloads)))
        if self.fail_on is not None and self.fail_on in payloads:
            raise RuntimeError(f"bad payload {self.fail_on}")
        return [("done", p) for p in payloads]


class TestCoalescing:
    def test_concurrent_submissions_share_one_batch(self):
        handler = RecordingHandler()

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=16, max_wait_ms=20.0)
            results = await asyncio.gather(
                *(batcher.submit("g", i) for i in range(5))
            )
            await batcher.close()
            return results

        results = run(scenario())
        assert results == [("done", i) for i in range(5)]
        assert len(handler.calls) == 1  # all five rode one batch
        assert handler.calls[0] == ("g", [0, 1, 2, 3, 4])

    def test_full_batch_flushes_immediately(self):
        handler = RecordingHandler()

        async def scenario():
            # max_wait so large that only the size trigger can flush.
            batcher = MicroBatcher(handler, max_batch=2, max_wait_ms=60_000.0)
            results = await asyncio.gather(
                batcher.submit("g", "a"), batcher.submit("g", "b")
            )
            await batcher.close()
            return results

        assert run(scenario()) == [("done", "a"), ("done", "b")]
        assert len(handler.calls) == 1

    def test_deadline_flushes_a_lone_request(self):
        handler = RecordingHandler()

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=64, max_wait_ms=5.0)
            result = await asyncio.wait_for(batcher.submit("g", 7), timeout=5.0)
            await batcher.close()
            return result

        assert run(scenario()) == ("done", 7)

    def test_groups_do_not_mix(self):
        handler = RecordingHandler()

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=16, max_wait_ms=20.0)
            await asyncio.gather(
                batcher.submit(("topk", 1, 5), "x"),
                batcher.submit(("topk", 2, 5), "y"),
            )
            await batcher.close()

        run(scenario())
        groups = sorted(group for group, _ in handler.calls)
        assert groups == [("topk", 1, 5), ("topk", 2, 5)]


class TestErrors:
    def test_handler_exception_reaches_every_awaiter(self):
        handler = RecordingHandler(fail_on="b")

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=2, max_wait_ms=60_000.0)
            results = await asyncio.gather(
                batcher.submit("g", "a"),
                batcher.submit("g", "b"),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_wrong_result_count_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda group, payloads: [], max_batch=1, max_wait_ms=1.0
            )
            try:
                with pytest.raises(RuntimeError, match="0 results"):
                    await batcher.submit("g", 1)
            finally:
                await batcher.close()

        run(scenario())

    def test_submit_after_close_is_rejected(self):
        async def scenario():
            batcher = MicroBatcher(RecordingHandler(), max_batch=4)
            await batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit("g", 1)

        run(scenario())

    def test_max_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            MicroBatcher(RecordingHandler(), max_batch=0)


class TestDrainAndStats:
    def test_close_flushes_pending_requests(self):
        handler = RecordingHandler()

        async def scenario():
            # Deadline far away: only close() can flush this.
            batcher = MicroBatcher(handler, max_batch=64, max_wait_ms=60_000.0)
            pending = asyncio.ensure_future(batcher.submit("g", 1))
            await asyncio.sleep(0)  # let submit enqueue
            await batcher.close()
            return await pending

        assert run(scenario()) == ("done", 1)

    def test_occupancy_counters(self):
        handler = RecordingHandler()
        counters = Counters()

        async def scenario():
            batcher = MicroBatcher(
                handler, max_batch=3, max_wait_ms=60_000.0, counters=counters
            )
            await asyncio.gather(*(batcher.submit("g", i) for i in range(6)))
            await batcher.close()
            return batcher.snapshot()

        snapshot = run(scenario())
        assert snapshot["requests"] == 6
        assert snapshot["batches"] == 2
        assert snapshot["full_flushes"] == 2
        assert snapshot["max_occupancy"] == 3
        assert snapshot["mean_occupancy"] == 3.0
        assert counters.get("batch.requests") == 6
