"""ModelServer request handling plus an end-to-end CLI serve smoke test."""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import urllib.request

import numpy as np
import pytest

from repro.core import TuckerResult
from repro.model_io import save_model
from repro.serve import ServingModel
from repro.serve.server import ModelServer, ServingError

SHAPE = (6, 9, 5)
RANKS = (2, 3, 2)


def build_model(seed=0):
    rng = np.random.default_rng(seed)
    factors = [rng.standard_normal((dim, rank)) for dim, rank in zip(SHAPE, RANKS)]
    core = rng.standard_normal(RANKS)
    return ServingModel(factors, core, algorithm="ptucker")


def call(server, op, request):
    async def scenario():
        try:
            return await server.handle_request(op, request)
        finally:
            await server.batcher.close()

    return asyncio.run(scenario())


class TestHandleRequest:
    def test_predict_single_index(self):
        model = build_model()
        reply = call(ModelServer(model), "predict", {"index": [1, 2, 3]})
        expected = float(model.predict([[1, 2, 3]])[0])
        assert reply == {"values": [pytest.approx(expected)]}

    def test_predict_batch_matches_model(self):
        model = build_model()
        indices = [[0, 0, 0], [5, 8, 4], [2, 3, 1]]
        reply = call(ModelServer(model), "predict", {"indices": indices})
        np.testing.assert_array_equal(
            np.asarray(reply["values"]), model.predict(indices)
        )

    def test_topk_single_context(self):
        model = build_model()
        reply = call(
            ModelServer(model),
            "topk",
            {"context": [2, 4], "mode": 1, "k": 3},
        )
        expected = model.topk([2, 4], mode=1, k=3)
        assert reply["items"] == [int(i) for i in expected.items]
        assert reply["scores"] == [float(s) for s in expected.scores]

    def test_topk_many_contexts(self):
        model = build_model()
        contexts = [[0, 0], [3, 2], [5, 4]]
        reply = call(
            ModelServer(model),
            "topk",
            {"contexts": contexts, "mode": 1, "k": 2},
        )
        assert len(reply["results"]) == 3
        for context, result in zip(contexts, reply["results"]):
            expected = model.topk(context, mode=1, k=2)
            assert result["items"] == [int(i) for i in expected.items]

    def test_health(self):
        reply = call(ModelServer(build_model()), "health", {})
        assert reply == {"status": "ok", "ready": True}

    def test_stats_payload_shape(self):
        model = build_model()
        server = ModelServer(model)

        async def scenario():
            await server.op_predict({"index": [0, 0, 0]})
            try:
                return server.op_stats()
            finally:
                await server.batcher.close()

        stats = asyncio.run(scenario())
        assert stats["algorithm"] == "ptucker"
        assert stats["shape"] == list(SHAPE)
        assert stats["batcher"]["requests"] == 1
        assert stats["latency"]["predict"]["count"] == 1
        assert stats["latency"]["topk"]["count"] == 0
        assert "query_cache" in stats and "counters" in stats

    @pytest.mark.parametrize(
        "op, request_body, message",
        [
            ("predict", {}, "predict needs"),
            ("predict", {"indices": []}, "predict needs"),
            ("topk", {"mode": 1, "k": 3}, "topk needs 'context'"),
            ("topk", {"contexts": [], "mode": 1, "k": 3}, "non-empty"),
            ("topk", {"context": [0, 0], "k": 3}, "integer 'mode' and 'k'"),
            ("topk", {"context": [0, 0], "mode": 1}, "integer 'mode' and 'k'"),
            ("nope", {}, "unknown operation"),
        ],
    )
    def test_bad_requests_raise_serving_error(self, op, request_body, message):
        server = ModelServer(build_model())

        async def scenario():
            try:
                with pytest.raises(ServingError, match=message):
                    await server.handle_request(op, request_body)
            finally:
                await server.batcher.close()

        asyncio.run(scenario())

    def test_shutdown_op_sets_event(self):
        server = ModelServer(build_model())

        async def scenario():
            server.shutdown_event = asyncio.Event()
            try:
                reply = await server.handle_request("shutdown", {})
                return reply, server.shutdown_event.is_set()
            finally:
                await server.batcher.close()

        reply, fired = asyncio.run(scenario())
        assert reply == {"status": "shutting down"}
        assert fired


def post(base, path, payload, timeout=10):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(base, path, timeout=10):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return json.loads(response.read())


@pytest.fixture
def model_file(tmp_path):
    rng = np.random.default_rng(7)
    factors = [rng.standard_normal((dim, rank)) for dim, rank in zip(SHAPE, RANKS)]
    core = rng.standard_normal(RANKS)
    result = TuckerResult(core=core, factors=factors, algorithm="ptucker")
    return save_model(result, str(tmp_path / "model"))


class TestEndToEnd:
    def test_http_and_stdio_round_trip_with_graceful_shutdown(self, model_file):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                model_file,
                "--port",
                "0",
                "--stdio",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no serving banner in {banner!r}"
            base = f"http://{match.group(1)}:{match.group(2)}"

            assert get(base, "/health") == {"status": "ok", "ready": True}

            reply = post(base, "/predict", {"index": [1, 2, 3]})
            assert len(reply["values"]) == 1

            reply = post(
                base, "/topk", {"context": [2, 4], "mode": 1, "k": 3}
            )
            assert len(reply["items"]) == 3
            assert reply["scores"] == sorted(reply["scores"], reverse=True)

            # Same queries over the stdin JSON-lines transport.
            process.stdin.write(
                json.dumps({"op": "predict", "index": [1, 2, 3]}) + "\n"
            )
            process.stdin.flush()
            stdio_reply = json.loads(process.stdout.readline())
            assert stdio_reply["values"] == reply_values_approx(
                post(base, "/predict", {"index": [1, 2, 3]})["values"]
            )

            process.stdin.write(
                json.dumps(
                    {"op": "topk", "context": [2, 4], "mode": 1, "k": 3}
                )
                + "\n"
            )
            process.stdin.flush()
            stdio_topk = json.loads(process.stdout.readline())
            assert stdio_topk["items"] == reply["items"]

            stats = get(base, "/stats")
            assert stats["latency"]["predict"]["count"] >= 2
            assert stats["batcher"]["requests"] >= 4

            # Malformed request surfaces as HTTP 400, not a crash.
            bad = urllib.request.Request(
                base + "/topk",
                data=json.dumps({"context": [2, 4]}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=10)
            assert excinfo.value.code == 400

            process.send_signal(signal.SIGTERM)
            process.stdin.close()
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=15)

    def test_shutdown_endpoint_stops_the_server(self, model_file):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", model_file, "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no serving banner in {banner!r}"
            base = f"http://{match.group(1)}:{match.group(2)}"
            reply = post(base, "/shutdown", {})
            assert reply == {"status": "shutting down"}
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=15)


def reply_values_approx(values):
    return [pytest.approx(v) for v in values]
