"""Unit tests for the dense tensor algebra (unfold, fold, n-mode product)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import (
    fold,
    frobenius_norm,
    kron_rows,
    mode_product,
    multi_mode_product,
    tucker_reconstruct,
    unfold,
)


class TestUnfoldFold:
    def test_unfold_shapes(self, small_dense_tensor):
        for mode in range(3):
            matrix = unfold(small_dense_tensor, mode)
            expected_cols = small_dense_tensor.size // small_dense_tensor.shape[mode]
            assert matrix.shape == (small_dense_tensor.shape[mode], expected_cols)

    def test_fold_inverts_unfold(self, small_dense_tensor):
        for mode in range(3):
            matrix = unfold(small_dense_tensor, mode)
            back = fold(matrix, mode, small_dense_tensor.shape)
            np.testing.assert_allclose(back, small_dense_tensor)

    def test_unfold_known_values(self):
        # 2x2x2 tensor: unfolding along mode 0 must keep mode-0 fibers as rows.
        tensor = np.arange(8.0).reshape(2, 2, 2)
        matrix = unfold(tensor, 0)
        assert matrix.shape == (2, 4)
        # Each row contains exactly the 4 entries with that mode-0 index.
        np.testing.assert_allclose(np.sort(matrix[0]), np.sort(tensor[0].ravel()))
        np.testing.assert_allclose(np.sort(matrix[1]), np.sort(tensor[1].ravel()))

    def test_unfold_invalid_mode(self, small_dense_tensor):
        with pytest.raises(ShapeError):
            unfold(small_dense_tensor, 3)

    def test_fold_shape_mismatch(self):
        with pytest.raises(ShapeError):
            fold(np.zeros((2, 5)), 0, (2, 2, 2))


class TestModeProduct:
    def test_matches_einsum_mode0(self, small_dense_tensor, rng):
        matrix = rng.standard_normal((2, 4))
        result = mode_product(small_dense_tensor, matrix, 0)
        expected = np.einsum("ia,ajk->ijk", matrix, small_dense_tensor)
        np.testing.assert_allclose(result, expected)

    def test_matches_einsum_mode1(self, small_dense_tensor, rng):
        matrix = rng.standard_normal((2, 5))
        result = mode_product(small_dense_tensor, matrix, 1)
        expected = np.einsum("jb,ibk->ijk", matrix, small_dense_tensor)
        np.testing.assert_allclose(result, expected)

    def test_matches_einsum_mode2(self, small_dense_tensor, rng):
        matrix = rng.standard_normal((4, 3))
        result = mode_product(small_dense_tensor, matrix, 2)
        expected = np.einsum("kc,ijc->ijk", matrix, small_dense_tensor)
        np.testing.assert_allclose(result, expected)

    def test_different_modes_commute(self, small_dense_tensor, rng):
        a_matrix = rng.standard_normal((2, 4))
        b_matrix = rng.standard_normal((3, 5))
        one = mode_product(mode_product(small_dense_tensor, a_matrix, 0), b_matrix, 1)
        two = mode_product(mode_product(small_dense_tensor, b_matrix, 1), a_matrix, 0)
        np.testing.assert_allclose(one, two)

    def test_rejects_shape_mismatch(self, small_dense_tensor):
        with pytest.raises(ShapeError):
            mode_product(small_dense_tensor, np.zeros((2, 7)), 0)

    def test_rejects_non_matrix(self, small_dense_tensor):
        with pytest.raises(ShapeError):
            mode_product(small_dense_tensor, np.zeros(4), 0)


class TestMultiModeAndReconstruct:
    def test_multi_mode_product_transpose(self, small_dense_tensor, rng):
        factors = [rng.standard_normal((dim, 2)) for dim in small_dense_tensor.shape]
        projected = multi_mode_product(small_dense_tensor, factors, transpose=True)
        assert projected.shape == (2, 2, 2)

    def test_multi_mode_skip(self, small_dense_tensor, rng):
        factors = [rng.standard_normal((dim, 2)) for dim in small_dense_tensor.shape]
        projected = multi_mode_product(
            small_dense_tensor, factors, skip=1, transpose=True
        )
        assert projected.shape == (2, 5, 2)

    def test_multi_mode_wrong_count(self, small_dense_tensor):
        with pytest.raises(ShapeError):
            multi_mode_product(small_dense_tensor, [np.eye(4)])

    def test_tucker_reconstruct_identity(self, rng):
        core = rng.standard_normal((2, 3, 2))
        factors = [np.eye(2), np.eye(3), np.eye(2)]
        np.testing.assert_allclose(tucker_reconstruct(core, factors), core)

    def test_tucker_reconstruct_matches_manual(self, rng):
        core = rng.standard_normal((2, 2, 2))
        factors = [rng.standard_normal((d, 2)) for d in (3, 4, 5)]
        expected = np.einsum(
            "abc,ia,jb,kc->ijk", core, factors[0], factors[1], factors[2]
        )
        np.testing.assert_allclose(tucker_reconstruct(core, factors), expected)

    def test_tucker_reconstruct_shape_mismatch(self, rng):
        core = rng.standard_normal((2, 2))
        with pytest.raises(ShapeError):
            tucker_reconstruct(core, [np.zeros((3, 2)), np.zeros((3, 3))])

    def test_frobenius_norm(self, small_dense_tensor):
        assert frobenius_norm(small_dense_tensor) == pytest.approx(
            np.linalg.norm(small_dense_tensor.ravel())
        )

    def test_kron_rows_matches_numpy(self, rng):
        a_matrix = rng.standard_normal((3, 2))
        b_matrix = rng.standard_normal((4, 3))
        expected = np.kron(a_matrix[1], b_matrix[2])
        np.testing.assert_allclose(kron_rows([a_matrix, b_matrix], [1, 2]), expected)

    def test_kron_rows_count_mismatch(self, rng):
        with pytest.raises(ShapeError):
            kron_rows([np.eye(2)], [0, 1])
