"""Unit tests for sparse tensor operations against dense references."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import (
    SparseTensor,
    factor_rows_product,
    sparse_gram_chain,
    sparse_reconstruct,
    sparse_ttm_chain,
    sparse_unfold_columns,
    tucker_reconstruct,
    unfold,
)
from repro.tensor.operations import mode_lengths_product


@pytest.fixture
def dense_and_sparse(rng):
    dense = rng.uniform(0.0, 1.0, size=(5, 4, 3))
    sparse = SparseTensor.from_dense(dense, keep_zeros=True)
    return dense, sparse


@pytest.fixture
def factors_334(rng):
    return [rng.uniform(0.0, 1.0, size=(d, r)) for d, r in ((5, 3), (4, 3), (3, 2))]


class TestUnfoldColumns:
    def test_matches_dense_unfolding(self, dense_and_sparse):
        dense, sparse = dense_and_sparse
        for mode in range(3):
            columns = sparse_unfold_columns(sparse, mode)
            unfolded = unfold(dense, mode)
            rows = sparse.indices[:, mode]
            np.testing.assert_allclose(unfolded[rows, columns], sparse.values)

    def test_columns_in_range(self, dense_and_sparse):
        _, sparse = dense_and_sparse
        for mode in range(3):
            columns = sparse_unfold_columns(sparse, mode)
            assert columns.max() < mode_lengths_product(sparse.shape, skip=mode)
            assert columns.min() >= 0


class TestFactorRowsProduct:
    def test_all_modes_matches_kron(self, dense_and_sparse, factors_334):
        _, sparse = dense_and_sparse
        weights = factor_rows_product(sparse, factors_334, skip=-1)
        # Check a few entries against the explicit Kronecker product.
        for entry in (0, 7, 19):
            idx = sparse.indices[entry]
            expected = np.asarray([1.0])
            for k in range(3):
                expected = np.kron(expected, factors_334[k][idx[k]])
            np.testing.assert_allclose(weights[entry], expected)

    def test_skip_mode_width(self, dense_and_sparse, factors_334):
        _, sparse = dense_and_sparse
        weights = factor_rows_product(sparse, factors_334, skip=1)
        assert weights.shape == (sparse.nnz, 3 * 2)

    def test_entry_subset(self, dense_and_sparse, factors_334):
        _, sparse = dense_and_sparse
        rows = np.array([2, 5, 9])
        subset = factor_rows_product(sparse, factors_334, skip=-1, entry_rows=rows)
        full = factor_rows_product(sparse, factors_334, skip=-1)
        np.testing.assert_allclose(subset, full[rows])

    def test_wrong_factor_count(self, dense_and_sparse, factors_334):
        _, sparse = dense_and_sparse
        with pytest.raises(ShapeError):
            factor_rows_product(sparse, factors_334[:2])


class TestSparseReconstruct:
    def test_matches_dense_tucker(self, dense_and_sparse, factors_334, rng):
        _, sparse = dense_and_sparse
        core = rng.uniform(0.0, 1.0, size=(3, 3, 2))
        dense_model = tucker_reconstruct(core, factors_334)
        predictions = sparse_reconstruct(sparse, core, factors_334)
        expected = dense_model[tuple(sparse.indices.T)]
        np.testing.assert_allclose(predictions, expected)

    def test_zero_core_gives_zero(self, dense_and_sparse, factors_334):
        _, sparse = dense_and_sparse
        predictions = sparse_reconstruct(sparse, np.zeros((3, 3, 2)), factors_334)
        assert np.all(predictions == 0.0)


class TestTtmChain:
    def test_matches_dense_projection(self, dense_and_sparse, factors_334):
        dense, sparse = dense_and_sparse
        for mode in range(3):
            result = sparse_ttm_chain(sparse, factors_334, mode)
            projected = dense.copy()
            # Project every mode but `mode` with the transposed factors.
            from repro.tensor import mode_product

            for k in range(3):
                if k == mode:
                    continue
                projected = mode_product(projected, factors_334[k].T, k)
            expected = unfold(projected, mode)
            # Column orderings differ (ascending-mode Fortran vs last-fastest C);
            # compare via Gram matrices which are ordering-invariant row spaces.
            np.testing.assert_allclose(result @ result.T, expected @ expected.T)

    def test_gram_chain_matches_ttm(self, dense_and_sparse, factors_334):
        _, sparse = dense_and_sparse
        for mode in range(3):
            y_unfolded = sparse_ttm_chain(sparse, factors_334, mode)
            gram = sparse_gram_chain(sparse, factors_334, mode)
            np.testing.assert_allclose(gram, y_unfolded.T @ y_unfolded, atol=1e-10)

    def test_gram_chain_blocked(self, dense_and_sparse, factors_334):
        _, sparse = dense_and_sparse
        full = sparse_gram_chain(sparse, factors_334, 0)
        blocked = sparse_gram_chain(sparse, factors_334, 0, block_size=7)
        np.testing.assert_allclose(full, blocked, atol=1e-10)

    def test_missing_entries_treated_as_zero(self, rng, factors_334):
        dense = rng.uniform(0.5, 1.0, size=(5, 4, 3))
        mask = rng.uniform(size=dense.shape) < 0.4
        dense_masked = np.where(mask, dense, 0.0)
        sparse = SparseTensor.from_dense(dense_masked)
        result = sparse_ttm_chain(sparse, factors_334, 0)
        full_sparse = SparseTensor.from_dense(dense_masked, keep_zeros=True)
        full_result = sparse_ttm_chain(full_sparse, factors_334, 0)
        np.testing.assert_allclose(result, full_result)
