"""Unit tests for the COO sparse tensor."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import SparseTensor


class TestConstruction:
    def test_basic_attributes(self, small_sparse_tensor):
        t = small_sparse_tensor
        assert t.order == 3
        assert t.nnz == 5
        assert t.shape == (4, 4, 3)
        assert len(t) == 5

    def test_density(self, small_sparse_tensor):
        expected = 5 / (4 * 4 * 3)
        assert small_sparse_tensor.density == pytest.approx(expected)

    def test_from_entries_empty(self):
        t = SparseTensor.from_entries([], shape=(3, 3))
        assert t.nnz == 0
        assert t.order == 2

    def test_from_dense_roundtrip(self, small_dense_tensor):
        t = SparseTensor.from_dense(small_dense_tensor, keep_zeros=True)
        np.testing.assert_allclose(t.to_dense(), small_dense_tensor)

    def test_from_dense_drops_zeros(self):
        arr = np.zeros((2, 2))
        arr[0, 1] = 3.0
        t = SparseTensor.from_dense(arr)
        assert t.nnz == 1
        assert t.get((0, 1)) == 3.0

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.array([[5, 0]]), np.array([1.0]), shape=(3, 3))

    def test_rejects_negative_index(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.array([[-1, 0]]), np.array([1.0]), shape=(3, 3))

    def test_rejects_value_count_mismatch(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.array([[0, 0]]), np.array([1.0, 2.0]), shape=(3, 3))

    def test_rejects_nonfinite_values(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.array([[0, 0]]), np.array([np.nan]), shape=(3, 3))

    def test_rejects_empty_shape(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.empty((0, 0)), np.empty(0), shape=())


class TestAccess:
    def test_get_observed(self, small_sparse_tensor):
        assert small_sparse_tensor.get((1, 2, 0)) == 2.5

    def test_get_missing_returns_default(self, small_sparse_tensor):
        assert small_sparse_tensor.get((0, 1, 2)) == 0.0
        assert small_sparse_tensor.get((0, 1, 2), default=-1.0) == -1.0

    def test_get_wrong_arity(self, small_sparse_tensor):
        with pytest.raises(ShapeError):
            small_sparse_tensor.get((0, 1))

    def test_iteration_yields_all_entries(self, small_sparse_tensor):
        entries = dict(iter(small_sparse_tensor))
        assert entries[(1, 2, 0)] == 2.5
        assert len(entries) == 5

    def test_norm_matches_numpy(self, small_sparse_tensor):
        expected = np.linalg.norm(small_sparse_tensor.values)
        assert small_sparse_tensor.norm() == pytest.approx(expected)

    def test_to_dense_refuses_huge(self):
        t = SparseTensor(np.array([[0, 0, 0]]), np.array([1.0]), shape=(10**3, 10**3, 10**3))
        with pytest.raises(ShapeError):
            t.to_dense()


class TestReorganisation:
    def test_deduplicate_last(self):
        idx = np.array([[0, 0], [0, 0], [1, 1]])
        t = SparseTensor(idx, np.array([1.0, 2.0, 3.0]), shape=(2, 2))
        d = t.deduplicate("last")
        assert d.nnz == 2
        assert d.get((0, 0)) == 2.0

    def test_deduplicate_sum_and_mean(self):
        idx = np.array([[0, 0], [0, 0]])
        t = SparseTensor(idx, np.array([1.0, 3.0]), shape=(2, 2))
        assert t.deduplicate("sum").get((0, 0)) == 4.0
        assert t.deduplicate("mean").get((0, 0)) == 2.0

    def test_deduplicate_unknown_mode(self, small_sparse_tensor):
        with pytest.raises(ValueError):
            small_sparse_tensor.deduplicate("median")

    def test_sort_by_mode_is_sorted(self, small_sparse_tensor):
        for mode in range(3):
            perm = small_sparse_tensor.sort_by_mode(mode)
            column = small_sparse_tensor.indices[perm, mode]
            assert np.all(np.diff(column) >= 0)

    def test_mode_slice_matches_mask(self, small_sparse_tensor):
        sliced = small_sparse_tensor.mode_slice(0, 1)
        assert sliced.nnz == 2
        assert np.all(sliced.indices[:, 0] == 1)

    def test_counts_along_mode(self, small_sparse_tensor):
        counts = small_sparse_tensor.counts_along_mode(0)
        assert counts.tolist() == [1, 2, 1, 1]
        assert counts.sum() == small_sparse_tensor.nnz

    def test_permute_modes_roundtrip(self, small_sparse_tensor):
        permuted = small_sparse_tensor.permute_modes([2, 0, 1])
        back = permuted.permute_modes([1, 2, 0])
        assert back.allclose(small_sparse_tensor)

    def test_permute_modes_invalid(self, small_sparse_tensor):
        with pytest.raises(ShapeError):
            small_sparse_tensor.permute_modes([0, 0, 1])

    def test_linear_indices_unique_for_distinct_entries(self, small_sparse_tensor):
        linear = small_sparse_tensor.linear_indices()
        assert len(np.unique(linear)) == small_sparse_tensor.nnz


class TestSplitAndTransform:
    def test_split_partitions_entries(self, random_small, rng):
        train, test = random_small.split(0.8, rng=rng)
        assert train.nnz + test.nnz == random_small.nnz
        assert train.shape == random_small.shape

    def test_split_rejects_bad_fraction(self, random_small):
        with pytest.raises(ValueError):
            random_small.split(1.5)

    def test_split_disjoint(self, random_small, rng):
        train, test = random_small.split(0.9, rng=rng)
        train_keys = set(map(tuple, train.indices))
        test_keys = set(map(tuple, test.indices))
        assert not train_keys & test_keys

    def test_normalize_values_range(self, random_small):
        normalized, lo, span = random_small.normalize_values()
        assert normalized.values.min() >= 0.0
        assert normalized.values.max() <= 1.0
        np.testing.assert_allclose(
            normalized.values * span + lo, random_small.values
        )

    def test_normalize_constant_tensor(self):
        t = SparseTensor(np.array([[0, 0], [1, 1]]), np.array([2.0, 2.0]), (2, 2))
        normalized, lo, span = t.normalize_values()
        assert lo == 2.0
        assert np.all(normalized.values == 0.0)

    def test_sample_fraction(self, random_small, rng):
        sampled = random_small.sample(0.5, rng=rng)
        assert sampled.nnz == round(0.5 * random_small.nnz)

    def test_sample_rejects_zero(self, random_small):
        with pytest.raises(ValueError):
            random_small.sample(0.0)

    def test_with_values_keeps_pattern(self, small_sparse_tensor):
        new = small_sparse_tensor.with_values(np.ones(5))
        np.testing.assert_array_equal(new.indices, small_sparse_tensor.indices)
        assert np.all(new.values == 1.0)

    def test_copy_is_independent(self, small_sparse_tensor):
        copy = small_sparse_tensor.copy()
        copy.values[0] = 99.0
        assert small_sparse_tensor.values[0] != 99.0

    def test_allclose_detects_difference(self, small_sparse_tensor):
        other = small_sparse_tensor.with_values(small_sparse_tensor.values + 1.0)
        assert not small_sparse_tensor.allclose(other)
        assert small_sparse_tensor.allclose(small_sparse_tensor.copy())
