"""Tests for the chunked binary rcoo COO container.

Round-trips (in-RAM and streamed writes, multi-block files, empty tensors,
wide and narrow dtypes), `open_entry_reader` dispatch by magic and
extension, and the diagnostics for bad magic / truncated files.
"""

import os
import struct

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.data import random_sparse_tensor
from repro.exceptions import DataFormatError, ShapeError
from repro.shards import ShardStore
from repro.tensor import (
    RcooEntryReader,
    SparseTensor,
    TensorEntryReader,
    TextEntryReader,
    load_rcoo,
    open_entry_reader,
    save_rcoo,
    save_text,
    write_rcoo,
)
from repro.tensor.io import RCOO_MAGIC, _RCOO_NNZ_OFFSET


@pytest.fixture
def tensor():
    return random_sparse_tensor((300, 23, 12), nnz=700, seed=9)


class TestRoundTrip:
    @pytest.mark.parametrize("block_nnz", [64, 700, 10_000])
    def test_save_load_round_trip(self, tensor, tmp_path, block_nnz):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path, block_nnz=block_nnz)
        restored = load_rcoo(path)
        assert restored.shape == tensor.shape
        np.testing.assert_array_equal(restored.indices, tensor.indices)
        np.testing.assert_array_equal(restored.values, tensor.values)

    def test_header_records_narrow_dtypes(self, tensor, tmp_path):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path)
        reader = RcooEntryReader(path)
        assert reader.shape == tensor.shape
        assert reader.nnz == tensor.nnz
        assert reader.index_dtypes == (
            np.dtype(np.uint16),  # dim 300
            np.dtype(np.uint8),
            np.dtype(np.uint8),
        )

    def test_wide_policy_stores_int64(self, tensor, tmp_path):
        narrow = tmp_path / "narrow.rcoo"
        wide = tmp_path / "wide.rcoo"
        save_rcoo(tensor, narrow)
        save_rcoo(tensor, wide, index_dtype="wide")
        assert RcooEntryReader(wide).index_dtypes == (np.dtype(np.int64),) * 3
        assert os.path.getsize(wide) > os.path.getsize(narrow)
        np.testing.assert_array_equal(
            load_rcoo(wide).indices, load_rcoo(narrow).indices
        )

    def test_chunks_are_bounded(self, tensor, tmp_path):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path, block_nnz=128)
        reader = RcooEntryReader(path)
        chunks = list(reader.iter_entry_chunks(100))
        assert all(i.shape[0] <= 100 for i, _ in chunks)
        assert sum(i.shape[0] for i, _ in chunks) == tensor.nnz
        indices = np.concatenate([i for i, _ in chunks])
        np.testing.assert_array_equal(indices, tensor.indices)

    def test_empty_tensor_round_trips(self, tmp_path):
        empty = SparseTensor(
            np.empty((0, 3), dtype=np.int64), np.empty(0), (4, 5, 6)
        )
        path = tmp_path / "empty.rcoo"
        save_rcoo(empty, path)
        restored = load_rcoo(path)
        assert restored.nnz == 0
        assert restored.shape == (4, 5, 6)

    def test_streamed_write_equals_in_ram_write(self, tensor, tmp_path):
        """write_rcoo (nnz patched afterwards) and save_rcoo (nnz known up
        front) produce byte-identical files at a matched block size."""
        in_ram = tmp_path / "in-ram.rcoo"
        streamed = tmp_path / "streamed.rcoo"
        save_rcoo(tensor, in_ram, block_nnz=128)
        write_rcoo(TensorEntryReader(tensor), streamed, block_nnz=128)
        with open(in_ram, "rb") as fh:
            left = fh.read()
        with open(streamed, "rb") as fh:
            right = fh.read()
        assert left == right

    def test_streamed_write_infers_shape_from_text(self, tensor, tmp_path):
        """A shapeless text reader triggers the extra inference pass."""
        text = tmp_path / "t.tns"
        save_text(tensor, text)
        path = tmp_path / "t.rcoo"
        shape = write_rcoo(TextEntryReader(text), path, block_nnz=200)
        assert shape == tensor.shape
        restored = load_rcoo(path)
        np.testing.assert_array_equal(restored.indices, tensor.indices)
        np.testing.assert_array_equal(restored.values, tensor.values)

    def test_write_rcoo_rejects_out_of_shape_indices(self, tensor, tmp_path):
        with pytest.raises(ShapeError):
            write_rcoo(
                TensorEntryReader(tensor),
                tmp_path / "bad.rcoo",
                shape=(10, 10, 10),
            )

    def test_ingest_to_store_matches_direct_build(self, tensor, tmp_path):
        """text -> rcoo -> store equals text -> store (entry order is
        preserved through the container)."""
        rcoo_path = tmp_path / "t.rcoo"
        save_rcoo(tensor, rcoo_path, block_nnz=96)
        via_rcoo = ShardStore.build_streaming(
            RcooEntryReader(rcoo_path), tmp_path / "via-rcoo", shard_nnz=150
        )
        direct = ShardStore.build(tensor, tmp_path / "direct", shard_nnz=150)
        assert via_rcoo.matches(tensor)
        assert via_rcoo.fingerprint == direct.fingerprint


class TestDispatch:
    def test_open_entry_reader_by_extension(self, tensor, tmp_path):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path)
        assert isinstance(open_entry_reader(path), RcooEntryReader)

    def test_open_entry_reader_by_magic_sniff(self, tensor, tmp_path):
        path = tmp_path / "mystery.bin"
        save_rcoo(tensor, path)
        assert isinstance(open_entry_reader(path), RcooEntryReader)

    def test_text_files_still_dispatch_to_text(self, tensor, tmp_path):
        path = tmp_path / "t.tns"
        save_text(tensor, path)
        assert isinstance(open_entry_reader(path), TextEntryReader)

    def test_cli_ingest_format_rcoo(self, tensor, tmp_path, capsys):
        text = tmp_path / "t.tns"
        save_text(tensor, text)
        out = tmp_path / "t.rcoo"
        code = cli_main(
            ["ingest", str(text), "--format", "rcoo", "--out", str(out)]
        )
        assert code == 0
        assert "rcoo container" in capsys.readouterr().out
        restored = load_rcoo(out)
        np.testing.assert_array_equal(restored.indices, tensor.indices)
        np.testing.assert_array_equal(restored.values, tensor.values)


class TestDiagnostics:
    def test_bad_magic_raises_with_both_magics(self, tmp_path):
        path = tmp_path / "not.rcoo"
        path.write_bytes(b"PK\x03\x04 definitely a zip")
        with pytest.raises(DataFormatError) as excinfo:
            RcooEntryReader(path)
        message = str(excinfo.value)
        assert "bad magic" in message
        assert "RCOO" in message

    def test_truncated_prefix_raises(self, tmp_path):
        path = tmp_path / "t.rcoo"
        path.write_bytes(RCOO_MAGIC + b"\x01")
        with pytest.raises(DataFormatError, match="truncated rcoo header"):
            RcooEntryReader(path)

    def test_truncated_shape_table_raises(self, tensor, tmp_path):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path)
        data = path.read_bytes()
        path.write_bytes(data[: _RCOO_NNZ_OFFSET + 10])
        with pytest.raises(DataFormatError, match="truncated rcoo header"):
            RcooEntryReader(path)

    def test_truncated_block_names_missing_bytes(self, tensor, tmp_path):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path, block_nnz=256)
        data = path.read_bytes()
        path.write_bytes(data[:-100])
        reader = RcooEntryReader(path)  # header is intact
        with pytest.raises(DataFormatError) as excinfo:
            list(reader.iter_entry_chunks(256))
        message = str(excinfo.value)
        assert "truncated rcoo container" in message
        assert "expected" in message and "got" in message

    def test_unknown_version_raises(self, tensor, tmp_path):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path)
        data = bytearray(path.read_bytes())
        data[4] = 99  # version byte
        path.write_bytes(bytes(data))
        with pytest.raises(DataFormatError, match="version 99"):
            RcooEntryReader(path)

    def test_unknown_dtype_code_raises(self, tensor, tmp_path):
        path = tmp_path / "t.rcoo"
        save_rcoo(tensor, path)
        data = bytearray(path.read_bytes())
        # Last header byte before the blocks is the value-column code.
        order = 3
        data[struct.calcsize("<4sBBHIQ") + 8 * order + order] = 77
        path.write_bytes(bytes(data))
        with pytest.raises(DataFormatError, match="dtype code"):
            RcooEntryReader(path)
