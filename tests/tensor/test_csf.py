"""Unit tests for the compressed sparse fiber (CSF) structure."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import CsfTensor, SparseTensor, sparse_ttm_chain


class TestConstruction:
    def test_roundtrip_preserves_entries(self, random_small):
        csf = CsfTensor.from_sparse(random_small)
        back = csf.to_sparse()
        assert back.allclose(random_small)

    def test_roundtrip_with_explicit_mode_order(self, random_small):
        csf = CsfTensor.from_sparse(random_small, mode_order=(2, 0, 1))
        assert csf.mode_order == (2, 0, 1)
        assert csf.to_sparse().allclose(random_small)

    def test_invalid_mode_order(self, random_small):
        with pytest.raises(ShapeError):
            CsfTensor.from_sparse(random_small, mode_order=(0, 0, 1))

    def test_empty_tensor(self):
        empty = SparseTensor.from_entries([], shape=(4, 4, 4))
        csf = CsfTensor.from_sparse(empty)
        assert csf.nnz == 0
        assert csf.to_sparse().nnz == 0

    def test_nnz_matches(self, random_small):
        csf = CsfTensor.from_sparse(random_small)
        assert csf.nnz == random_small.nnz

    def test_compression_shares_prefixes(self):
        # Entries sharing the same first-mode index must share a root node.
        entries = [((0, j, k), 1.0) for j in range(3) for k in range(3)]
        tensor = SparseTensor.from_entries(entries, shape=(2, 3, 3))
        csf = CsfTensor.from_sparse(tensor, mode_order=(0, 1, 2))
        assert csf.levels[0].fids.shape[0] == 1  # one root: index 0
        assert csf.levels[1].fids.shape[0] == 3  # three children
        assert csf.levels[2].fids.shape[0] == 9  # nine leaves
        assert csf.n_nodes() == 13

    def test_default_mode_order_longest_first(self):
        tensor = SparseTensor.from_entries(
            [((0, 0, 0), 1.0), ((1, 1, 1), 2.0)], shape=(2, 10, 5)
        )
        csf = CsfTensor.from_sparse(tensor)
        assert csf.mode_order[0] == 1  # the longest mode goes to the root


class TestTtmChain:
    def test_matches_coo_ttm(self, random_small, rng):
        factors = [rng.uniform(size=(dim, 3)) for dim in random_small.shape]
        csf = CsfTensor.from_sparse(random_small)
        for mode in range(3):
            expected = sparse_ttm_chain(random_small, factors, mode)
            got = csf.ttm_chain(factors, mode)
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_empty_tensor_ttm(self, rng):
        empty = SparseTensor.from_entries([], shape=(4, 5, 6))
        factors = [rng.uniform(size=(dim, 2)) for dim in (4, 5, 6)]
        csf = CsfTensor.from_sparse(empty)
        result = csf.ttm_chain(factors, 0)
        assert result.shape == (4, 4)
        assert np.all(result == 0.0)

    def test_wrong_factor_count(self, random_small, rng):
        csf = CsfTensor.from_sparse(random_small)
        with pytest.raises(ShapeError):
            csf.ttm_chain([np.eye(3)], 0)
