"""Tests for the shared validation helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro.exceptions import (
    ConvergenceError,
    DataFormatError,
    OutOfMemoryError,
    ReproError,
    ShapeError,
)
from repro.tensor.validation import (
    check_indices,
    check_mode,
    check_ranks,
    check_shape,
    check_values,
)


class TestCheckShape:
    def test_valid_shape(self):
        assert check_shape([3, 4, 5]) == (3, 4, 5)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            check_shape([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            check_shape([3, 0])
        with pytest.raises(ShapeError):
            check_shape([3, -1])

    def test_casts_to_int(self):
        assert check_shape(np.array([2.0, 3.0])) == (2, 3)


class TestCheckMode:
    def test_valid(self):
        assert check_mode(2, 3) == 2

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            check_mode(3, 3)
        with pytest.raises(ShapeError):
            check_mode(-1, 3)


class TestCheckRanks:
    def test_valid(self):
        assert check_ranks([2, 3], [5, 6]) == (2, 3)

    def test_count_mismatch(self):
        with pytest.raises(ShapeError):
            check_ranks([2], [5, 6])

    def test_rank_exceeds_dimension(self):
        with pytest.raises(ShapeError):
            check_ranks([7, 2], [5, 6])

    def test_nonpositive_rank(self):
        with pytest.raises(ShapeError):
            check_ranks([0, 2], [5, 6])


class TestCheckIndicesValues:
    def test_valid_indices(self):
        idx = check_indices(np.array([[0, 1], [2, 3]]), (3, 4))
        assert idx.dtype == np.int64

    def test_float_integral_indices_accepted(self):
        idx = check_indices(np.array([[0.0, 1.0]]), (3, 4))
        assert idx.dtype == np.int64

    def test_float_fractional_indices_rejected(self):
        with pytest.raises(ShapeError):
            check_indices(np.array([[0.5, 1.0]]), (3, 4))

    def test_wrong_ndim(self):
        with pytest.raises(ShapeError):
            check_indices(np.array([0, 1]), (3, 4))

    def test_wrong_column_count(self):
        with pytest.raises(ShapeError):
            check_indices(np.array([[0, 1, 2]]), (3, 4))

    def test_values_must_be_1d(self):
        with pytest.raises(ShapeError):
            check_values(np.zeros((2, 2)), 4)

    def test_values_count_must_match(self):
        with pytest.raises(ShapeError):
            check_values(np.zeros(3), 4)

    def test_values_cast_to_float(self):
        vals = check_values(np.array([1, 2, 3]), 3)
        assert vals.dtype == np.float64


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (ShapeError, DataFormatError, ConvergenceError, OutOfMemoryError):
            assert issubclass(exc_type, ReproError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)

    def test_oom_is_memory_error_with_details(self):
        error = OutOfMemoryError(2048, 1024, what="cache table")
        assert isinstance(error, MemoryError)
        assert error.requested_bytes == 2048
        assert error.budget_bytes == 1024
        assert "cache table" in str(error)
