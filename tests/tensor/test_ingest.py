"""Chunked text ingest: reader protocol, vectorized parser tiers, diagnostics."""

import numpy as np
import pytest

from repro.exceptions import DataFormatError, ShapeError
from repro.tensor import SparseTensor, load_text, save_npz, save_text
from repro.tensor.io import (
    NpzEntryReader,
    ShardEntryReader,
    TensorEntryReader,
    TextEntryReader,
    open_entry_reader,
)
from repro.tensor.textparse import parse_numeric_block


def read_all(reader, chunk_nnz):
    chunks = list(reader.iter_entry_chunks(chunk_nnz))
    if not chunks:
        return np.empty((0, 0), dtype=np.int64), np.empty(0)
    return (
        np.concatenate([i for i, _ in chunks]),
        np.concatenate([v for _, v in chunks]),
    )


class TestTextEntryReader:
    def test_chunks_match_load_text(self, random_small, tmp_path):
        path = tmp_path / "t.tns"
        save_text(random_small, path)
        reference = load_text(path)
        for chunk_nnz in (1, 7, 100, 10_000):
            indices, values = read_all(TextEntryReader(path), chunk_nnz)
            assert np.array_equal(indices, reference.indices)
            assert np.array_equal(values, reference.values)

    def test_exact_chunk_sizes(self, random_small, tmp_path):
        path = tmp_path / "t.tns"
        save_text(random_small, path)
        sizes = [
            i.shape[0] for i, _ in TextEntryReader(path).iter_entry_chunks(64)
        ]
        assert all(s == 64 for s in sizes[:-1])
        assert 0 < sizes[-1] <= 64
        assert sum(sizes) == random_small.nnz

    def test_tiny_byte_chunks_split_lines(self, random_small, tmp_path):
        """Lines split across byte-chunk reads are reassembled losslessly."""
        path = tmp_path / "t.tns"
        save_text(random_small, path)
        reference = load_text(path)
        indices, values = read_all(
            TextEntryReader(path, chunk_bytes=16), random_small.nnz
        )
        assert np.array_equal(indices, reference.indices)
        assert np.array_equal(values, reference.values)

    def test_no_trailing_newline(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_bytes(b"1 1 1.5\n2 2 2.5")
        indices, values = read_all(TextEntryReader(path), 10)
        assert indices.tolist() == [[0, 0], [1, 1]]
        assert values.tolist() == [1.5, 2.5]

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.tns"
        path.write_text("")
        assert list(TextEntryReader(path).iter_entry_chunks(10)) == []
        path.write_text("# only comments\n\n")
        assert list(TextEntryReader(path).iter_entry_chunks(10)) == []

    def test_zero_based_and_one_based(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 2 1.5\n3 4 2.5\n")
        one_based, _ = read_all(TextEntryReader(path), 10)
        zero_based, _ = read_all(TextEntryReader(path, one_based=False), 10)
        assert one_based.tolist() == [[0, 1], [2, 3]]
        assert zero_based.tolist() == [[1, 2], [3, 4]]

    def test_shape_bound_violation_names_line(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 1 1.0\n9 1 2.0\n")
        with pytest.raises(DataFormatError) as excinfo:
            read_all(TextEntryReader(path, shape=(3, 3)), 10)
        assert ":2:" in str(excinfo.value)

    def test_malformed_line_at_chunk_boundary(self, tmp_path):
        """A bad line split across two byte chunks reports its true number."""
        lines = [f"{i} {i} 1.5" for i in range(1, 40)]
        lines[20] = "21 oops 1.5"
        path = tmp_path / "bad.tns"
        path.write_text("\n".join(lines) + "\n")
        # chunk_bytes=16 guarantees every line straddles a read boundary.
        with pytest.raises(DataFormatError) as excinfo:
            read_all(TextEntryReader(path, chunk_bytes=16), 5)
        assert ":21:" in str(excinfo.value)

    def test_arity_change_across_chunks(self, tmp_path):
        lines = [f"{i} {i} 1.5" for i in range(1, 30)]
        lines.append("5 5 5 1.5")
        path = tmp_path / "arity.tns"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataFormatError) as excinfo:
            read_all(TextEntryReader(path, chunk_bytes=32), 4)
        assert ":30:" in str(excinfo.value)

    def test_integral_float_indices_accepted(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("3.0 2e0 1.5\n")
        indices, values = read_all(TextEntryReader(path), 10)
        assert indices.tolist() == [[2, 1]]
        assert values.tolist() == [1.5]

    def test_index_overflowing_int64_names_line(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 1 1.0\n99999999999999999999 1 2.0\n")
        with pytest.raises(DataFormatError) as excinfo:
            read_all(TextEntryReader(path), 10)
        assert ":2:" in str(excinfo.value)

    def test_fractional_index_rejected_with_line(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 1 1.0\n1.5 1 2.0\n")
        with pytest.raises(DataFormatError) as excinfo:
            read_all(TextEntryReader(path), 10)
        assert ":2:" in str(excinfo.value)

    def test_inline_comments_tolerated(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 1 1.5 # trailing note\n2 2 2.5\n")
        indices, values = read_all(TextEntryReader(path), 10)
        assert values.tolist() == [1.5, 2.5]

    def test_crlf_line_endings(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_bytes(b"1 1 1.5\r\n2 2 2.5\r\n")
        _, values = read_all(TextEntryReader(path), 10)
        assert values.tolist() == [1.5, 2.5]


class TestTextReaderEncoding:
    """The UTF-8 satellite: BOMs and non-ASCII comments must not crash."""

    def test_utf8_bom_is_skipped(self, tmp_path):
        path = tmp_path / "bom.tns"
        path.write_bytes(b"\xef\xbb\xbf1 1 1.5\n")
        tensor = load_text(path)
        assert tensor.nnz == 1
        assert tensor.get((0, 0)) == 1.5

    def test_non_ascii_comment(self, tmp_path):
        path = tmp_path / "utf8.tns"
        path.write_text("# café ☃ header\n1 1 1.5\n", encoding="utf-8")
        assert load_text(path).nnz == 1

    def test_invalid_utf8_in_comment_tolerated(self, tmp_path):
        path = tmp_path / "latin.tns"
        path.write_bytes(b"# caf\xe9 latin-1 comment\n1 1 1.5\n")
        assert load_text(path).nnz == 1

    def test_invalid_utf8_in_data_names_line(self, tmp_path):
        path = tmp_path / "bad.tns"
        path.write_bytes(b"1 1 1.5\n1 \xff\xfe 2.0\n")
        with pytest.raises(DataFormatError) as excinfo:
            load_text(path)
        assert ":2:" in str(excinfo.value)


class TestParseNumericBlock:
    """The turbo tier must be exact where it answers, silent where not."""

    def test_values_match_float_bit_for_bit(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(500) * 10.0 ** rng.integers(-40, 40, 500)
        block = "".join(
            f"1 2 {value:.17g}\n" for value in values
        ).encode()
        parsed = parse_numeric_block(block, 3)
        assert parsed is not None
        assert np.array_equal(parsed[1], values)

    def test_short_decimals_exact(self):
        tokens = ["0.5", "5", "-3.25", "0", "4.75", "100", "0.125"]
        block = "".join(f"7 8 {t}\n" for t in tokens).encode()
        parsed = parse_numeric_block(block, 3)
        assert [float(t) for t in tokens] == parsed[1].tolist()
        assert parsed[0].tolist() == [[7, 8]] * len(tokens)

    @pytest.mark.parametrize(
        "block",
        [
            b"1 2 3.0 4 5 6.0\n",  # two entries on one line
            b"1 2\n1 2 3\n",  # ragged arity that happens to divide
            b"-1 2 3.0\n",  # sign in an index column
            b"1.5 2 3.0\n",  # dot in an index column
            b"# comment\n1 2 3.0\n",  # comments are the robust tier's job
        ],
    )
    def test_structural_oddities_decline(self, block):
        assert parse_numeric_block(block, 3) is None

    def test_blank_lines_and_missing_trailing_newline(self):
        parsed = parse_numeric_block(b"1 2 3.5\n\n4 5 6.5", 3)
        assert parsed[0].tolist() == [[1, 2], [4, 5]]
        assert parsed[1].tolist() == [3.5, 6.5]

    def test_huge_unsigned_integer_values_match_float(self):
        """19+ digit values overflow int64 and must fall back, not wrap."""
        tokens = [
            "9999999999999999999",
            "18446744073709551617",
            "123456789012345678901234567890",
            "5",
        ]
        block = "".join(f"1 2 {t}\n" for t in tokens).encode()
        parsed = parse_numeric_block(block, 3)
        assert parsed[1].tolist() == [float(t) for t in tokens]


class TestBinaryReaders:
    def test_npz_reader(self, random_small, tmp_path):
        path = tmp_path / "t.npz"
        save_npz(random_small, path)
        reader = NpzEntryReader(path)
        assert reader.shape == random_small.shape
        indices, values = read_all(reader, 97)
        assert np.array_equal(indices, random_small.indices)
        assert np.array_equal(values, random_small.values)

    def test_npz_reader_missing_arrays(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, indices=np.zeros((1, 2), dtype=np.int64))
        with pytest.raises(DataFormatError):
            NpzEntryReader(path)

    def test_tensor_reader(self, random_small):
        reader = TensorEntryReader(random_small)
        indices, values = read_all(reader, 113)
        assert np.array_equal(indices, random_small.indices)
        assert np.array_equal(values, random_small.values)

    def test_shard_reader_roundtrip(self, random_small, tmp_path):
        from repro.shards import ShardStore

        store = ShardStore.build(random_small, str(tmp_path / "store"))
        reader = ShardEntryReader(tmp_path / "store")
        indices, values = read_all(reader, 151)
        canonical = store.to_tensor()
        assert np.array_equal(indices, canonical.indices)
        assert np.array_equal(values, canonical.values)

    def test_chunk_nnz_validation(self, random_small):
        with pytest.raises(ShapeError):
            list(TensorEntryReader(random_small).iter_entry_chunks(0))


class TestOpenEntryReader:
    def test_dispatch(self, random_small, tmp_path):
        from repro.shards import ShardStore

        text = tmp_path / "t.tns"
        save_text(random_small, text)
        npz = tmp_path / "t.npz"
        save_npz(random_small, npz)
        ShardStore.build(random_small, str(tmp_path / "store"))
        assert isinstance(open_entry_reader(text), TextEntryReader)
        assert isinstance(open_entry_reader(npz), NpzEntryReader)
        assert isinstance(open_entry_reader(tmp_path / "store"), ShardEntryReader)


class TestLoadTextEquivalence:
    def test_matches_reference_parser_exactly(self, tmp_path):
        """The vectorized tiers reproduce the per-line semantics bit for bit."""
        rng = np.random.default_rng(5)
        nnz = 400
        indices = np.stack([rng.integers(0, 25, nnz) for _ in range(3)], axis=1)
        values = rng.standard_normal(nnz)
        tensor = SparseTensor(indices, values, (25, 25, 25))
        path = tmp_path / "t.tns"
        save_text(tensor, path)
        loaded = load_text(path)
        assert np.array_equal(loaded.indices, tensor.indices)
        assert np.array_equal(loaded.values, tensor.values)
        assert loaded.shape == tuple(int(m) + 1 for m in indices.max(axis=0))


class TestClearCaches:
    def test_clear_caches_drops_sort_permutations(self, random_small):
        for mode in range(random_small.order):
            random_small.sort_by_mode(mode)
        assert len(random_small._mode_sorted_cache) == random_small.order
        random_small.clear_caches()
        assert len(random_small._mode_sorted_cache) == 0
        # Recomputed permutations are identical.
        perm = random_small.sort_by_mode(0)
        assert np.array_equal(
            perm, np.argsort(random_small.indices[:, 0], kind="stable")
        )
