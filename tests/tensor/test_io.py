"""Unit tests for tensor text and npz I/O."""

import numpy as np
import pytest

from repro.exceptions import DataFormatError
from repro.tensor import SparseTensor, load_npz, load_text, save_npz, save_text


class TestTextIO:
    def test_roundtrip_one_based(self, random_small, tmp_path):
        path = tmp_path / "tensor.tns"
        save_text(random_small, path)
        loaded = load_text(path, shape=random_small.shape)
        assert loaded.allclose(random_small)

    def test_roundtrip_zero_based(self, random_small, tmp_path):
        path = tmp_path / "tensor0.tns"
        save_text(random_small, path, one_based=False)
        loaded = load_text(path, shape=random_small.shape, one_based=False)
        assert loaded.allclose(random_small)

    def test_shape_inference(self, tmp_path):
        path = tmp_path / "small.tns"
        path.write_text("1 1 1 2.0\n3 2 1 4.5\n")
        loaded = load_text(path)
        assert loaded.shape == (3, 2, 1)
        assert loaded.get((2, 1, 0)) == 4.5

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "comments.tns"
        path.write_text("# header\n\n1 1 1.5\n")
        loaded = load_text(path)
        assert loaded.nnz == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tns"
        path.write_text("1 1 1.0\n1 oops 2.0\n")
        with pytest.raises(DataFormatError) as excinfo:
            load_text(path)
        assert ":2:" in str(excinfo.value)

    def test_inconsistent_arity_raises(self, tmp_path):
        path = tmp_path / "arity.tns"
        path.write_text("1 1 1.0\n1 1 1 2.0\n")
        with pytest.raises(DataFormatError):
            load_text(path)

    def test_too_few_fields_raises(self, tmp_path):
        path = tmp_path / "short.tns"
        path.write_text("1\n")
        with pytest.raises(DataFormatError):
            load_text(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.tns"
        path.write_text("# nothing\n")
        with pytest.raises(DataFormatError):
            load_text(path)

    def test_zero_index_with_one_based_raises(self, tmp_path):
        path = tmp_path / "zero.tns"
        path.write_text("0 1 1.0\n")
        with pytest.raises(DataFormatError):
            load_text(path)


class TestNpzIO:
    def test_roundtrip(self, random_small, tmp_path):
        path = tmp_path / "tensor.npz"
        save_npz(random_small, path)
        loaded = load_npz(path)
        assert loaded.allclose(random_small)
        assert loaded.shape == random_small.shape

    def test_missing_arrays_raise(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, indices=np.zeros((1, 2), dtype=np.int64))
        with pytest.raises(DataFormatError):
            load_npz(path)

    def test_values_preserved_precisely(self, tmp_path):
        tensor = SparseTensor(
            np.array([[0, 0], [1, 1]]),
            np.array([1.0 / 3.0, 2.0 / 7.0]),
            (2, 2),
        )
        text_path = tmp_path / "precise.tns"
        save_text(tensor, text_path)
        loaded = load_text(text_path, shape=(2, 2))
        np.testing.assert_allclose(np.sort(loaded.values), np.sort(tensor.values))
