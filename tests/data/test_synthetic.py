"""Tests for the synthetic tensor generators."""

import numpy as np
import pytest

from repro.data import block_structured_tensor, planted_tucker_tensor, random_sparse_tensor
from repro.data.synthetic import random_indices
from repro.exceptions import ShapeError
from repro.tensor import sparse_reconstruct


class TestRandomIndices:
    def test_distinct_and_in_range(self, rng):
        idx = random_indices((10, 12, 14), 200, rng)
        assert idx.shape == (200, 3)
        assert len({tuple(row) for row in idx}) == 200
        assert np.all(idx < np.array([10, 12, 14]))

    def test_large_grid_path(self, rng):
        idx = random_indices((10_000, 10_000, 10_000), 500, rng)
        assert idx.shape == (500, 3)
        assert len({tuple(row) for row in idx}) == 500

    def test_rejects_too_many_entries(self, rng):
        with pytest.raises(ShapeError):
            random_indices((2, 2), 5, rng)


class TestRandomSparseTensor:
    def test_shape_nnz_and_value_range(self):
        tensor = random_sparse_tensor((20, 20, 20), 500, seed=1)
        assert tensor.shape == (20, 20, 20)
        assert tensor.nnz == 500
        assert tensor.values.min() >= 0.0
        assert tensor.values.max() <= 1.0

    def test_seed_reproducibility(self):
        first = random_sparse_tensor((15, 15), 100, seed=9)
        second = random_sparse_tensor((15, 15), 100, seed=9)
        assert first.allclose(second)

    def test_custom_value_range(self):
        tensor = random_sparse_tensor((10, 10), 50, seed=0, value_low=2.0, value_high=3.0)
        assert tensor.values.min() >= 2.0
        assert tensor.values.max() <= 3.0


class TestPlantedTuckerTensor:
    def test_noiseless_values_match_model(self):
        planted = planted_tucker_tensor((10, 9, 8), (2, 2, 2), 300, noise_level=0.0, seed=4)
        predictions = sparse_reconstruct(
            planted.tensor, planted.core, list(planted.factors)
        )
        np.testing.assert_allclose(predictions, planted.tensor.values, atol=1e-12)

    def test_noise_level_recorded_and_applied(self):
        clean = planted_tucker_tensor((10, 9, 8), (2, 2, 2), 300, noise_level=0.0, seed=4)
        noisy = planted_tucker_tensor((10, 9, 8), (2, 2, 2), 300, noise_level=0.5, seed=4)
        assert noisy.noise_level == 0.5
        assert not np.allclose(clean.tensor.values, noisy.tensor.values)

    def test_factor_and_core_shapes(self):
        planted = planted_tucker_tensor((10, 9, 8, 7), (2, 3, 2, 2), 200, seed=1)
        assert planted.core.shape == (2, 3, 2, 2)
        assert [f.shape for f in planted.factors] == [(10, 2), (9, 3), (8, 2), (7, 2)]

    def test_rank_exceeding_dimension_rejected(self):
        with pytest.raises(ShapeError):
            planted_tucker_tensor((3, 3), (5, 2), 5)


class TestBlockStructuredTensor:
    def test_assignments_cover_all_indices(self):
        tensor, assignments = block_structured_tensor((20, 22, 6), 3, 800, seed=2)
        assert tensor.nnz == 800
        assert [a.shape[0] for a in assignments] == [20, 22, 6]
        for assignment in assignments:
            assert assignment.max() < 3

    def test_same_block_entries_have_higher_values(self):
        tensor, assignments = block_structured_tensor(
            (30, 30, 30), 2, 3000, within_block_value=1.0, noise_level=0.0, seed=3
        )
        groups = np.stack(
            [assignments[m][tensor.indices[:, m]] for m in range(3)], axis=1
        )
        same = np.all(groups == groups[:, :1], axis=1)
        assert tensor.values[same].mean() > tensor.values[~same].mean()

    def test_invalid_blocks(self):
        with pytest.raises(ShapeError):
            block_structured_tensor((10, 10), 0, 20)
