"""Tests for the MovieLens-style generator and the experiment workloads."""

import numpy as np
import pytest

from repro.data import (
    dimensionality_sweep,
    generate_movielens_like,
    movie_titles,
    nnz_sweep,
    order_sweep,
    rank_sweep,
    realworld_standins,
)


class TestMovieLensGenerator:
    def test_tensor_shape_and_value_range(self, movielens_tiny):
        tensor = movielens_tiny.tensor
        assert tensor.order == 4
        assert tensor.shape == (60, 40, 6, 8)
        assert tensor.values.min() >= 0.0
        assert tensor.values.max() <= 1.0

    def test_no_duplicate_positions(self, movielens_tiny):
        linear = movielens_tiny.tensor.linear_indices()
        assert len(np.unique(linear)) == movielens_tiny.tensor.nnz

    def test_ground_truth_shapes(self, movielens_tiny):
        assert movielens_tiny.movie_genre.shape == (40,)
        assert movielens_tiny.user_preference.shape == (60, movielens_tiny.n_genres)
        assert movielens_tiny.genre_year_affinity.shape == (movielens_tiny.n_genres, 6)
        assert movielens_tiny.genre_hour_affinity.shape == (movielens_tiny.n_genres, 8)

    def test_user_preferences_are_distributions(self, movielens_tiny):
        sums = movielens_tiny.user_preference.sum(axis=1)
        np.testing.assert_allclose(sums, np.ones_like(sums))

    def test_movies_of_genre(self, movielens_tiny):
        for genre in range(movielens_tiny.n_genres):
            movies = movielens_tiny.movies_of_genre(genre)
            assert np.all(movielens_tiny.movie_genre[movies] == genre)

    def test_titles_tagged_with_genre(self, movielens_tiny):
        titles = movie_titles(movielens_tiny)
        assert len(titles) == 40
        genre0 = movielens_tiny.genre_names[movielens_tiny.movie_genre[0]]
        assert genre0 in titles[0]

    def test_seed_reproducibility(self):
        a = generate_movielens_like(n_users=30, n_movies=20, n_ratings=500, seed=5)
        b = generate_movielens_like(n_users=30, n_movies=20, n_ratings=500, seed=5)
        assert a.tensor.allclose(b.tensor)

    def test_ratings_capped_by_capacity(self):
        dataset = generate_movielens_like(
            n_users=3, n_movies=3, n_years=2, n_hours=2, n_ratings=10_000, seed=1
        )
        assert dataset.tensor.nnz <= 3 * 3 * 2 * 2


class TestSweeps:
    def test_order_sweep_progression(self):
        sweep = order_sweep(orders=(3, 4, 5))
        assert sweep.attribute == "order"
        assert [len(w.shape) for w in sweep.workloads] == [3, 4, 5]
        assert sweep.names() == ["order=3", "order=4", "order=5"]

    def test_dimensionality_sweep_nnz_scaling(self):
        sweep = dimensionality_sweep(dims=(100, 1000), nnz_per_dim=10)
        assert [w.nnz for w in sweep.workloads] == [1000, 10_000]

    def test_nnz_sweep(self):
        sweep = nnz_sweep(nnzs=(100, 200), dimensionality=1000)
        assert [w.nnz for w in sweep.workloads] == [100, 200]
        assert all(w.shape == (1000, 1000, 1000) for w in sweep.workloads)

    def test_rank_sweep(self):
        sweep = rank_sweep(ranks=(3, 5), dimensionality=100, nnz=500)
        assert [w.ranks[0] for w in sweep.workloads] == [3, 5]

    def test_workload_build_matches_description(self):
        sweep = order_sweep(orders=(3,), dimensionality=20, nnz=100)
        tensor = sweep.workloads[0].build()
        assert tensor.shape == (20, 20, 20)
        assert tensor.nnz == 100


class TestRealworldStandins:
    def test_contains_all_four_datasets(self):
        datasets = realworld_standins(scale=0.1, seed=1)
        assert set(datasets) == {"MovieLens", "Yahoo-music", "Video", "Image"}

    def test_ranks_match_tensor_order(self):
        datasets = realworld_standins(scale=0.1, seed=1)
        for tensor, ranks in datasets.values():
            assert len(ranks) == tensor.order

    def test_scale_shrinks_tensors(self):
        small = realworld_standins(scale=0.1, seed=1)
        large = realworld_standins(scale=0.3, seed=1)
        assert small["MovieLens"][0].shape[0] < large["MovieLens"][0].shape[0]
