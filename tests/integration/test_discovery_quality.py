"""Integration test for the Section V claim that discovery needs an accurate model.

The paper notes that the zero-filling methods "produce factor matrices mostly
filled with zeros, which trigger highly inaccurate clustering", while
P-Tucker's factors reveal the hidden concepts.  On a block-structured tensor
with planted co-clusters, P-Tucker's factor rows should therefore cluster at
least as purely as the zero-fill baseline's.
"""

import numpy as np

from repro.baselines import TuckerAls
from repro.core import PTucker, PTuckerConfig
from repro.data import block_structured_tensor
from repro.discovery import concept_alignment, discover_concepts


def test_ptucker_concepts_at_least_as_pure_as_zero_fill_baseline():
    tensor, assignments = block_structured_tensor(
        shape=(50, 50, 10), n_blocks=3, nnz=5000, noise_level=0.02, seed=13
    )
    config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=6, seed=0)

    ptucker = PTucker(config).fit(tensor)
    baseline = TuckerAls(config).fit(tensor)

    ptucker_purity = concept_alignment(
        discover_concepts(ptucker, mode=0, n_concepts=3, seed=0), assignments[0]
    )
    baseline_purity = concept_alignment(
        discover_concepts(baseline, mode=0, n_concepts=3, seed=0), assignments[0]
    )
    # P-Tucker must do clearly better than chance and not worse than the baseline.
    assert ptucker_purity > 0.45
    assert ptucker_purity >= baseline_purity - 0.05


def test_relations_from_ptucker_are_strong():
    """The largest core entries of a fitted model dominate the core mass."""
    from repro.discovery import discover_relations

    tensor, _ = block_structured_tensor(
        shape=(40, 40, 8), n_blocks=2, nnz=3000, noise_level=0.02, seed=14
    )
    config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=5, seed=0)
    result = PTucker(config).fit(tensor)
    relations = discover_relations(result, n_relations=2)
    core_mass = float(np.sum(np.abs(result.core)))
    top_mass = sum(abs(r.strength) for r in relations)
    assert top_mass > 0.3 * core_mass
