"""Integration tests exercising the full pipeline across modules.

These tests reproduce, at a miniature scale, the qualitative claims of the
paper's evaluation: P-Tucker beats zero-filling baselines on held-out RMSE,
its variants trade time against memory/accuracy as described, and the whole
load-fit-discover-predict pipeline works through the public API only.
"""

import numpy as np
import pytest

import repro
from repro import PTucker, PTuckerApprox, PTuckerCache, PTuckerConfig, SparseTensor
from repro.baselines import SHot, TuckerAls, TuckerWopt
from repro.data import generate_movielens_like, planted_tucker_tensor
from repro.discovery import discover_concepts, discover_relations
from repro.tensor import load_text, save_text


@pytest.fixture(scope="module")
def rating_problem():
    """A planted rating-style problem with a train/test split."""
    planted = planted_tucker_tensor(
        shape=(40, 35, 12), ranks=(3, 3, 3), nnz=4000, noise_level=0.02, seed=21
    )
    rng = np.random.default_rng(21)
    train, test = planted.tensor.split(0.9, rng=rng)
    return train, test


class TestAccuracyOrdering:
    def test_ptucker_beats_zero_fill_baselines_on_test_rmse(self, rating_problem):
        """The core accuracy claim of Figure 11 at miniature scale."""
        train, test = rating_problem
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=6, seed=0)
        ptucker_rmse = PTucker(config).fit(train).test_rmse(test)
        hooi_rmse = TuckerAls(config).fit(train).test_rmse(test)
        shot_rmse = SHot(config).fit(train).test_rmse(test)
        assert ptucker_rmse < 0.8 * hooi_rmse
        assert ptucker_rmse < 0.8 * shot_rmse

    def test_ptucker_competitive_with_wopt(self, rating_problem):
        train, test = rating_problem
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=6, seed=0)
        ptucker_rmse = PTucker(config).fit(train).test_rmse(test)
        wopt_rmse = TuckerWopt(
            config.with_updates(max_iterations=20)
        ).fit(train).test_rmse(test)
        assert ptucker_rmse <= 1.2 * wopt_rmse

    def test_variants_agree_on_final_quality(self, rating_problem):
        train, test = rating_problem
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=5, seed=0, tolerance=0.0)
        exact = PTucker(config).fit(train).test_rmse(test)
        cached = PTuckerCache(config).fit(train).test_rmse(test)
        approx = PTuckerApprox(config).fit(train).test_rmse(test)
        assert cached == pytest.approx(exact, rel=1e-6)
        # The approximate variant truncates 20% of an already-minimal planted
        # core each iteration, so it loses more here than on the paper's
        # overparameterised real-data runs; it must still stay in the same
        # ballpark and far below the value spread of the data.
        assert approx <= 5.0 * exact
        assert approx < 0.5 * float(np.std(test.values))


class TestMemoryOrdering:
    def test_intermediate_memory_ranking_matches_table3(self, rating_problem):
        train, _ = rating_problem
        config = PTuckerConfig(ranks=(3, 3, 3), max_iterations=2, seed=0)
        ptucker = PTucker(config).fit(train)
        cache = PTuckerCache(config).fit(train)
        wopt = TuckerWopt(config).fit(train)
        # Table III: P-Tucker's O(T J^2) workspace is far below both the cache
        # table (O(|Omega| J^N)) and wOpt's dense grid (O(I^{N-1} J)).  The
        # relative order of the latter two depends on the tensor's density, so
        # only P-Tucker's dominance is asserted here.
        assert ptucker.memory.peak_bytes * 100 < cache.memory.peak_bytes
        assert ptucker.memory.peak_bytes * 100 < wopt.memory.peak_bytes


class TestFullPipeline:
    def test_file_to_discovery_pipeline(self, tmp_path):
        """Save to disk, reload, factorize, discover and predict — public API only."""
        dataset = generate_movielens_like(
            n_users=50, n_movies=40, n_years=5, n_hours=6, n_ratings=2500, seed=2
        )
        path = tmp_path / "ratings.tns"
        save_text(dataset.tensor, path)
        reloaded = load_text(path, shape=dataset.tensor.shape)
        assert reloaded.nnz == dataset.tensor.nnz

        config = PTuckerConfig(ranks=(4, 4, 3, 3), max_iterations=4, seed=0)
        result = PTucker(config).fit(reloaded)

        concepts = discover_concepts(result, mode=1, n_concepts=3, seed=0)
        assert sum(c.size for c in concepts.concepts) == 40
        relations = discover_relations(result, n_relations=2)
        assert len(relations) == 2

        predictions = result.predict(np.array([[0, 0, 0, 0], [1, 2, 3, 4]]))
        assert predictions.shape == (2,)
        assert np.all(np.isfinite(predictions))

    def test_package_exports(self):
        assert repro.__version__
        assert issubclass(repro.OutOfMemoryError, MemoryError)
        assert isinstance(repro.PTuckerConfig(), repro.PTuckerConfig)

    def test_fit_ptucker_convenience(self, rating_problem):
        train, test = rating_problem
        result = repro.fit_ptucker(train, ranks=(3, 3, 3), max_iterations=3)
        assert result.algorithm == "P-Tucker"
        assert np.isfinite(result.test_rmse(test))


class TestMissingValuePrediction:
    def test_predictions_on_unobserved_cells_are_sensible(self):
        """Predictions at unobserved positions track the planted ground truth."""
        planted = planted_tucker_tensor(
            shape=(30, 30, 10), ranks=(2, 2, 2), nnz=2500, noise_level=0.01, seed=8
        )
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=8, seed=0)
        result = PTucker(config).fit(planted.tensor)

        rng = np.random.default_rng(0)
        observed = {tuple(i) for i in planted.tensor.indices}
        probes = []
        while len(probes) < 200:
            candidate = tuple(int(rng.integers(0, d)) for d in (30, 30, 10))
            if candidate not in observed:
                probes.append(candidate)
        probe_array = np.asarray(probes)
        from repro.tensor import sparse_reconstruct

        truth_tensor = SparseTensor(probe_array, np.zeros(len(probes)), (30, 30, 10))
        truth = sparse_reconstruct(truth_tensor, planted.core, list(planted.factors))
        predictions = result.predict(probe_array)
        rmse = float(np.sqrt(np.mean((predictions - truth) ** 2)))
        assert rmse < 0.3 * float(np.std(truth))
