"""Tests for the process-pool parallel row updates."""

import os

import numpy as np
import pytest

from repro.core import PTuckerConfig
from repro.core.core_tensor import initialize_core, initialize_factors
from repro.core.row_update import update_factor_mode
from repro.exceptions import WorkerFailureError
from repro.parallel import parallel_update_factor_mode
from repro.parallel.executor import INJECT_WORKER_DEATH_ENV


@pytest.mark.parametrize("mode", [0, 1, 2])
def test_parallel_update_matches_serial(planted_small, rng, mode):
    """Row independence (Section III-B): parallel and serial updates agree."""
    tensor = planted_small.tensor
    generator = np.random.default_rng(0)
    factors_serial = initialize_factors(tensor.shape, (3, 3, 3), generator)
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    factors_parallel = [f.copy() for f in factors_serial]

    update_factor_mode(tensor, factors_serial, core, mode, regularization=0.01)
    parallel_update_factor_mode(
        tensor, factors_parallel, core, mode, regularization=0.01, n_workers=2
    )
    np.testing.assert_allclose(factors_parallel[mode], factors_serial[mode], atol=1e-8)


def test_parallel_update_with_static_scheduling(planted_small):
    tensor = planted_small.tensor
    generator = np.random.default_rng(0)
    factors = initialize_factors(tensor.shape, (3, 3, 3), generator)
    reference = [f.copy() for f in factors]
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    update_factor_mode(tensor, reference, core, 0, regularization=0.01)
    parallel_update_factor_mode(
        tensor, factors, core, 0, regularization=0.01, n_workers=3, scheduling="static"
    )
    np.testing.assert_allclose(factors[0], reference[0], atol=1e-8)


def test_parallel_update_reuses_prebuilt_context(planted_small):
    """A caller-owned ModeContext is used as-is, not rebuilt per invocation."""
    from repro.core.row_update import build_mode_context

    tensor = planted_small.tensor
    generator = np.random.default_rng(0)
    factors = initialize_factors(tensor.shape, (3, 3, 3), generator)
    reference = [f.copy() for f in factors]
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    context = build_mode_context(tensor, 1)

    update_factor_mode(tensor, reference, core, 1, regularization=0.01)
    # Two sweeps through the same prebuilt context (as an iterating driver
    # would issue) both produce the serial result.
    for _ in range(2):
        factors_sweep = [f.copy() for f in factors]
        parallel_update_factor_mode(
            tensor,
            factors_sweep,
            core,
            1,
            regularization=0.01,
            n_workers=2,
            context=context,
        )
        np.testing.assert_allclose(factors_sweep[1], reference[1], atol=1e-8)


def test_parallel_update_with_threaded_backend_in_workers(planted_small):
    """Backend names travel to the worker processes and change nothing numerically."""
    tensor = planted_small.tensor
    generator = np.random.default_rng(0)
    factors = initialize_factors(tensor.shape, (3, 3, 3), generator)
    reference = [f.copy() for f in factors]
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    update_factor_mode(tensor, reference, core, 0, regularization=0.01)
    parallel_update_factor_mode(
        tensor,
        factors,
        core,
        0,
        regularization=0.01,
        n_workers=2,
        backend="threaded",
    )
    np.testing.assert_allclose(factors[0], reference[0], atol=1e-8)


def test_worker_death_on_first_call_recovers(
    planted_small, tmp_path, monkeypatch
):
    """A worker dying abruptly on its first task is re-dispatched after a
    pool rebuild, and the recovered update equals the serial one."""
    tensor = planted_small.tensor
    generator = np.random.default_rng(0)
    factors = initialize_factors(tensor.shape, (3, 3, 3), generator)
    reference = [f.copy() for f in factors]
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    update_factor_mode(tensor, reference, core, 0, regularization=0.01)

    sentinel = str(tmp_path / "died-once")
    monkeypatch.setenv(INJECT_WORKER_DEATH_ENV, sentinel)
    parallel_update_factor_mode(
        tensor, factors, core, 0, regularization=0.01, n_workers=2
    )
    assert os.path.exists(sentinel), "the injected worker death never fired"
    np.testing.assert_allclose(factors[0], reference[0], atol=1e-8)


def test_retry_budget_exhaustion_names_mode_and_rows(
    planted_small, tmp_path, monkeypatch
):
    tensor = planted_small.tensor
    generator = np.random.default_rng(0)
    factors = initialize_factors(tensor.shape, (3, 3, 3), generator)
    core = initialize_core((3, 3, 3), np.random.default_rng(1))

    monkeypatch.setenv(INJECT_WORKER_DEATH_ENV, str(tmp_path / "die"))
    with pytest.raises(WorkerFailureError, match="mode-1") as excinfo:
        parallel_update_factor_mode(
            tensor, factors, core, 1, regularization=0.01, n_workers=2,
            max_retries=0,
        )
    assert "rows never finished" in str(excinfo.value)


def test_worker_exceptions_propagate_without_retry(planted_small):
    """A deterministic bug raised by a worker is not retried."""
    tensor = planted_small.tensor
    factors = initialize_factors(
        tensor.shape, (3, 3, 3), np.random.default_rng(0)
    )
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    with pytest.raises(Exception) as excinfo:
        parallel_update_factor_mode(
            tensor, factors, core, 0, regularization=0.01, n_workers=2,
            backend="no-such-backend",
        )
    assert not isinstance(excinfo.value, WorkerFailureError)
