"""Tests for the RowScheduler and the ParallelSimulator."""

import numpy as np
import pytest

from repro.parallel import ParallelSimulator, RowScheduler, efficiency


@pytest.fixture
def populated_scheduler(rng):
    scheduler = RowScheduler(n_threads=4, scheduling="dynamic")
    for _ in range(3):  # three modes
        scheduler.record_mode(rng.pareto(1.5, size=500) + 1.0)
    return scheduler


class TestRowScheduler:
    def test_serial_cost_is_sum_of_workloads_plus_overhead(self, rng):
        scheduler = RowScheduler(per_item_overhead=2.0)
        workload = rng.uniform(1, 5, size=50)
        scheduler.record_mode(workload)
        assert scheduler.serial_cost() == pytest.approx(workload.sum() + 2.0 * 50)

    def test_speedup_one_thread_is_one(self, populated_scheduler):
        assert populated_scheduler.speedup(1) == pytest.approx(1.0)

    def test_speedup_increases_with_threads(self, populated_scheduler):
        curve = populated_scheduler.speedup_curve([1, 2, 4, 8])
        values = list(curve.values())
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_speedup_bounded_by_thread_count(self, populated_scheduler):
        for threads in (2, 4, 8):
            assert populated_scheduler.speedup(threads) <= threads + 1e-9

    def test_dynamic_not_worse_than_static(self, populated_scheduler):
        comparison = populated_scheduler.scheduling_comparison(8)
        assert comparison["dynamic"] <= comparison["static"] + 1e-9

    def test_empty_scheduler(self):
        scheduler = RowScheduler()
        assert scheduler.makespan(4) == 0.0
        assert scheduler.speedup(4) == 1.0


class TestParallelSimulator:
    def test_speedup_near_linear_for_balanced_load(self, rng):
        scheduler = RowScheduler(n_threads=1)
        scheduler.record_mode(np.full(10_000, 3.0))
        simulator = ParallelSimulator(scheduler, serial_seconds=10.0, rank=5)
        estimate = simulator.estimate(10)
        assert estimate.speedup == pytest.approx(10.0, rel=0.05)

    def test_sync_overhead_limits_speedup(self, rng):
        scheduler = RowScheduler(n_threads=1)
        scheduler.record_mode(np.full(1000, 1.0))
        no_overhead = ParallelSimulator(scheduler, serial_seconds=1.0)
        with_overhead = ParallelSimulator(
            scheduler, serial_seconds=1.0, sync_overhead_seconds=0.05
        )
        assert with_overhead.estimate(16).speedup < no_overhead.estimate(16).speedup

    def test_memory_linear_in_threads(self, populated_scheduler):
        simulator = ParallelSimulator(populated_scheduler, serial_seconds=1.0, rank=10)
        assert simulator.memory_bytes(20) == pytest.approx(20 * simulator.memory_bytes(1))

    def test_scheduling_gain_at_least_one_for_skewed_load(self, rng):
        scheduler = RowScheduler(n_threads=1)
        scheduler.record_mode(rng.pareto(1.0, size=300) + 1.0)
        simulator = ParallelSimulator(scheduler, serial_seconds=2.0)
        assert simulator.scheduling_gain(8) >= 1.0

    def test_negative_serial_seconds_rejected(self, populated_scheduler):
        with pytest.raises(ValueError):
            ParallelSimulator(populated_scheduler, serial_seconds=-1.0)

    def test_efficiency_at_most_one(self, populated_scheduler):
        simulator = ParallelSimulator(populated_scheduler, serial_seconds=1.0)
        curve = simulator.speedup_curve([1, 2, 4, 8])
        for value in efficiency(curve).values():
            assert value <= 1.0 + 1e-9

    def test_estimate_reports_configuration(self, populated_scheduler):
        simulator = ParallelSimulator(populated_scheduler, serial_seconds=1.0)
        estimate = simulator.estimate(4, "static")
        assert estimate.n_threads == 4
        assert estimate.scheduling == "static"
