"""Tests for the row-partitioning policies."""

import numpy as np
import pytest

from repro.parallel import (
    dynamic_partition,
    longest_processing_time_partition,
    partition_rows,
    split_evenly,
    static_partition,
)


@pytest.fixture
def skewed_costs(rng):
    """A heavy-tailed cost distribution like real |Omega_in| counts."""
    return rng.pareto(1.5, size=200) + 1.0


class TestInvariants:
    @pytest.mark.parametrize("policy", ["static", "dynamic", "lpt"])
    def test_every_item_assigned_exactly_once(self, skewed_costs, policy):
        partition = partition_rows(skewed_costs, 4, policy)
        assert partition.assignments.shape[0] == skewed_costs.shape[0]
        assert partition.assignments.min() >= 0
        assert partition.assignments.max() < 4

    @pytest.mark.parametrize("policy", ["static", "dynamic", "lpt"])
    def test_loads_sum_to_total_cost(self, skewed_costs, policy):
        partition = partition_rows(skewed_costs, 4, policy)
        assert partition.thread_loads().sum() == pytest.approx(skewed_costs.sum())

    @pytest.mark.parametrize("policy", ["static", "dynamic", "lpt"])
    def test_single_thread_makespan_is_total(self, skewed_costs, policy):
        partition = partition_rows(skewed_costs, 1, policy)
        assert partition.makespan() == pytest.approx(skewed_costs.sum())

    def test_thread_items_cover_everything(self, skewed_costs):
        partition = dynamic_partition(skewed_costs, 3)
        collected = np.concatenate(
            [partition.thread_items(t) for t in range(3)]
        )
        assert np.array_equal(np.sort(collected), np.arange(skewed_costs.shape[0]))

    def test_unknown_policy_raises(self, skewed_costs):
        with pytest.raises(ValueError):
            partition_rows(skewed_costs, 2, "guided")


class TestBalanceQuality:
    def test_dynamic_beats_static_on_skewed_costs(self, skewed_costs):
        static = static_partition(skewed_costs, 8)
        dynamic = dynamic_partition(skewed_costs, 8)
        assert dynamic.makespan() <= static.makespan()

    def test_lpt_beats_or_matches_dynamic(self, skewed_costs):
        dynamic = dynamic_partition(skewed_costs, 8)
        lpt = longest_processing_time_partition(skewed_costs, 8)
        assert lpt.makespan() <= dynamic.makespan() * 1.05

    def test_uniform_costs_balance_perfectly_with_static(self):
        costs = np.ones(100)
        partition = static_partition(costs, 4)
        assert partition.imbalance() == pytest.approx(1.0)

    def test_makespan_lower_bound(self, skewed_costs):
        """No partition can beat max(mean load, max single item)."""
        for policy in ("static", "dynamic", "lpt"):
            partition = partition_rows(skewed_costs, 4, policy)
            lower = max(skewed_costs.sum() / 4.0, skewed_costs.max())
            assert partition.makespan() >= lower - 1e-9

    def test_empty_cost_list(self):
        partition = dynamic_partition([], 4)
        assert partition.makespan() == 0.0
        assert partition.imbalance() == 1.0


class TestSplitEvenly:
    def test_ranges_cover_without_overlap(self):
        ranges = split_evenly(103, 4)
        covered = []
        for start, stop in ranges:
            covered.extend(range(start, stop))
        assert covered == list(range(103))

    def test_more_threads_than_items(self):
        ranges = split_evenly(2, 5)
        total = sum(stop - start for start, stop in ranges)
        assert total == 2
