"""Hung-not-dead workers: SIGSTOP coverage for the parallel executor.

A SIGSTOPped worker is the nastiest failure for a pool: the process
exists, its pipes are open, it just never answers.  Death-only detection
(the old ``BrokenProcessPool`` handling) hangs forever on it.  These
tests stop a real worker mid-task and assert both detection paths — the
missed-heartbeat watchdog and the per-task deadline — each SIGKILL the
stopped process, re-dispatch its row partition, and produce a factor
matrix bitwise equal to the serial update.
"""

import numpy as np
import pytest

from repro.core.core_tensor import initialize_core, initialize_factors
from repro.core.row_update import update_factor_mode
from repro.fabric import TaskSupervisor
from repro.fabric.worker import INJECT_STOP_ENV
from repro.metrics import Counters
from repro.parallel import parallel_update_factor_mode
from repro.resilience import BackoffPolicy


@pytest.fixture()
def problem(planted_small):
    tensor = planted_small.tensor
    factors = initialize_factors(
        tensor.shape, (3, 3, 3), np.random.default_rng(0)
    )
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    serial = [f.copy() for f in factors]
    update_factor_mode(tensor, serial, core, 0, regularization=0.01)
    return tensor, factors, core, serial[0]


def _run_with_stopped_worker(problem, counters, **supervisor_kwargs):
    tensor, factors, core, reference = problem
    factors = [f.copy() for f in factors]
    supervisor = TaskSupervisor(
        2,
        hedge=False,  # hedging would mask the hang before detection fires
        backoff=BackoffPolicy(base=0.01, cap=0.1, jitter="none"),
        counters=counters,
        name="hung-test",
        **supervisor_kwargs,
    )
    try:
        parallel_update_factor_mode(
            tensor, factors, core, 0, regularization=0.01,
            n_workers=2, supervisor=supervisor,
        )
    finally:
        supervisor.shutdown()
    # Bitwise: the re-dispatched partition replays the identical IEEE
    # operation sequence on a healthy worker.
    assert factors[0].tobytes() == reference.tobytes()


def test_sigstopped_worker_detected_by_heartbeat_silence(
    problem, tmp_path, monkeypatch
):
    """Missed heartbeats — not death — flag the worker; it is SIGKILLed
    and its partition re-dispatched with bitwise-equal results."""
    monkeypatch.setenv(INJECT_STOP_ENV, str(tmp_path / "stop"))
    counters = Counters()
    _run_with_stopped_worker(problem, counters, heartbeat_interval=0.1)
    assert counters.get("fabric.workers_hung") >= 1
    assert counters.get("fabric.workers_killed") >= 1
    assert counters.get("fabric.redispatches") >= 1


def test_sigstopped_worker_detected_by_task_deadline(
    problem, tmp_path, monkeypatch
):
    """With lazy heartbeats the per-task deadline is what catches the
    stopped worker: same SIGKILL + re-dispatch + bitwise guarantee."""
    monkeypatch.setenv(INJECT_STOP_ENV, str(tmp_path / "stop"))
    counters = Counters()
    # Heartbeat watchdog padded out to 4s (0.5 * 8 misses); the 1-second
    # task deadline must fire first.
    _run_with_stopped_worker(
        problem, counters, heartbeat_interval=0.5, task_deadline=1.0
    )
    assert counters.get("fabric.deadline_kills") >= 1
    assert counters.get("fabric.redispatches") >= 1
