"""Property-based tests for the CSF structure and the text I/O round-trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import CsfTensor, SparseTensor, load_text, save_text, sparse_ttm_chain


def _random_sparse(seed: int, order: int, max_dim: int = 8, max_nnz: int = 40):
    rng = np.random.default_rng(seed)
    shape = tuple(int(d) for d in rng.integers(2, max_dim + 1, size=order))
    nnz = int(rng.integers(1, max_nnz))
    indices = np.stack([rng.integers(0, d, nnz) for d in shape], axis=1)
    values = rng.uniform(-2.0, 2.0, nnz)
    return SparseTensor(indices, values, shape).deduplicate()


@given(st.integers(0, 10_000), st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_csf_roundtrip_preserves_tensor(seed, order):
    tensor = _random_sparse(seed, order)
    csf = CsfTensor.from_sparse(tensor)
    assert csf.nnz == tensor.nnz
    assert csf.to_sparse().allclose(tensor)


@given(st.integers(0, 10_000), st.integers(2, 3))
@settings(max_examples=25, deadline=None)
def test_csf_ttm_matches_coo_ttm(seed, order):
    tensor = _random_sparse(seed, order)
    rng = np.random.default_rng(seed + 1)
    factors = [rng.uniform(size=(dim, 2)) for dim in tensor.shape]
    csf = CsfTensor.from_sparse(tensor)
    for mode in range(order):
        np.testing.assert_allclose(
            csf.ttm_chain(factors, mode),
            sparse_ttm_chain(tensor, factors, mode),
            atol=1e-9,
        )


@given(st.integers(0, 10_000), st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_csf_node_count_never_exceeds_order_times_nnz(seed, order):
    """Compression invariant: at most order*nnz nodes, at least order + nnz - 1."""
    tensor = _random_sparse(seed, order)
    csf = CsfTensor.from_sparse(tensor)
    assert csf.n_nodes() <= order * tensor.nnz
    if tensor.nnz:
        assert csf.n_nodes() >= tensor.nnz  # the leaf level alone has nnz nodes


@given(st.integers(0, 10_000), st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_text_io_roundtrip(seed, order):
    import os
    import tempfile

    tensor = _random_sparse(seed, order)
    handle, path = tempfile.mkstemp(suffix=".tns")
    os.close(handle)
    try:
        save_text(tensor, path)
        loaded = load_text(path, shape=tensor.shape)
    finally:
        os.unlink(path)
    assert loaded.allclose(tensor, atol=1e-9)
