"""Property-based tests on the solver invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PTucker, PTuckerConfig, orthogonalize
from repro.core.row_update import brute_force_row_update, update_factor_mode
from repro.data import random_sparse_tensor
from repro.metrics.errors import reconstruction_error, regularized_loss
from repro.tensor import SparseTensor, sparse_reconstruct


def _random_problem(seed: int, order: int = 3):
    rng = np.random.default_rng(seed)
    shape = tuple(int(d) for d in rng.integers(4, 9, size=order))
    ranks = tuple(int(r) for r in rng.integers(1, 4, size=order))
    ranks = tuple(min(r, s) for r, s in zip(ranks, shape))
    nnz = int(rng.integers(10, 40))
    indices = np.stack([rng.integers(0, d, nnz) for d in shape], axis=1)
    tensor = SparseTensor(indices, rng.uniform(0.1, 2.0, nnz), shape).deduplicate()
    factors = [rng.uniform(0.1, 1.0, size=(d, r)) for d, r in zip(shape, ranks)]
    core = rng.uniform(0.1, 1.0, size=ranks)
    return tensor, factors, core


@given(st.integers(0, 10_000), st.integers(0, 2))
@settings(max_examples=25, deadline=None)
def test_row_update_never_increases_loss(seed, mode_choice):
    """Each mode update is a block-coordinate minimisation (Theorem 1)."""
    tensor, factors, core = _random_problem(seed)
    mode = mode_choice % tensor.order
    regularization = 0.05
    before = regularized_loss(tensor, core, factors, regularization)
    update_factor_mode(tensor, factors, core, mode, regularization)
    after = regularized_loss(tensor, core, factors, regularization)
    assert after <= before + 1e-8


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_vectorized_update_matches_bruteforce(seed):
    """The batched kernel equals the paper's per-row formula on random problems."""
    tensor, factors, core = _random_problem(seed)
    mode = seed % tensor.order
    regularization = 0.01
    updated = [f.copy() for f in factors]
    update_factor_mode(tensor, updated, core, mode, regularization)
    rows = np.unique(tensor.indices[:, mode])
    probe = rows[seed % rows.shape[0]]
    expected = brute_force_row_update(
        tensor, factors, core, mode, int(probe), regularization
    )
    np.testing.assert_allclose(updated[mode][probe], expected, atol=1e-7)


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_orthogonalize_preserves_predictions(seed):
    """QR + core update (Eqs. 7-8) never changes the model's predictions."""
    tensor, factors, core = _random_problem(seed)
    before = sparse_reconstruct(tensor, core, factors)
    new_factors, new_core = orthogonalize(factors, core)
    after = sparse_reconstruct(tensor, new_core, new_factors)
    np.testing.assert_allclose(before, after, atol=1e-8)
    for factor in new_factors:
        gram = factor.T @ factor
        np.testing.assert_allclose(gram, np.eye(factor.shape[1]), atol=1e-8)


@given(st.integers(0, 10_000), st.integers(2, 4))
@settings(max_examples=10, deadline=None)
def test_full_solver_loss_monotone(seed, order):
    """End-to-end Theorem 2 check across random shapes and orders."""
    rng = np.random.default_rng(seed)
    shape = tuple(int(d) for d in rng.integers(5, 10, size=order))
    cells = int(np.prod(shape))
    nnz = min(int(rng.integers(30, 80)), cells // 2)
    tensor = random_sparse_tensor(shape, nnz, seed=seed)
    config = PTuckerConfig(
        ranks=(2,), max_iterations=3, seed=seed, tolerance=0.0, orthogonalize=False
    )
    result = PTucker(config).fit(tensor)
    losses = result.trace.losses
    assert all(b <= a + 1e-6 for a, b in zip(losses, losses[1:]))


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_reconstruction_error_nonnegative_and_consistent(seed):
    tensor, factors, core = _random_problem(seed)
    error = reconstruction_error(tensor, core, factors)
    assert error >= 0.0
    # Squared error equals the zero-regularisation loss.
    assert np.isclose(error**2, regularized_loss(tensor, core, factors, 0.0))
