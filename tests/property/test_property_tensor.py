"""Property-based tests on the tensor substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import (
    SparseTensor,
    fold,
    mode_product,
    sparse_reconstruct,
    tucker_reconstruct,
    unfold,
)

# Small dense tensors: 2-4 modes, each of length 1-4.
dense_tensors = st.integers(2, 4).flatmap(
    lambda order: hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(*[st.integers(1, 4) for _ in range(order)]),
        elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False, width=32),
    )
)


@given(dense_tensors, st.data())
@settings(max_examples=60, deadline=None)
def test_unfold_fold_roundtrip(tensor, data):
    """fold(unfold(X, n), n) == X for every valid mode n."""
    mode = data.draw(st.integers(0, tensor.ndim - 1))
    matrix = unfold(tensor, mode)
    np.testing.assert_allclose(fold(matrix, mode, tensor.shape), tensor, atol=1e-12)


@given(dense_tensors, st.data())
@settings(max_examples=60, deadline=None)
def test_unfold_preserves_frobenius_norm(tensor, data):
    mode = data.draw(st.integers(0, tensor.ndim - 1))
    assert np.isclose(np.linalg.norm(unfold(tensor, mode)), np.linalg.norm(tensor))


@given(dense_tensors, st.data())
@settings(max_examples=40, deadline=None)
def test_mode_product_with_identity_is_noop(tensor, data):
    mode = data.draw(st.integers(0, tensor.ndim - 1))
    identity = np.eye(tensor.shape[mode])
    np.testing.assert_allclose(mode_product(tensor, identity, mode), tensor, atol=1e-12)


@given(dense_tensors, st.data())
@settings(max_examples=40, deadline=None)
def test_mode_product_linearity(tensor, data):
    """(A + B) x_n X == A x_n X + B x_n X."""
    mode = data.draw(st.integers(0, tensor.ndim - 1))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
    a_matrix = rng.standard_normal((2, tensor.shape[mode]))
    b_matrix = rng.standard_normal((2, tensor.shape[mode]))
    combined = mode_product(tensor, a_matrix + b_matrix, mode)
    separate = mode_product(tensor, a_matrix, mode) + mode_product(tensor, b_matrix, mode)
    np.testing.assert_allclose(combined, separate, atol=1e-9)


@given(dense_tensors)
@settings(max_examples=50, deadline=None)
def test_sparse_dense_roundtrip(tensor):
    sparse = SparseTensor.from_dense(tensor, keep_zeros=True)
    np.testing.assert_allclose(sparse.to_dense(), tensor, atol=1e-12)
    assert sparse.nnz == tensor.size


@given(dense_tensors, st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_sparse_reconstruct_matches_dense_model(tensor, seed):
    """Eq. (4) evaluated sparsely equals the dense Tucker reconstruction."""
    rng = np.random.default_rng(seed)
    ranks = tuple(min(2, dim) for dim in tensor.shape)
    core = rng.standard_normal(ranks)
    factors = [rng.standard_normal((dim, rank)) for dim, rank in zip(tensor.shape, ranks)]
    sparse = SparseTensor.from_dense(tensor, keep_zeros=True)
    dense_model = tucker_reconstruct(core, factors)
    predictions = sparse_reconstruct(sparse, core, factors)
    np.testing.assert_allclose(
        predictions, dense_model[tuple(sparse.indices.T)], atol=1e-9
    )


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.floats(-10, 10, width=32)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_deduplicate_sum_preserves_total(entries):
    """Summing duplicates preserves the total mass of the tensor."""
    tensor = SparseTensor.from_entries(
        [((i, j), float(v)) for i, j, v in entries], shape=(6, 6)
    )
    deduplicated = tensor.deduplicate("sum")
    assert np.isclose(deduplicated.values.sum(), tensor.values.sum())
    assert deduplicated.nnz <= tensor.nnz


@given(
    st.integers(2, 30),
    st.floats(0.1, 0.9),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_split_is_a_partition(nnz, fraction, seed):
    rng = np.random.default_rng(seed)
    indices = np.stack([rng.integers(0, 50, nnz), rng.integers(0, 50, nnz)], axis=1)
    tensor = SparseTensor(indices, rng.uniform(size=nnz), (50, 50)).deduplicate()
    train, test = tensor.split(fraction, rng=rng)
    assert train.nnz + test.nnz == tensor.nnz
    train_keys = set(map(tuple, train.indices))
    test_keys = set(map(tuple, test.indices))
    assert not train_keys & test_keys
