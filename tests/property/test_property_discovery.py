"""Property-based tests on K-means and the partition/scheduling invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import kmeans
from repro.parallel import partition_rows


@given(
    st.integers(5, 60),
    st.integers(2, 5),
    st.integers(1, 4),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_kmeans_basic_invariants(n_rows, n_features, n_clusters, seed):
    """Labels are in range, every requested cluster structure is consistent, and
    inertia equals the sum of squared distances to assigned centroids."""
    rng = np.random.default_rng(seed)
    n_clusters = min(n_clusters, n_rows)
    data = rng.standard_normal((n_rows, n_features))
    result = kmeans(data, n_clusters, seed=seed, n_restarts=2)

    assert result.labels.shape == (n_rows,)
    assert result.labels.min() >= 0
    assert result.labels.max() < n_clusters
    assert result.cluster_sizes().sum() == n_rows

    distances = np.sum((data - result.centroids[result.labels]) ** 2, axis=1)
    assert np.isclose(result.inertia, distances.sum(), rtol=1e-6)


@given(
    st.integers(5, 60),
    st.integers(2, 5),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_kmeans_assignment_is_nearest_centroid(n_rows, n_clusters, seed):
    """At convergence each row is closer to its own centroid than to any other."""
    rng = np.random.default_rng(seed)
    n_clusters = min(n_clusters, n_rows)
    data = rng.standard_normal((n_rows, 3))
    result = kmeans(data, n_clusters, seed=seed)
    all_distances = np.linalg.norm(
        data[:, None, :] - result.centroids[None, :, :], axis=2
    )
    own = all_distances[np.arange(n_rows), result.labels]
    assert np.all(own <= all_distances.min(axis=1) + 1e-9)


@given(
    st.lists(st.floats(0.1, 100.0), min_size=1, max_size=200),
    st.integers(1, 16),
    st.sampled_from(["static", "dynamic", "lpt"]),
)
@settings(max_examples=50, deadline=None)
def test_partition_invariants(costs, n_threads, policy):
    """Every partition covers all items once and its makespan respects the bounds."""
    costs_arr = np.asarray(costs)
    partition = partition_rows(costs_arr, n_threads, policy)
    assert partition.assignments.shape[0] == costs_arr.shape[0]
    np.testing.assert_allclose(partition.thread_loads().sum(), costs_arr.sum())
    makespan = partition.makespan()
    lower = max(costs_arr.sum() / partition.n_threads, costs_arr.max())
    assert makespan >= lower - 1e-6
    assert makespan <= costs_arr.sum() + 1e-6
