"""Property-based tests for the contraction kernel (hypothesis).

The contracted row update must match the paper-literal brute force across
random orders, ragged ranks, empty rows and both regularization corners —
the invariant the whole kernel subsystem rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.row_update import brute_force_row_update, build_mode_context, update_factor_mode
from repro.kernels import contract_value_block
from repro.tensor import SparseTensor, sparse_reconstruct


def _brute_force_gram(tensor, factors, core, mode, row):
    """B of Eq. 10 for one row, accumulated entry by entry (tests only)."""
    rank = np.asarray(core).shape[mode]
    b_matrix = np.zeros((rank, rank))
    core_arr = np.asarray(core)
    for entry_idx in range(tensor.nnz):
        index = tensor.indices[entry_idx]
        if index[mode] != row:
            continue
        delta = np.zeros(rank)
        for beta in np.ndindex(*core_arr.shape):
            weight = core_arr[beta]
            for k in range(tensor.order):
                if k == mode:
                    continue
                weight *= factors[k][index[k], beta[k]]
            delta[beta[mode]] += weight
        b_matrix += np.outer(delta, delta)
    return b_matrix, rank


def _random_problem(seed: int, order: int):
    rng = np.random.default_rng(seed)
    shape = tuple(int(d) for d in rng.integers(4, 9, size=order))
    ranks = tuple(int(r) for r in rng.integers(1, 5, size=order))
    ranks = tuple(min(r, s) for r, s in zip(ranks, shape))
    nnz = int(rng.integers(10, 40))
    # Keep the last slice of every mode empty so empty rows are always hit.
    indices = np.stack([rng.integers(0, d - 1, nnz) for d in shape], axis=1)
    tensor = SparseTensor(indices, rng.uniform(0.1, 2.0, nnz), shape).deduplicate()
    factors = [rng.uniform(0.1, 1.0, size=(d, r)) for d, r in zip(shape, ranks)]
    core = rng.uniform(-1.0, 1.0, size=ranks)
    return tensor, factors, core


@given(
    st.integers(0, 10_000),
    st.integers(3, 5),
    st.sampled_from([0.0, 0.01, 0.5]),
)
@settings(max_examples=25, deadline=None)
def test_contracted_update_matches_brute_force(seed, order, regularization):
    """Eq. 9 row for row: contraction kernel == paper-literal reference."""
    tensor, factors, core = _random_problem(seed, order)
    mode = seed % order
    before = [f.copy() for f in factors]
    update_factor_mode(tensor, factors, core, mode, regularization)
    ctx = build_mode_context(tensor, mode)
    observed = set(ctx.row_ids.tolist())
    assert np.all(np.isfinite(factors[mode]))
    for row in list(observed)[:3]:
        # In the λ=0 ridge corner a rank-deficient B has no unique solution;
        # the comparison is only well-posed on well-conditioned rows (the
        # kernel stays finite everywhere, asserted above).
        b_matrix, rank = _brute_force_gram(tensor, before, core, mode, int(row))
        system = b_matrix + regularization * np.eye(rank)
        if np.linalg.cond(system) > 1e6:
            continue
        expected = brute_force_row_update(
            tensor, before, core, mode, int(row), regularization
        )
        # Accumulation-order noise (~nnz·|G|·eps) is amplified by the system's
        # conditioning, so the tolerance must absorb cond ≤ 1e6 amplification;
        # real kernel bugs produce O(1) relative differences.
        np.testing.assert_allclose(
            factors[mode][row], expected, rtol=1e-4, atol=1e-8
        )
    # Rows with an empty Ω segment are never visited.
    empty_row = tensor.shape[mode] - 1
    assert empty_row not in observed
    np.testing.assert_array_equal(factors[mode][empty_row], before[mode][empty_row])


@given(st.integers(0, 10_000), st.integers(3, 5))
@settings(max_examples=25, deadline=None)
def test_full_contraction_matches_reconstruction(seed, order):
    """contract_value_block is exactly the sparse model prediction (Eq. 4)."""
    tensor, factors, core = _random_problem(seed, order)
    via_kernel = contract_value_block(tensor.indices, factors, core)
    via_reconstruct = sparse_reconstruct(tensor, core, factors)
    np.testing.assert_allclose(via_kernel, via_reconstruct, atol=1e-10)


@given(st.integers(0, 10_000), st.integers(3, 5))
@settings(max_examples=25, deadline=None)
def test_backends_agree_across_orders(seed, order):
    """numpy == threaded == numba-if-present on random ragged problems.

    `_random_problem` draws ragged ranks and keeps the last slice of every
    mode empty, and small nnz over small shapes makes single-entry segments
    common — exactly the segment-boundary cases backends must not break.
    """
    from repro.kernels.backends import HAVE_NUMBA, ThreadedBackend

    tensor, factors, core = _random_problem(seed, order)
    mode = seed % order
    reference = [f.copy() for f in factors]
    update_factor_mode(tensor, reference, core, mode, 0.01, backend="numpy")

    candidates = [ThreadedBackend(n_workers=3, min_chunk_entries=4)]
    if HAVE_NUMBA:
        candidates.append("numba")
    for candidate in candidates:
        updated = [f.copy() for f in factors]
        update_factor_mode(tensor, updated, core, mode, 0.01, backend=candidate)
        np.testing.assert_allclose(
            updated[mode], reference[mode], atol=1e-12, rtol=1e-12
        )
