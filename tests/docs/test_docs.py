"""Fast documentation checks, part of the default pytest run.

Two guarantees: the README quickstart actually executes (its ``>>>``
snippets run under doctest), and no relative link in ``README.md`` or
``docs/*.md`` points at a file that does not exist.
"""

import doctest
import pathlib
import pydoc
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
README = REPO_ROOT / "README.md"
DOC_FILES = [README] + sorted((REPO_ROOT / "docs").glob("*.md"))

#: Markdown inline links: [text](target).  Images and reference-style links
#: are not used in this repository's docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_readme_quickstart_doctests(tmp_path, monkeypatch):
    """Every ``>>>`` example in the README runs and prints what it claims."""
    monkeypatch.chdir(tmp_path)  # stray outputs land in the test sandbox
    results = doctest.testfile(
        str(README),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, "README lost its executable quickstart"
    assert results.failed == 0


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    targets = LINK_RE.findall(doc.read_text(encoding="utf-8"))
    assert targets, f"{doc.name} contains no links — regex or docs regressed"
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (doc.parent / target.split("#")[0]).resolve()
        assert path.exists(), f"{doc.name}: broken relative link {target!r}"


def test_readme_documents_the_cli_flags():
    """The CLI reference table keeps up with the parser's flags."""
    text = README.read_text(encoding="utf-8")
    for flag in (
        "--backend",
        "--shards",
        "--shard-nnz",
        "--ranks",
        "--from-text",
        "--chunk-nnz",
        "--index-dtype",
        "--format",
        "--out",
        "--checkpoint-dir",
        "--checkpoint-every",
        "--checkpoint-diff",
        "--resume",
        "--topk",
        "--mode",
        "--context",
        "--exclude-observed",
        "--max-batch",
        "--max-wait-ms",
        "--cache-rows",
        "--stdio",
        "--no-http",
        "--mmap",
        "--workers",
    ):
        assert flag in text, f"README CLI table is missing {flag}"
    for command in (
        "ingest",
        "shards-migrate",
        "shards-verify",
        "update",
        "compact",
        "serve",
        "query",
    ):
        assert command in text, f"README CLI table is missing {command}"
    assert "rcoo" in text, "README does not mention the rcoo container"


@pytest.mark.parametrize(
    "module,expected",
    [
        ("repro.columns", ("IndexColumns", "uint8", "zero-copy")),
        ("repro.shards", ("ShardStore", "ShardedSweepExecutor", "manifest")),
        ("repro.shards.store", ("read_mode_block", "mode_segmentation", "uint8")),
        ("repro.shards.executor", ("bitwise", "fit")),
        ("repro.shards.merge", ("streaming_build", "k-way", "bitwise", "narrow")),
        ("repro.shards.legacy", ("V1StoreReader", "migrate_v1_store")),
        ("repro.tensor.io", ("iter_entry_chunks", "TextEntryReader", "rcoo")),
        ("repro.tensor.textparse", ("parse_numeric_block", "float(token)")),
        ("repro.kernels.backends", ("KernelBackend", "resolve_backend", "auto")),
        ("repro.kernels.backends.base", ("make_normal_equations_kernel",)),
        ("repro.resilience", ("atomic_open", "CheckpointManager", "bitwise")),
        ("repro.resilience.atomic", ("fsync", "rename", "crash")),
        ("repro.resilience.checkpoint", ("manifest", "bitwise", "resume")),
        # ``retry`` the function shadows the submodule for pydoc (like
        # ``updates.compact``); the needles target the function docstring.
        ("repro.resilience.retry", ("deadline", "backoff", "attempts")),
        ("repro.fabric", ("TaskSupervisor", "heartbeat", "bitwise")),
        ("repro.fabric.protocol", ("frame", "magic", "length")),
        ("repro.fabric.supervisor", ("hedg", "deadline", "poison")),
        ("repro.fabric.pool", ("setup log", "respawn", "backoff")),
        ("repro.fabric.worker", ("dotted path", "HEARTBEAT", "SIGSTOP")),
        ("repro.kernels.backends.procpool", ("fabric", "GIL", "bitwise")),
        ("repro.serve.workers", ("item axis", "degrades", "no-blend")),
        ("repro.updates", ("DeltaLog", "targeted", "compaction")),
        ("repro.updates.deltalog", ("deltalog.json", "commit", "sha256")),
        ("repro.updates.union", ("read_mode_block", "bitwise", "log-append")),
        ("repro.updates.resolve", ("touched", "bitwise", "solve")),
        # ``compact`` the function shadows the submodule for pydoc; the
        # needles target the function's own docstring.
        ("repro.updates.compact", ("byte-identical", "union", "pending")),
        ("repro.updates.lowrank", ("R@C", "rank", "bitwise")),
        ("repro.kernels.backends.degrade", ("numpy", "RuntimeWarning")),
        ("repro.parallel.executor", ("WorkerFailureError", "re-dispatch")),
        ("repro.serve", ("ServingModel", "rank space", "micro-batch")),
        ("repro.serve.topk", ("canonical", "bitwise", "margin")),
        ("repro.serve.cache", ("LRUCache", "hit", "evict")),
        ("repro.serve.batch", ("MicroBatcher", "max_batch", "deadline")),
        ("repro.serve.server", ("ModelServer", "/stats", "shutdown")),
        ("repro.model_io", ("save_model", "load_result", "digest")),
        ("repro.metrics.timing", ("Counters", "LatencyWindow", "percentile")),
        ("repro.metrics.environment", ("single_cpu_caveat", "blas")),
    ],
)
def test_pydoc_renders_public_api(module, expected):
    """``python -m pydoc`` output for the public APIs is usable: the module
    docstrings exist and name their central concepts."""
    text = pydoc.render_doc(module)
    for needle in expected:
        assert needle in text, f"pydoc {module} does not mention {needle!r}"
