"""Model archive round-trip, digest verification and checkpoint loading."""

import numpy as np
import pytest

from repro.core import TuckerResult
from repro.core.trace import ConvergenceTrace, IterationRecord
from repro.exceptions import DataFormatError
from repro.model_io import load_model, load_result, model_digest, save_model
from repro.resilience import CheckpointManager


def make_result(rng, shape=(5, 7, 4), ranks=(2, 3, 2), algorithm="ptucker"):
    factors = [rng.standard_normal((dim, rank)) for dim, rank in zip(shape, ranks)]
    core = rng.standard_normal(ranks)
    return TuckerResult(core=core, factors=factors, algorithm=algorithm)


def assert_bitwise_equal(loaded, reference):
    assert loaded.core.tobytes() == reference.core.tobytes()
    assert len(loaded.factors) == len(reference.factors)
    for mine, theirs in zip(loaded.factors, reference.factors):
        assert mine.tobytes() == theirs.tobytes()


class TestRoundTrip:
    def test_save_load_is_bitwise(self, tmp_path, rng):
        reference = make_result(rng)
        path = save_model(reference, str(tmp_path / "model"))
        assert path.endswith(".npz")
        loaded = load_model(path)
        assert_bitwise_equal(loaded, reference)
        assert loaded.algorithm == "ptucker"

    def test_digest_is_content_addressed(self, rng):
        result = make_result(rng)
        same = model_digest(result.core, result.factors)
        assert same == model_digest(result.core.copy(), [f.copy() for f in result.factors])
        perturbed = result.core.copy()
        perturbed.flat[0] += 1.0
        assert same != model_digest(perturbed, result.factors)

    def test_load_result_dispatches_to_npz(self, tmp_path, rng):
        reference = make_result(rng)
        path = save_model(reference, str(tmp_path / "model"))
        assert_bitwise_equal(load_result(path), reference)


class TestValidation:
    def test_corrupt_digest_is_detected(self, tmp_path, rng):
        result = make_result(rng)
        path = save_model(result, str(tmp_path / "model"))
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["core"] = arrays["core"].copy()
        arrays["core"].flat[0] += 1.0
        np.savez_compressed(path, **arrays)
        with pytest.raises(DataFormatError, match="digest"):
            load_model(path)

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(DataFormatError, match="cannot read"):
            load_model(str(path))

    def test_archive_without_core(self, tmp_path, rng):
        path = tmp_path / "model.npz"
        np.savez_compressed(path, factor_0=rng.standard_normal((3, 2)))
        with pytest.raises(DataFormatError, match="no 'core'"):
            load_model(str(path))

    def test_archive_without_factors(self, tmp_path, rng):
        path = tmp_path / "model.npz"
        np.savez_compressed(path, core=rng.standard_normal((2, 2)))
        with pytest.raises(DataFormatError, match="no factor"):
            load_model(str(path))

    def test_rank_mismatch_rejected_on_save(self, tmp_path, rng):
        result = make_result(rng)
        result.factors[1] = rng.standard_normal((7, 5))  # rank 5 != core's 3
        with pytest.raises(DataFormatError):
            save_model(result, str(tmp_path / "model"))

    def test_mmap_rejected_for_npz(self, tmp_path, rng):
        path = save_model(make_result(rng), str(tmp_path / "model"))
        with pytest.raises(DataFormatError, match="checkpoint directory"):
            load_result(path, mmap=True)


def sample_trace():
    trace = ConvergenceTrace()
    trace.add(
        IterationRecord(
            iteration=1,
            reconstruction_error=0.5,
            loss=1.25,
            seconds=0.01,
            core_nnz=12,
        )
    )
    return trace


class TestCheckpointDirectories:
    def write_checkpoint(self, tmp_path, rng):
        reference = make_result(rng)
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        manager.save(
            3, reference.factors, reference.core, sample_trace(), "digest"
        )
        return str(tmp_path / "ckpt"), reference

    def test_loads_latest_checkpoint(self, tmp_path, rng):
        directory, reference = self.write_checkpoint(tmp_path, rng)
        loaded = load_result(directory)
        assert_bitwise_equal(loaded, reference)
        assert loaded.algorithm == "ptucker"

    def test_mmap_load_maps_factors_readonly(self, tmp_path, rng):
        directory, reference = self.write_checkpoint(tmp_path, rng)
        loaded = load_result(directory, mmap=True)
        assert_bitwise_equal(loaded, reference)
        assert isinstance(loaded.factors[0], np.memmap)
        with pytest.raises((ValueError, OSError)):
            loaded.factors[0][0, 0] = 99.0

    def test_empty_directory_is_a_named_error(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(DataFormatError, match="no complete checkpoint"):
            load_result(str(empty))
