"""Differential suite: incremental results vs from-scratch ground truth.

Every assertion here is **bitwise**: the union view must read back what a
fresh build of the union tensor stores, and a targeted re-solve must land
exactly the floats a full from-scratch row solve over the union lands —
orders 3 through 5, ragged ranks, every registered kernel backend, and
rows with zero prior entries.
"""

import numpy as np
import pytest

from repro.core.core_tensor import initialize_core, initialize_factors
from repro.core.row_update import update_factor_mode
from repro.kernels.backends import available_backends
from repro.shards import ShardStore
from repro.tensor import SparseTensor
from repro.updates import DeltaLog, UnionEntrySource, solve_touched_rows

BLOCK_SIZE = 113  # deliberately unaligned so segments straddle blocks

CASES = [
    pytest.param((25, 18, 14), (3, 2, 4), 500, 60, id="order3-ragged"),
    pytest.param((14, 12, 10, 8), (2, 3, 2, 2), 500, 60, id="order4-ragged"),
    pytest.param((9, 8, 7, 6, 5), (2, 2, 3, 2, 2), 400, 50, id="order5-ragged"),
]


def _union_tensor(base, delta_idx, delta_vals):
    """The union tensor: base entries in build order, then the delta."""
    return SparseTensor(
        np.concatenate([base.indices, delta_idx]),
        np.concatenate([base.values, delta_vals]),
        shape=base.shape,
    )


def _model(shape, ranks, seed=0):
    rng = np.random.default_rng(seed)
    return (
        initialize_factors(shape, ranks, rng),
        initialize_core(ranks, rng),
    )


@pytest.mark.parametrize("shape, ranks, base_nnz, delta_nnz", CASES)
class TestUnionView:
    def test_blocks_and_segmentation_match_fresh_union_build(
        self, shape, ranks, base_nnz, delta_nnz, update_case, tmp_path, bitwise
    ):
        """Every mode block and segmentation array of the lazy union is
        byte-for-byte what a fresh build of the union tensor stores."""
        store, base, delta_idx, delta_vals = update_case(
            shape=shape, base_nnz=base_nnz, delta_nnz=delta_nnz, seed=21
        )
        union = UnionEntrySource(store)
        fresh = ShardStore.build(
            _union_tensor(base, delta_idx, delta_vals),
            str(tmp_path / "fresh-union"),
            shard_nnz=store.shard_nnz,
        )
        assert union.nnz == fresh.nnz
        for mode in range(len(shape)):
            mine = union.mode_segmentation(mode)
            theirs = fresh.mode_segmentation(mode)
            for name, a, b in zip(("ids", "starts", "counts"), mine, theirs):
                bitwise(a, b, f"mode {mode} {name}")
            for start in range(0, union.nnz, BLOCK_SIZE):
                stop = min(start + BLOCK_SIZE, union.nnz)
                cols_a, vals_a = union.read_mode_block(mode, start, stop)
                cols_b, vals_b = fresh.read_mode_block(mode, start, stop)
                for k in range(len(shape)):
                    bitwise(
                        cols_a.column(k),
                        cols_b.column(k),
                        f"mode {mode} block {start} column {k}",
                    )
                bitwise(vals_a, vals_b, f"mode {mode} block {start} values")

    @pytest.mark.parametrize("backend", available_backends())
    def test_targeted_resolve_bitwise_matches_full_sweep(
        self, shape, ranks, base_nnz, delta_nnz, backend, update_case,
        tmp_path, bitwise,
    ):
        """Re-solving only the touched rows lands exactly the floats a full
        from-scratch sweep over the union tensor lands for those rows."""
        store, base, delta_idx, delta_vals = update_case(
            shape=shape, base_nnz=base_nnz, delta_nnz=delta_nnz, seed=22
        )
        union = UnionEntrySource(store)
        fresh = ShardStore.build(
            _union_tensor(base, delta_idx, delta_vals),
            str(tmp_path / "fresh-union"),
            shard_nnz=store.shard_nnz,
        )
        factors, core = _model(shape, ranks, seed=3)
        for mode in range(len(shape)):
            reference = [f.copy() for f in factors]
            update_factor_mode(
                None,
                reference,
                core,
                mode,
                0.1,
                source=fresh,
                backend=backend,
                block_size=BLOCK_SIZE,
            )
            touched = union.touched_rows(mode)
            solved_rows, new_rows = solve_touched_rows(
                union,
                factors,
                core,
                mode,
                touched,
                regularization=0.1,
                block_size=BLOCK_SIZE,
                backend=backend,
            )
            bitwise(solved_rows, touched, f"mode {mode} solved rows")
            bitwise(
                new_rows,
                reference[mode][solved_rows],
                f"mode {mode} re-solved rows ({backend})",
            )


class TestFreshRows:
    @pytest.mark.parametrize("backend", available_backends())
    def test_rows_with_zero_prior_entries_solve_identically(
        self, backend, update_case, tmp_path, bitwise
    ):
        """Delta entries landing in factor rows the base tensor never
        touched re-solve to exactly the full sweep's values for them."""
        shape, ranks = (30, 24, 18), (3, 3, 2)
        store, base, delta_idx, delta_vals = update_case(
            shape=shape, base_nnz=500, delta_nnz=60, seed=23, fresh_rows=4
        )
        union = UnionEntrySource(store)
        fresh = ShardStore.build(
            _union_tensor(base, delta_idx, delta_vals),
            str(tmp_path / "fresh-union"),
            shard_nnz=store.shard_nnz,
        )
        factors, core = _model(shape, ranks, seed=4)
        for mode in range(3):
            # The reserved rows really are delta-only.
            fresh_mode_rows = np.setdiff1d(
                np.unique(delta_idx[:, mode]), np.unique(base.indices[:, mode])
            )
            assert fresh_mode_rows.size > 0
            reference = [f.copy() for f in factors]
            update_factor_mode(
                None, reference, core, mode, 0.05,
                source=fresh, backend=backend, block_size=BLOCK_SIZE,
            )
            solved_rows, new_rows = solve_touched_rows(
                union, factors, core, mode, union.touched_rows(mode),
                regularization=0.05, block_size=BLOCK_SIZE, backend=backend,
            )
            assert np.isin(fresh_mode_rows, solved_rows).all()
            bitwise(new_rows, reference[mode][solved_rows], f"mode {mode}")

    def test_rows_with_no_union_entries_drop_out(self, update_case):
        """Asking for rows that have no entries anywhere returns them
        unsolved (the full sweep never lists them either)."""
        shape = (30, 24, 18)
        store, base, delta_idx, _ = update_case(
            shape=shape, base_nnz=400, delta_nnz=40, seed=24
        )
        union = UnionEntrySource(store)
        factors, core = _model(shape, (3, 3, 2), seed=5)
        # Rows guaranteed empty: the update_case entries land in [0, 30),
        # so widen the model's mode 0 and ask for the rows past the data.
        factors[0] = np.vstack([factors[0], np.ones((5, 3))])
        union.shape = (35,) + shape[1:]
        untouched = np.arange(30, 35, dtype=np.int64)
        asked = np.concatenate([union.touched_rows(0), untouched])
        solved_rows, _ = solve_touched_rows(
            union, factors, core, 0, asked, block_size=BLOCK_SIZE
        )
        assert not np.isin(untouched, solved_rows).any()
        assert np.array_equal(solved_rows, union.touched_rows(0))
