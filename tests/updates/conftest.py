"""Shared fixtures for the incremental-update test harness.

The update suites reuse the fault-injection machinery of the resilience
suite (``tests/resilience/faultinject.py``); the path bridge below makes
``from faultinject import ...`` resolve from here too.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro.shards import ShardStore
from repro.tensor import SparseTensor

_RESILIENCE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "resilience"
)
if _RESILIENCE_DIR not in sys.path:
    sys.path.insert(0, _RESILIENCE_DIR)

from updatehelpers import random_entries, write_delta  # noqa: E402


@pytest.fixture
def update_case(tmp_path):
    """Factory: a shard store plus a pending delta, fully parameterised.

    Returns ``(store, base_tensor, delta_indices, delta_values)`` with the
    delta already committed to the store's delta log.  ``fresh_rows`` adds
    delta entries in factor rows the base tensor never touches (the
    zero-prior-entry case the differential suite must cover).
    """

    def build(
        shape=(40, 30, 20),
        base_nnz=600,
        delta_nnz=80,
        seed=0,
        shard_nnz=250,
        fresh_rows=0,
    ):
        from repro.updates import DeltaLog

        rng = np.random.default_rng(seed)
        base_idx, base_vals = random_entries(rng, shape, base_nnz)
        if fresh_rows:
            # Reserve the top rows of every mode for the delta only.
            for k, s in enumerate(shape):
                base_idx[:, k] = np.minimum(base_idx[:, k], s - fresh_rows - 1)
        base = SparseTensor(base_idx, base_vals, shape=shape)
        store_dir = tmp_path / f"store-{seed}"
        store = ShardStore.build(base, str(store_dir), shard_nnz=shard_nnz)
        delta_idx, delta_vals = random_entries(rng, shape, delta_nnz)
        if fresh_rows:
            # Aim some delta entries at the reserved (never-seen) rows.
            n_fresh = max(1, delta_nnz // 4)
            for k, s in enumerate(shape):
                delta_idx[:n_fresh, k] = rng.integers(
                    s - fresh_rows, s, n_fresh
                )
        delta_path = write_delta(
            tmp_path / f"delta-{seed}.rcoo", delta_idx, delta_vals, shape
        )
        DeltaLog.open(store.directory).append(delta_path, store.shape)
        return store, base, delta_idx, delta_vals

    return build
