"""Shared builders for the incremental-update suites."""

from __future__ import annotations

import numpy as np

from repro.tensor.io import write_rcoo


class ArraySource:
    """Minimal chunked entry source over in-RAM arrays (for write_rcoo)."""

    def __init__(self, indices, values, shape):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        self.shape = tuple(int(s) for s in shape)

    def iter_entry_chunks(self, chunk_nnz=None):
        yield self.indices, self.values


def random_entries(rng, shape, nnz):
    """Random COO entries within ``shape`` (duplicates allowed)."""
    indices = np.stack(
        [rng.integers(0, s, nnz) for s in shape], axis=1
    ).astype(np.int64)
    values = rng.normal(size=nnz)
    return indices, values


def write_delta(path, indices, values, shape):
    """Write entries as an ``.rcoo`` container and return its path."""
    write_rcoo(
        ArraySource(indices, values, shape), str(path), block_nnz=100_000
    )
    return str(path)
