"""Serving hot-swap: atomic row swaps under live queries.

``apply_update`` must (1) answer exactly like a model freshly built over
the updated factors, (2) never expose a blended state to a concurrent
reader, (3) patch the item projection surgically instead of rebuilding it
(proven by the ``model.projection_builds`` counter, on a 200k-item mode),
and (4) invalidate only the cache entries the swap staled, with the
cache's invalidation counters reconciling exactly.
"""

import threading

import numpy as np

from repro.core.core_tensor import initialize_core, initialize_factors
from repro.serve import ServingModel


def _model(shape, ranks, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    factors = initialize_factors(shape, ranks, rng)
    core = initialize_core(ranks, rng)
    return ServingModel(factors, core, **kwargs), factors, core


def _swap(rng, shape, ranks, mode, n_rows):
    rows = rng.choice(shape[mode], size=n_rows, replace=False).astype(np.int64)
    rows.sort()
    new_rows = rng.normal(size=(n_rows, ranks[mode]))
    return rows, new_rows


class TestBitwiseEquivalence:
    def test_swapped_model_answers_like_a_fresh_one(self, bitwise):
        shape, ranks = (25, 120, 6), (3, 4, 2)
        model, factors, core = _model(shape, ranks, seed=1)
        rng = np.random.default_rng(2)
        rows, new_rows = _swap(rng, shape, ranks, 1, 15)
        # Warm the model (projection + caches) before the swap.
        model.topk([3, 0, 2], 1, 5)
        assert model.apply_update(1, rows, new_rows) == 15

        updated = [f.copy() for f in factors]
        updated[1][rows] = new_rows
        fresh = ServingModel(updated, core)
        contexts = [[3, 0, 2], [10, 0, 5], [24, 0, 0]]
        for context in contexts:
            mine = model.topk(context, 1, 12)
            theirs = fresh.topk(context, 1, 12)
            bitwise(mine.items, theirs.items, f"items for {context}")
            bitwise(mine.scores, theirs.scores, f"scores for {context}")
        block = np.stack(
            [rng.integers(0, s, 40) for s in shape], axis=1
        ).astype(np.int64)
        bitwise(model.predict(block), fresh.predict(block), "predictions")

    def test_zero_rows_is_a_no_op(self):
        model, _, _ = _model((10, 20, 5), (2, 2, 2))
        before = model.counters.snapshot()
        assert model.apply_update(1, np.empty(0, dtype=np.int64),
                                  np.empty((0, 2))) == 0
        assert model.counters.snapshot() == before


class TestSurgicalProjection:
    def test_200k_item_swap_never_rebuilds_the_projection(self, bitwise):
        """On a 200k-item mode the projection is patched column-wise; the
        build counter stays at one across the swap."""
        shape, ranks = (40, 200_000, 6), (2, 3, 2)
        model, factors, core = _model(shape, ranks, seed=3)
        model.topk([7, 0, 1], 1, 10)
        assert model.counters.get("model.projection_builds") == 1

        rng = np.random.default_rng(4)
        rows, new_rows = _swap(rng, shape, ranks, 1, 50)
        assert model.apply_update(1, rows, new_rows) == 50
        assert model.counters.get("model.projection_builds") == 1
        assert model.counters.get("model.projection_row_updates") == 50

        updated = [f.copy() for f in factors]
        updated[1][rows] = new_rows
        fresh = ServingModel(updated, core)
        for context in ([7, 0, 1], [0, 0, 5], [39, 0, 3]):
            mine = model.topk(context, 1, 20)
            theirs = fresh.topk(context, 1, 20)
            bitwise(mine.items, theirs.items, f"items for {context}")
            bitwise(mine.scores, theirs.scores, f"scores for {context}")
        # The patched margin is exactly the rebuilt one's, so pruning
        # behaves identically.
        assert model._projection_entry(1)[2] == fresh._projection_entry(1)[2]


class TestSurgicalInvalidation:
    def test_only_contexts_touching_swapped_rows_are_evicted(self):
        shape, ranks = (30, 80, 6), (2, 3, 2)
        model, _, _ = _model(shape, ranks, seed=5)
        # Prime q vectors for contexts over users 0..9 (item mode 1).
        contexts = [[u, 0, u % 6] for u in range(10)]
        model.topk_batch(contexts, 1, 5)
        primed = [(1, u, 0, u % 6) for u in range(10)]
        assert all(key in model.query_cache for key in primed)

        rng = np.random.default_rng(6)
        # Swap user rows 2 and 7 (mode 0): exactly those contexts stale.
        rows = np.array([2, 7], dtype=np.int64)
        new_rows = rng.normal(size=(2, ranks[0]))
        before = model.query_cache.snapshot()["invalidations"]
        model.apply_update(0, rows, new_rows)
        after = model.query_cache.snapshot()["invalidations"]
        assert after - before == 2
        for key in primed:
            if key[1] in (2, 7):
                assert key not in model.query_cache
            else:
                assert key in model.query_cache

    def test_item_mode_swap_leaves_q_vectors_warm(self):
        """Swapping item rows stales no q vector (q is contracted over the
        context modes only) — zero invalidations, all keys still hot."""
        shape, ranks = (30, 80, 6), (2, 3, 2)
        model, _, _ = _model(shape, ranks, seed=7)
        contexts = [[u, 0, 0] for u in range(8)]
        model.topk_batch(contexts, 1, 5)
        rng = np.random.default_rng(8)
        rows, new_rows = _swap(rng, shape, ranks, 1, 10)
        before = model.query_cache.snapshot()["invalidations"]
        model.apply_update(1, rows, new_rows)
        assert model.query_cache.snapshot()["invalidations"] == before
        assert all((1, u, 0, 0) in model.query_cache for u in range(8))

    def test_staged_row_copies_of_swapped_rows_are_evicted(self):
        """Row-cache entries (mmap staging) for swapped rows go; others
        stay; the counter reconciles with the evicted keys."""
        shape, ranks = (30, 80, 6), (2, 3, 2)
        model, factors, _ = _model(shape, ranks, seed=9)
        for idx in range(5):
            model.row_cache.put(("row", 1, idx), np.array(factors[1][idx]))
            model.row_cache.put(("row", 0, idx), np.array(factors[0][idx]))
        rng = np.random.default_rng(10)
        rows = np.array([1, 3], dtype=np.int64)
        model.apply_update(1, rows, rng.normal(size=(2, ranks[1])))
        assert model.row_cache.snapshot()["invalidations"] == 2
        for idx in range(5):
            assert (("row", 1, idx) in model.row_cache) == (idx not in (1, 3))
            assert ("row", 0, idx) in model.row_cache


class TestConcurrentReaders:
    def test_reader_sees_old_or_new_never_a_blend(self, bitwise):
        """A reader hammering top-K during repeated swaps between two row
        states only ever observes one of the two exact answer sets."""
        shape, ranks = (20, 150, 4), (2, 3, 2)
        model, factors, core = _model(shape, ranks, seed=11)
        rng = np.random.default_rng(12)
        rows, alt_rows = _swap(rng, shape, ranks, 1, 12)
        original_rows = np.array(factors[1][rows])

        def reference(state_rows):
            updated = [f.copy() for f in factors]
            updated[1][rows] = state_rows
            return ServingModel(updated, core).topk([4, 0, 2], 1, 10)

        answers = [reference(original_rows), reference(alt_rows)]
        expected = {
            (a.items.tobytes(), a.scores.tobytes()) for a in answers
        }
        stop = threading.Event()
        blends = []
        seen = set()

        def reader():
            while not stop.is_set():
                result = model.topk([4, 0, 2], 1, 10)
                observed = (result.items.tobytes(), result.scores.tobytes())
                seen.add(observed)
                if observed not in expected:
                    blends.append(observed)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        swaps = 0
        try:
            for n in range(60):
                state = alt_rows if n % 2 == 0 else original_rows
                model.apply_update(1, rows, state)
                swaps += 1
        finally:
            stop.set()
            thread.join()
        assert not blends, "reader observed a blended model state"
        assert seen <= expected
        # Counters reconcile: every swap accounted, at full row count.
        assert model.counters.get("model.updates") == swaps
        assert model.counters.get("model.rows_swapped") == swaps * len(rows)
        assert model.counters.get("model.projection_builds") == 1
