"""Delta-log semantics: atomic append, digest pinning, log-order reads."""

import json
import os

import numpy as np
import pytest

from updatehelpers import random_entries, write_delta
from repro.exceptions import DataFormatError, ShapeError
from repro.shards import ShardStore
from repro.tensor import SparseTensor
from repro.updates import DeltaLog, append_delta

SHAPE = (12, 10, 8)


@pytest.fixture
def store(tmp_path):
    rng = np.random.default_rng(5)
    indices, values = random_entries(rng, SHAPE, 200)
    tensor = SparseTensor(indices, values, shape=SHAPE)
    return ShardStore.build(tensor, str(tmp_path / "store"), shard_nnz=100)


class TestAppend:
    def test_append_commits_record_with_digest(self, store, tmp_path):
        rng = np.random.default_rng(6)
        indices, values = random_entries(rng, SHAPE, 30)
        path = write_delta(tmp_path / "d.rcoo", indices, values, SHAPE)
        record = append_delta(store, path)
        assert record.nnz == 30
        assert record.bytes == os.path.getsize(
            os.path.join(store.directory, record.file)
        )
        assert len(record.sha256) == 64
        log = DeltaLog.open(store.directory)
        assert len(log) == 1
        assert log.pending_nnz == 30
        log.verify()

    def test_entries_come_back_in_log_append_order(
        self, store, tmp_path, bitwise
    ):
        rng = np.random.default_rng(7)
        parts = []
        log = DeltaLog.open(store.directory)
        for n in range(3):
            indices, values = random_entries(rng, SHAPE, 10 + n)
            parts.append((indices, values))
            log.append(
                write_delta(tmp_path / f"d{n}.rcoo", indices, values, SHAPE),
                store.shape,
            )
        reread = DeltaLog.open(store.directory)
        indices, values = reread.load_entries(store.order)
        bitwise(indices, np.concatenate([p[0] for p in parts]), "indices")
        bitwise(values, np.concatenate([p[1] for p in parts]), "values")

    def test_shape_mismatch_rejected_before_any_write(self, store, tmp_path):
        rng = np.random.default_rng(8)
        indices = np.zeros((4, 2), dtype=np.int64)
        path = write_delta(tmp_path / "bad.rcoo", indices, rng.normal(size=4), (5, 5))
        with pytest.raises(ShapeError, match="does not match the store shape"):
            append_delta(store, path)
        assert len(DeltaLog.open(store.directory)) == 0

    def test_missing_delta_file_is_a_format_error(self, store, tmp_path):
        with pytest.raises(DataFormatError, match="does not exist"):
            append_delta(store, str(tmp_path / "nope.rcoo"))


class TestVerify:
    def _one_delta(self, store, tmp_path, seed=9):
        rng = np.random.default_rng(seed)
        indices, values = random_entries(rng, SHAPE, 20)
        path = write_delta(tmp_path / "d.rcoo", indices, values, SHAPE)
        return append_delta(store, path)

    def test_bit_flip_is_named_in_the_error(self, store, tmp_path):
        record = self._one_delta(store, tmp_path)
        path = os.path.join(store.directory, record.file)
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)[0]
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte ^ 0xFF]))
        with pytest.raises(DataFormatError, match="sha256 mismatch") as info:
            DeltaLog.open(store.directory).verify()
        assert record.file in str(info.value)

    def test_truncation_reports_sizes(self, store, tmp_path):
        record = self._one_delta(store, tmp_path)
        path = os.path.join(store.directory, record.file)
        with open(path, "r+b") as handle:
            handle.truncate(record.bytes - 3)
        with pytest.raises(DataFormatError, match="truncated or padded"):
            DeltaLog.open(store.directory).verify()

    def test_missing_pending_file_is_reported(self, store, tmp_path):
        record = self._one_delta(store, tmp_path)
        os.remove(os.path.join(store.directory, record.file))
        with pytest.raises(DataFormatError, match="missing"):
            DeltaLog.open(store.directory).verify()


class TestOpen:
    def test_no_log_means_empty(self, store):
        log = DeltaLog.open(store.directory)
        assert len(log) == 0
        assert log.pending_nnz == 0

    def test_orphan_delta_without_log_entry_is_invisible(
        self, store, tmp_path
    ):
        # A crashed append leaves the file but no record; readers must not
        # see it, and the next append must overwrite it harmlessly.
        rng = np.random.default_rng(11)
        indices, values = random_entries(rng, SHAPE, 15)
        orphan_dir = os.path.join(store.directory, "deltas")
        os.makedirs(orphan_dir, exist_ok=True)
        write_delta(
            os.path.join(orphan_dir, "delta0000000.rcoo"),
            indices,
            values,
            SHAPE,
        )
        log = DeltaLog.open(store.directory)
        assert len(log) == 0
        fresh_idx, fresh_vals = random_entries(rng, SHAPE, 5)
        path = write_delta(tmp_path / "d.rcoo", fresh_idx, fresh_vals, SHAPE)
        record = log.append(path, store.shape)
        assert record.file.endswith("delta0000000.rcoo")
        assert record.nnz == 5
        DeltaLog.open(store.directory).verify()

    def test_garbage_log_raises_format_error(self, store):
        log = DeltaLog.open(store.directory)
        os.makedirs(log.delta_dir(), exist_ok=True)
        with open(log.log_path(), "w") as handle:
            handle.write("{not json")
        with pytest.raises(DataFormatError, match="invalid JSON"):
            DeltaLog.open(store.directory)

    def test_wrong_format_field_raises(self, store):
        log = DeltaLog.open(store.directory)
        os.makedirs(log.delta_dir(), exist_ok=True)
        with open(log.log_path(), "w") as handle:
            json.dump({"format": "something-else", "version": 1}, handle)
        with pytest.raises(DataFormatError, match="not a delta log"):
            DeltaLog.open(store.directory)
