"""Chaos tests for the update path: SIGKILL mid-append and mid-compaction.

Real child processes die by real SIGKILL at the exact windows the commit
protocols must survive (the ``REPRO_INJECT_DELTA_KILL`` /
``REPRO_INJECT_COMPACT_KILL`` hooks pin the instant).  After every crash
the store must re-open consistent — zero or all of the delta visible,
never a mix — and ``shards-verify`` must accept it.  Marked ``chaos``
and excluded from tier-1 (see ``pytest.ini``); CI runs them as a
separate timeout-bounded step.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from faultinject import repro_env
from updatehelpers import random_entries, write_delta
from repro.cli import main
from repro.shards import ShardStore
from repro.tensor import SparseTensor
from repro.updates import COMPACT_MARKER, DeltaLog, UnionEntrySource, compact

pytestmark = pytest.mark.chaos

CHILD_TIMEOUT = 60.0


def _run_cli(argv, extra_env):
    """Run ``python -m repro <argv>`` in a child with the kill hook set."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=repro_env(extra_env),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        timeout=CHILD_TIMEOUT,
    )


def _build_store(tmp_path, shape=(30, 24, 16), nnz=400, seed=0):
    rng = np.random.default_rng(seed)
    indices, values = random_entries(rng, shape, nnz)
    tensor = SparseTensor(indices, values, shape=shape)
    return ShardStore.build(tensor, str(tmp_path / "store"), shard_nnz=150)


def _verify_cli(store_dir, capsys):
    code = main(["shards-verify", str(store_dir)])
    capsys.readouterr()
    return code


class TestKillMidAppend:
    def test_append_killed_before_commit_is_invisible(
        self, tmp_path, capsys
    ):
        """SIGKILL lands after the delta file is copied but before the log
        commit: the store re-opens with ZERO of the delta visible."""
        store = _build_store(tmp_path)
        rng = np.random.default_rng(1)
        indices, values = random_entries(rng, store.shape, 40)
        delta = write_delta(tmp_path / "d.rcoo", indices, values, store.shape)

        result = _run_cli(
            ["update", str(store.directory), delta],
            {"REPRO_INJECT_DELTA_KILL": "1"},
        )
        assert result.returncode == -9, "child must die by SIGKILL"

        # The orphan file landed; the log never did — nothing is pending.
        orphan = os.path.join(store.directory, "deltas", "delta0000000.rcoo")
        assert os.path.exists(orphan)
        log = DeltaLog.open(store.directory)
        assert len(log) == 0
        reopened = ShardStore.open(store.directory)
        assert reopened.nnz == store.nnz
        assert UnionEntrySource(reopened).nnz == store.nnz
        assert _verify_cli(store.directory, capsys) == 0

        # A later (uninjected) append overwrites the orphan and commits
        # fully — ALL of the delta visible, digests intact.
        result = _run_cli(["update", str(store.directory), delta], {})
        assert result.returncode == 0
        log = DeltaLog.open(store.directory)
        assert len(log) == 1 and log.pending_nnz == 40
        log.verify()
        assert _verify_cli(store.directory, capsys) == 0


class TestKillMidCompaction:
    def _pending_case(self, tmp_path, update_case, seed):
        store, _, _, _ = update_case(
            shape=(30, 24, 16), base_nnz=400, delta_nnz=50, seed=seed,
            shard_nnz=150,
        )
        log = DeltaLog.open(store.directory)
        base = store.to_tensor()
        delta_idx, delta_vals = log.load_entries(store.order)
        union = SparseTensor(
            np.concatenate([base.indices, delta_idx]),
            np.concatenate([base.values, delta_vals]),
            shape=store.shape,
        )
        fresh = ShardStore.build(
            union, str(tmp_path / "fresh-union"), shard_nnz=store.shard_nnz
        )
        return store, fresh

    @staticmethod
    def _snapshot(directory):
        files = {}
        for root, _, names in os.walk(directory):
            for name in names:
                path = os.path.join(root, name)
                with open(path, "rb") as handle:
                    files[os.path.relpath(path, directory)] = handle.read()
        return files

    def test_kill_before_commit_preserves_the_pre_state(
        self, tmp_path, update_case, capsys
    ):
        """Dying after the scratch build but before the marker leaves the
        old store with ALL deltas still pending (zero folded)."""
        store, fresh = self._pending_case(tmp_path, update_case, seed=41)
        base_nnz = store.nnz
        result = _run_cli(
            ["compact", str(store.directory)],
            {"REPRO_INJECT_COMPACT_KILL": "before-commit"},
        )
        assert result.returncode == -9

        assert not os.path.exists(
            os.path.join(store.directory, COMPACT_MARKER)
        )
        reopened = ShardStore.open(store.directory)
        reopened.validate()
        assert reopened.nnz == base_nnz
        log = DeltaLog.open(store.directory)
        assert len(log) == 1
        log.verify()
        assert _verify_cli(store.directory, capsys) == 0

        # The interrupted attempt's debris does not corrupt a retry: a
        # clean compaction still produces the fresh-build files exactly.
        compacted = compact(str(store.directory))
        compacted.validate()
        mine = self._snapshot(compacted.directory)
        theirs = self._snapshot(fresh.directory)
        assert sorted(mine) == sorted(theirs)
        for relative in theirs:
            assert mine[relative] == theirs[relative], relative

    def test_kill_after_commit_completes_on_next_open(
        self, tmp_path, update_case, capsys
    ):
        """Dying right after the marker lands: the next open finishes the
        swap — ALL of the delta folded, file-for-file the fresh build."""
        store, fresh = self._pending_case(tmp_path, update_case, seed=42)
        result = _run_cli(
            ["compact", str(store.directory)],
            {"REPRO_INJECT_COMPACT_KILL": "after-commit"},
        )
        assert result.returncode == -9
        assert os.path.exists(os.path.join(store.directory, COMPACT_MARKER))

        reopened = ShardStore.open(store.directory)
        reopened.validate()
        assert reopened.nnz == fresh.nnz
        assert len(DeltaLog.open(store.directory)) == 0
        assert not os.path.exists(
            os.path.join(store.directory, COMPACT_MARKER)
        )
        assert _verify_cli(store.directory, capsys) == 0
        mine = self._snapshot(store.directory)
        theirs = self._snapshot(fresh.directory)
        assert sorted(mine) == sorted(theirs)
        for relative in theirs:
            assert mine[relative] == theirs[relative], relative
