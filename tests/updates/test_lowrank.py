"""Low-rank factor diffs and diff-chained checkpoints, property-tested.

The storage contract is bitwise: ``apply_factor_diff(old,
factor_diff(old, new))`` must reproduce ``new`` byte for byte — for any
pair of factors, including NaN payloads and ``-0.0`` — with the update
**rank inferred** as the number of changed rows.  The checkpoint half
proves that a diff chain (full anchor + per-iteration row diffs) loads
every iteration bitwise-equal to what full checkpoints would have stored.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import ConvergenceTrace, IterationRecord
from repro.exceptions import ShapeError
from repro.resilience.checkpoint import CheckpointManager
from repro.updates import LowRankDiff, apply_factor_diff, factor_diff


@st.composite
def factor_pairs(draw):
    """(old, new) factors of equal shape with a random subset of rows
    perturbed — sometimes none, sometimes all."""
    n_rows = draw(st.integers(min_value=0, max_value=12))
    n_cols = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = np.random.default_rng(seed)
    old = rng.normal(size=(n_rows, n_cols))
    new = old.copy()
    changed = rng.random(n_rows) < fraction
    new[changed] = rng.normal(size=(int(changed.sum()), n_cols))
    return old, new


class TestRoundTrip:
    @given(factor_pairs())
    @settings(max_examples=60, deadline=None)
    def test_diff_apply_is_bitwise_identity(self, pair):
        old, new = pair
        diff = factor_diff(old, new)
        result = apply_factor_diff(old, diff)
        assert result.dtype == np.float64
        assert result.tobytes() == new.tobytes()

    @given(factor_pairs())
    @settings(max_examples=60, deadline=None)
    def test_rank_is_the_number_of_changed_rows(self, pair):
        old, new = pair
        diff = factor_diff(old, new)
        byte_changed = sum(
            old[i].tobytes() != new[i].tobytes() for i in range(old.shape[0])
        )
        assert diff.rank == byte_changed
        assert diff.values.shape == (diff.rank, old.shape[1])

    def test_nan_payloads_and_negative_zero_round_trip(self):
        old = np.array([[0.0, 1.0], [2.0, 3.0], [4.0, 5.0]])
        new = old.copy()
        new[0, 0] = -0.0  # same value, different bits
        new[2, 1] = np.nan
        diff = factor_diff(old, new)
        assert diff.rank == 2
        assert np.array_equal(diff.rows, [0, 2])
        result = apply_factor_diff(old, diff)
        assert result.tobytes() == new.tobytes()

    def test_identical_factors_diff_to_rank_zero(self):
        old = np.arange(12.0).reshape(4, 3)
        diff = factor_diff(old, old.copy())
        assert diff.rank == 0
        assert apply_factor_diff(old, diff).tobytes() == old.tobytes()


class TestSelectionMatrix:
    def test_r_at_c_algebra_matches_the_row_update(self):
        rng = np.random.default_rng(0)
        old = rng.normal(size=(6, 4))
        new = old.copy()
        new[[1, 4]] = rng.normal(size=(2, 4))
        diff = factor_diff(old, new)
        selection = diff.selection_matrix()
        assert selection.shape == (6, diff.rank)
        compact = diff.values - old[diff.rows]
        np.testing.assert_allclose(old + selection @ compact, new)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            factor_diff(np.zeros((3, 2)), np.zeros((4, 2)))
        diff = LowRankDiff(
            rows=np.array([0]), values=np.ones((1, 2)), n_rows=3
        )
        with pytest.raises(ShapeError):
            apply_factor_diff(np.zeros((5, 2)), diff)
        with pytest.raises(ShapeError):
            apply_factor_diff(np.zeros((3, 4)), diff)


class TestCheckpointDiffChain:
    def _trace(self, iteration):
        trace = ConvergenceTrace()
        for n in range(1, iteration + 1):
            trace.add(
                IterationRecord(
                    iteration=n,
                    reconstruction_error=1.0 / n,
                    loss=2.0 / n,
                    seconds=0.0,
                    core_nnz=8,
                )
            )
        return trace

    def _states(self, iterations=5, seed=0):
        """A fit-like trajectory: each iteration rewrites a few rows."""
        rng = np.random.default_rng(seed)
        factors = [rng.normal(size=(8, 2)), rng.normal(size=(6, 3))]
        core = rng.normal(size=(2, 3))
        states = []
        for n in range(1, iterations + 1):
            factors = [f.copy() for f in factors]
            for f in factors:
                rows = rng.integers(0, f.shape[0], 2)
                f[rows] = rng.normal(size=(rows.shape[0], f.shape[1]))
            core = core + 0.01
            states.append((n, [f.copy() for f in factors], core.copy()))
        return states

    def test_chain_layout_and_bitwise_reload(self, tmp_path, bitwise):
        import os

        manager = CheckpointManager(str(tmp_path), diff=True)
        states = self._states()
        for iteration, factors, core in states:
            manager.save(
                iteration, factors, core, self._trace(iteration), "digest"
            )
        # First save is the full anchor; later ones are row diffs.
        anchor = manager.iter_dir(1)
        assert os.path.exists(os.path.join(anchor, "factor0.npy"))
        later = manager.iter_dir(3)
        assert os.path.exists(os.path.join(later, "factor0.rows.npy"))
        assert os.path.exists(os.path.join(later, "factor0.diff.npy"))
        assert not os.path.exists(os.path.join(later, "factor0.npy"))
        # A fresh manager (no in-memory base) resolves every chain link.
        reader = CheckpointManager(str(tmp_path))
        for iteration, factors, core in states:
            reader.validate(iteration)
            state = reader.load(iteration)
            assert state.iteration == iteration
            bitwise(state.core, core, f"iter {iteration} core")
            for mode, factor in enumerate(factors):
                bitwise(
                    state.factors[mode],
                    factor,
                    f"iter {iteration} factor {mode}",
                )

    def test_diff_chain_equals_full_checkpoints(self, tmp_path, bitwise):
        """Loading any iteration of a diff chain returns exactly what a
        full-checkpoint manager stored for the same trajectory."""
        diffed = CheckpointManager(str(tmp_path / "diff"), diff=True)
        full = CheckpointManager(str(tmp_path / "full"))
        for iteration, factors, core in self._states(seed=7):
            trace = self._trace(iteration)
            diffed.save(iteration, factors, core, trace, "digest")
            full.save(iteration, factors, core, trace, "digest")
        a = CheckpointManager(str(tmp_path / "diff"))
        b = CheckpointManager(str(tmp_path / "full"))
        assert a.iterations() == b.iterations()
        for iteration in a.iterations():
            mine, theirs = a.load(iteration), b.load(iteration)
            bitwise(mine.core, theirs.core, f"iter {iteration} core")
            for mode in range(len(mine.factors)):
                bitwise(
                    mine.factors[mode],
                    theirs.factors[mode],
                    f"iter {iteration} factor {mode}",
                )

    def test_manifest_records_base_iteration(self, tmp_path):
        import json
        import os

        manager = CheckpointManager(str(tmp_path), diff=True)
        for iteration, factors, core in self._states(iterations=3):
            manager.save(
                iteration, factors, core, self._trace(iteration), "digest"
            )
        with open(
            os.path.join(manager.iter_dir(3), "manifest.json")
        ) as handle:
            manifest = json.load(handle)
        assert manifest["base_iteration"] == 2
        with open(
            os.path.join(manager.iter_dir(1), "manifest.json")
        ) as handle:
            manifest = json.load(handle)
        assert "base_iteration" not in manifest
