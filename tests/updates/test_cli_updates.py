"""CLI ``update`` / ``compact``: behaviour, atomicity, exit-2 discipline."""

import numpy as np
import pytest

from updatehelpers import random_entries, write_delta
from repro.cli import main
from repro.model_io import load_result, save_model
from repro.shards import ShardStore
from repro.tensor import SparseTensor
from repro.updates import DeltaLog, apply_delta


@pytest.fixture
def store(tmp_path):
    rng = np.random.default_rng(50)
    shape = (20, 15, 8)
    indices, values = random_entries(rng, shape, 300)
    tensor = SparseTensor(indices, values, shape=shape)
    return ShardStore.build(tensor, str(tmp_path / "store"), shard_nnz=120)


@pytest.fixture
def delta(store, tmp_path):
    rng = np.random.default_rng(51)
    indices, values = random_entries(rng, store.shape, 40)
    return write_delta(tmp_path / "delta.rcoo", indices, values, store.shape)


@pytest.fixture
def model_file(store, tmp_path):
    from repro.core import PTucker, PTuckerConfig

    result = PTucker(
        PTuckerConfig(ranks=(2, 2, 2), max_iterations=2)
    ).fit(store.to_tensor())
    return save_model(result, str(tmp_path / "model"))


class TestUpdateCommand:
    def test_append_without_model(self, store, delta, capsys):
        assert main(["update", store.directory, delta]) == 0
        out = capsys.readouterr().out
        assert "pending deltas: 1 (40 entries)" in out
        log = DeltaLog.open(store.directory)
        assert len(log) == 1 and log.pending_nnz == 40
        log.verify()

    def test_model_update_matches_library_resolve(
        self, store, delta, model_file, tmp_path, capsys, bitwise
    ):
        # Reference: the library path over an identical pending store —
        # built from the same tensor in the same entry order, because the
        # union view's tie order follows the base store's build order.
        rng = np.random.default_rng(50)
        indices, values = random_entries(rng, store.shape, 300)
        tensor = SparseTensor(indices, values, shape=store.shape)
        reference = load_result(model_file)
        ref_factors = [
            np.ascontiguousarray(f, dtype=np.float64)
            for f in reference.factors
        ]
        ref_core = np.ascontiguousarray(reference.core, dtype=np.float64)
        ref_log = DeltaLog.open(store.directory)
        ref_log.append(delta, store.shape)
        # Match the CLI's --regularization default (the library's is 0.0).
        apply_delta(
            store, ref_factors, ref_core, regularization=0.01, log=ref_log
        )

        other = ShardStore.build(tensor, str(tmp_path / "other"), shard_nnz=120)
        output = str(tmp_path / "model-upd")
        assert main(
            ["update", other.directory, delta, "--model", model_file,
             "--output", output]
        ) == 0
        assert "factor rows re-solved" in capsys.readouterr().out
        updated = load_result(output + ".npz")
        for mode, factor in enumerate(updated.factors):
            bitwise(
                np.ascontiguousarray(factor, dtype=np.float64),
                ref_factors[mode],
                f"CLI vs library factor {mode}",
            )

    def test_unreadable_model_leaves_the_log_untouched(
        self, store, delta, tmp_path, capsys
    ):
        """A bad --model path must fail BEFORE the append commits —
        otherwise a retry would enqueue the delta twice."""
        missing = str(tmp_path / "no-such-model.npz")
        assert main(
            ["update", store.directory, delta, "--model", missing]
        ) == 2
        capsys.readouterr()
        assert len(DeltaLog.open(store.directory)) == 0

    def test_shape_mismatched_delta_is_exit_2(self, store, tmp_path, capsys):
        rng = np.random.default_rng(52)
        indices, values = random_entries(rng, (5, 5), 10)
        bad = write_delta(tmp_path / "bad.rcoo", indices, values, (5, 5))
        assert main(["update", store.directory, bad]) == 2
        assert "error:" in capsys.readouterr().err
        assert len(DeltaLog.open(store.directory)) == 0

    def test_missing_delta_file_is_exit_2(self, store, tmp_path, capsys):
        assert main(
            ["update", store.directory, str(tmp_path / "ghost.rcoo")]
        ) == 2
        assert "does not exist" in capsys.readouterr().err


class TestCompactCommand:
    def test_folds_pending_deltas(self, store, delta, capsys):
        main(["update", store.directory, delta])
        assert main(["compact", store.directory]) == 0
        out = capsys.readouterr().out
        assert "observed entries: 300 -> 340" in out
        reopened = ShardStore.open(store.directory)
        assert reopened.nnz == 340
        assert len(DeltaLog.open(store.directory)) == 0

    def test_nothing_pending_is_a_no_op(self, store, capsys):
        assert main(["compact", store.directory]) == 0
        assert "no pending deltas" in capsys.readouterr().out
        assert ShardStore.open(store.directory).nnz == 300


class TestCheckpointDiffPreflight:
    def test_diff_without_checkpoint_dir_is_exit_2(self, tmp_path, capsys):
        from repro.tensor import save_text
        from repro.data import random_sparse_tensor

        path = str(tmp_path / "t.tns")
        save_text(random_sparse_tensor((6, 5, 4), nnz=40, seed=0), path)
        assert main(
            ["fit", path, "--ranks", "2", "--checkpoint-diff"]
        ) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err
