"""Compaction: folding deltas must equal a fresh build, crash-safely.

The headline contract: ``compact()`` leaves the store directory
**file-for-file identical** to ``ShardStore.build`` of the union tensor
(base entries in the store's canonical order followed by the deltas in
log order) — same names, same bytes.  Plus the commit protocol's
idempotence: ``complete_compaction`` may re-run any number of times, and
``ShardStore.open`` finishes a marker it finds.
"""

import os

import numpy as np
import pytest

from updatehelpers import random_entries, write_delta
from repro.exceptions import DataFormatError
from repro.shards import ShardStore
from repro.tensor import SparseTensor
from repro.updates import (
    COMPACT_MARKER,
    DeltaLog,
    UnionEntrySource,
    compact,
    complete_compaction,
)


def snapshot(directory):
    """Relative path -> bytes for every file under ``directory``."""
    files = {}
    for root, _, names in os.walk(directory):
        for name in names:
            path = os.path.join(root, name)
            with open(path, "rb") as handle:
                files[os.path.relpath(path, directory)] = handle.read()
    return files


def union_tensor(store, log):
    """Base entries in canonical store order, then deltas in log order."""
    base = store.to_tensor()
    delta_idx, delta_vals = log.load_entries(store.order)
    return SparseTensor(
        np.concatenate([base.indices, delta_idx]),
        np.concatenate([base.values, delta_vals]),
        shape=store.shape,
    )


class TestFileForFile:
    def test_compacted_store_identical_to_fresh_union_build(
        self, update_case, tmp_path
    ):
        store, _, _, _ = update_case(seed=31)
        log = DeltaLog.open(store.directory)
        expected = union_tensor(store, log)
        fresh = ShardStore.build(
            expected, str(tmp_path / "fresh"), shard_nnz=store.shard_nnz
        )
        compacted = compact(store)
        compacted.validate()
        assert compacted.nnz == expected.nnz
        mine, theirs = snapshot(compacted.directory), snapshot(fresh.directory)
        assert sorted(mine) == sorted(theirs)
        for relative in theirs:
            assert mine[relative] == theirs[relative], relative
        assert len(DeltaLog.open(compacted.directory)) == 0

    def test_multiple_deltas_fold_in_log_order(self, update_case, tmp_path):
        shape = (40, 30, 20)
        store, _, _, _ = update_case(shape=shape, seed=32)
        rng = np.random.default_rng(99)
        log = DeltaLog.open(store.directory)
        for n in range(2):
            indices, values = random_entries(rng, shape, 25 + n)
            log.append(
                write_delta(
                    tmp_path / f"more-{n}.rcoo", indices, values, shape
                ),
                store.shape,
            )
        expected = union_tensor(store, DeltaLog.open(store.directory))
        fresh = ShardStore.build(
            expected, str(tmp_path / "fresh"), shard_nnz=store.shard_nnz
        )
        compacted = compact(store)
        mine, theirs = snapshot(compacted.directory), snapshot(fresh.directory)
        assert sorted(mine) == sorted(theirs)
        for relative in theirs:
            assert mine[relative] == theirs[relative], relative

    def test_no_pending_deltas_is_a_no_op(self, tmp_path):
        rng = np.random.default_rng(33)
        indices, values = random_entries(rng, (20, 15, 10), 150)
        tensor = SparseTensor(indices, values, shape=(20, 15, 10))
        store = ShardStore.build(tensor, str(tmp_path / "store"), shard_nnz=80)
        before = snapshot(store.directory)
        result = compact(store)
        assert result is store
        assert snapshot(store.directory) == before


class TestCommitProtocol:
    def test_complete_compaction_is_idempotent(self, update_case):
        store, _, _, _ = update_case(seed=34)
        directory = store.directory
        compacted = compact(store)
        reference = snapshot(directory)
        # Re-running with no marker is a no-op returning False.
        assert complete_compaction(directory) is False
        assert snapshot(directory) == reference
        compacted.validate()

    def test_open_finishes_a_pending_marker(self, update_case, tmp_path):
        """A marker left by a crash is executed by the next open; the
        result equals an uninterrupted compaction."""
        store, _, _, _ = update_case(seed=35)
        directory = store.directory
        log = DeltaLog.open(directory)
        expected = union_tensor(store, log)
        fresh = ShardStore.build(
            expected, str(tmp_path / "fresh"), shard_nnz=store.shard_nnz
        )
        # Reproduce the post-marker pre-completion state by hand: build
        # the scratch store and write the marker, but do not complete.
        from repro.updates.compact import COMPACT_SCRATCH, _store_relative_files
        from repro.resilience.atomic import atomic_write_json

        scratch = os.path.join(directory, COMPACT_SCRATCH)
        new_store = ShardStore.build_streaming(
            UnionEntrySource(store, log),
            scratch,
            shard_nnz=store.shard_nnz,
            shape=store.shape,
            index_dtype=store.index_dtype,
        )
        new_files = _store_relative_files(new_store)
        old_files = _store_relative_files(store)
        atomic_write_json(
            os.path.join(directory, COMPACT_MARKER),
            {
                "format": "repro-compact-commit",
                "version": 1,
                "scratch": COMPACT_SCRATCH,
                "store_files": sorted(new_files),
                "remove": sorted(old_files - new_files),
                "deltas": log.relative_paths(),
            },
        )
        reopened = ShardStore.open(directory)
        reopened.validate()
        assert not os.path.exists(os.path.join(directory, COMPACT_MARKER))
        mine, theirs = snapshot(directory), snapshot(fresh.directory)
        assert sorted(mine) == sorted(theirs)
        for relative in theirs:
            assert mine[relative] == theirs[relative], relative

    def test_corrupt_pending_delta_aborts_before_any_change(
        self, update_case
    ):
        store, _, _, _ = update_case(seed=36)
        log = DeltaLog.open(store.directory)
        path = os.path.join(store.directory, log.records[0].file)
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)[0]
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte ^ 0xFF]))
        before = snapshot(store.directory)
        with pytest.raises(DataFormatError, match="sha256 mismatch"):
            compact(store)
        assert snapshot(store.directory) == before

    def test_custom_shard_nnz_matches_fresh_build_at_that_size(
        self, update_case, tmp_path
    ):
        store, _, _, _ = update_case(seed=37)
        expected = union_tensor(store, DeltaLog.open(store.directory))
        fresh = ShardStore.build(
            expected, str(tmp_path / "fresh"), shard_nnz=97
        )
        compacted = compact(store, shard_nnz=97)
        assert compacted.shard_nnz == 97
        mine, theirs = snapshot(compacted.directory), snapshot(fresh.directory)
        assert sorted(mine) == sorted(theirs)
        for relative in theirs:
            assert mine[relative] == theirs[relative], relative
