"""Tests for the on-disk shard store (build, manifest, reads, round-trip)."""

import json
import os

import numpy as np
import pytest

from repro.core.row_update import build_mode_context
from repro.data import random_sparse_tensor
from repro.exceptions import DataFormatError, ShapeError
from repro.shards import MANIFEST_NAME, ShardStore
from repro.tensor import SparseTensor, load_shards, save_shards


@pytest.fixture
def tensor():
    return random_sparse_tensor((23, 17, 12), nnz=800, seed=5)


@pytest.fixture
def store(tensor, tmp_path):
    return ShardStore.build(tensor, tmp_path / "store", shard_nnz=150)


class TestBuildLayout:
    def test_manifest_and_files_exist(self, store, tensor):
        assert os.path.exists(store.manifest_path())
        assert store.shape == tensor.shape
        assert store.nnz == tensor.nnz
        for mode in range(tensor.order):
            for shard in store.mode_shards(mode):
                assert len(shard.column_paths) == tensor.order
                for column_path in shard.column_paths:
                    assert os.path.exists(
                        os.path.join(store.directory, column_path)
                    )
                assert os.path.exists(os.path.join(store.directory, shard.values_path))
                assert shard.nnz <= 150

    def test_shards_are_contiguous_and_cover_nnz(self, store):
        for mode in range(store.order):
            shards = store.mode_shards(mode)
            assert shards[0].start == 0
            for left, right in zip(shards, shards[1:]):
                assert left.stop == right.start
            assert shards[-1].stop == store.nnz

    def test_validate_passes_on_fresh_build(self, store):
        store.validate()

    def test_segmentation_matches_in_core_context(self, store, tensor, bitwise):
        for mode in range(tensor.order):
            context = build_mode_context(tensor, mode)
            row_ids, row_starts, row_counts = store.mode_segmentation(mode)
            bitwise(row_ids, context.row_ids, f"mode {mode} row_ids")
            bitwise(row_starts, context.row_starts, f"mode {mode} row_starts")
            bitwise(row_counts, context.row_counts, f"mode {mode} row_counts")

    def test_segment_bookkeeping_in_manifest(self, store, tensor):
        """segment_offset / n_segments / continues_segment describe the cut."""
        for mode in range(tensor.order):
            _, row_starts, _ = store.mode_segmentation(mode)
            for shard in store.mode_shards(mode):
                lo = int(np.searchsorted(row_starts, shard.start, side="right")) - 1
                hi = int(np.searchsorted(row_starts, shard.stop, side="left"))
                assert shard.segment_offset == lo
                assert shard.n_segments == hi - lo
                assert shard.continues_segment == (row_starts[lo] < shard.start)

    def test_rebuild_replaces_previous_store(self, tensor, tmp_path):
        target = tmp_path / "store"
        first = ShardStore.build(tensor, target, shard_nnz=50)
        n_first = len(first.mode_shards(0))
        second = ShardStore.build(tensor, target, shard_nnz=400)
        assert len(second.mode_shards(0)) < n_first
        second.validate()
        # No stale shard files from the finer first build survive.
        files = os.listdir(os.path.join(str(target), "mode0"))
        assert all(int(f[5:9]) < len(second.mode_shards(0))
                   for f in files if f.startswith("shard"))


class TestReads:
    def test_read_mode_block_matches_sorted_slices(self, store, tensor, bitwise):
        for mode in range(tensor.order):
            context = build_mode_context(tensor, mode)
            # Ranges chosen to sit inside one shard and to cross shards.
            for start, stop in [(0, 10), (140, 160), (0, tensor.nnz), (700, 800)]:
                indices, values = store.read_mode_block(mode, start, stop)
                # Indices compare by value: the store's columns are narrow
                # while the in-core context is wide int64.
                np.testing.assert_array_equal(
                    indices, context.sorted_indices[start:stop]
                )
                bitwise(
                    values,
                    context.sorted_values[start:stop],
                    f"mode {mode} values [{start}:{stop}]",
                )

    def test_read_mode_block_clamps_range(self, store):
        indices, values = store.read_mode_block(0, store.nnz - 5, store.nnz + 50)
        assert indices.shape == (5, store.order)
        indices, values = store.read_mode_block(0, 20, 20)
        assert indices.shape == (0, store.order)
        assert values.shape == (0,)

    def test_gather_matches_fancy_indexing(self, store, tensor, rng, bitwise):
        context = build_mode_context(tensor, 1)
        positions = rng.choice(tensor.nnz, size=120, replace=False)
        indices, values = store.gather_mode_entries(1, positions)
        np.testing.assert_array_equal(indices, context.sorted_indices[positions])
        bitwise(values, context.sorted_values[positions], "gathered values")

    def test_gather_rejects_out_of_range(self, store):
        with pytest.raises(ShapeError):
            store.gather_mode_entries(0, np.asarray([store.nnz]))

    def test_iter_mode_blocks_streams_everything(self, store, tensor, bitwise):
        context = build_mode_context(tensor, 0)
        chunks = list(store.iter_mode_blocks(0, 99))
        indices = np.concatenate([c[0] for c in chunks])
        values = np.concatenate([c[1] for c in chunks])
        np.testing.assert_array_equal(indices, context.sorted_indices)
        bitwise(values, context.sorted_values, "streamed values")

    def test_unknown_mode_raises(self, store):
        with pytest.raises(ShapeError):
            store.read_mode_block(store.order, 0, 1)
        with pytest.raises(ShapeError):
            store.mode_segmentation(store.order)


class TestRoundTrip:
    def test_to_tensor_preserves_entries(self, store, tensor):
        assert store.to_tensor().allclose(tensor)

    def test_io_helpers_round_trip(self, tensor, tmp_path):
        save_shards(tensor, tmp_path / "io-store", shard_nnz=120)
        restored = load_shards(tmp_path / "io-store")
        assert restored.allclose(tensor)

    def test_reopen_equals_build(self, store, tensor):
        reopened = ShardStore.open(store.directory)
        assert reopened.shape == store.shape
        assert reopened.nnz == store.nnz
        assert reopened.to_tensor().allclose(tensor)

    def test_empty_tensor_round_trips(self, tmp_path):
        empty = SparseTensor(
            np.empty((0, 3), dtype=np.int64), np.empty(0), (4, 5, 6)
        )
        store = ShardStore.build(empty, tmp_path / "empty", shard_nnz=10)
        assert store.nnz == 0
        assert store.mode_shards(0) == []
        restored = store.to_tensor()
        assert restored.nnz == 0
        assert restored.shape == (4, 5, 6)


class TestForTensor:
    def test_reuses_matching_store(self, tensor, tmp_path):
        target = tmp_path / "store"
        built = ShardStore.for_tensor(tensor, target, shard_nnz=150)
        stamp = os.path.getmtime(built.manifest_path())
        again = ShardStore.for_tensor(tensor, target, shard_nnz=150)
        assert os.path.getmtime(again.manifest_path()) == stamp

    def test_rebuilds_on_content_mismatch(self, tensor, tmp_path):
        target = tmp_path / "store"
        ShardStore.for_tensor(tensor, target, shard_nnz=150)
        other = tensor.with_values(tensor.values * 2.0)
        rebuilt = ShardStore.for_tensor(other, target, shard_nnz=150)
        assert rebuilt.to_tensor().allclose(other)

    def test_rebuilds_on_sum_preserving_edit(self, tensor, tmp_path):
        """Swapping two values keeps every sum identical; the entry digest
        still catches the change and triggers a rebuild."""
        target = tmp_path / "store"
        ShardStore.for_tensor(tensor, target, shard_nnz=150)
        values = tensor.values.copy()
        values[0], values[1] = values[1], values[0]
        edited = tensor.with_values(values)
        rebuilt = ShardStore.for_tensor(edited, target, shard_nnz=150)
        assert rebuilt.to_tensor().allclose(edited)

    def test_rebuilds_on_shard_nnz_change(self, tensor, tmp_path):
        target = tmp_path / "store"
        ShardStore.for_tensor(tensor, target, shard_nnz=150)
        finer = ShardStore.for_tensor(tensor, target, shard_nnz=60)
        assert finer.shard_nnz == 60


class TestCorruption:
    def test_open_without_manifest_raises(self, tmp_path):
        with pytest.raises(DataFormatError):
            ShardStore.open(tmp_path)

    def test_open_with_invalid_json_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DataFormatError):
            ShardStore.open(tmp_path)

    def test_open_with_wrong_format_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(DataFormatError):
            ShardStore.open(tmp_path)

    def test_missing_shard_file_raises_on_read(self, store):
        shard = store.mode_shards(0)[0]
        os.remove(os.path.join(store.directory, shard.column_paths[0]))
        with pytest.raises(DataFormatError):
            store.read_mode_block(0, 0, 5)

    def test_validate_detects_truncated_values(self, store):
        shard = store.mode_shards(1)[0]
        path = os.path.join(store.directory, shard.values_path)
        np.save(path, np.load(path)[:-1])
        with pytest.raises(DataFormatError):
            store.validate()

    def test_non_contiguous_manifest_rejected(self, store):
        with open(store.manifest_path(), "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        manifest["modes"][0]["shards"][0]["stop"] -= 1
        with open(store.manifest_path(), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        with pytest.raises(DataFormatError):
            ShardStore.open(store.directory)
