"""Equivalence suite: streamed sharded sweeps vs. the in-core solver.

The shard store's contract is *bitwise* equality: every streamed block
carries the same data at the same boundaries as the in-core block loop, so
the updated factors must be ``np.array_equal`` to the in-core ones — across
orders 3–5, ragged ranks, every mode, multiple backends, and shard sizes
smaller than a single row segment.
"""

import numpy as np
import pytest

from repro.core import PTucker, PTuckerCache, PTuckerConfig
from repro.core.core_tensor import initialize_core, initialize_factors
from repro.core.row_update import update_factor_mode
from repro.data import random_sparse_tensor
from repro.exceptions import ShapeError
from repro.parallel import parallel_update_factor_mode
from repro.shards import ShardedSweepExecutor, ShardStore

#: (shape, ranks) cells covering orders 3-5 with ragged ranks.
CASES = [
    ((19, 14, 11), (3, 4, 2)),
    ((11, 9, 8, 7), (2, 3, 2, 2)),
    ((7, 6, 5, 5, 4), (2, 2, 3, 2, 2)),
]


def _problem(shape, ranks, nnz, seed=0):
    tensor = random_sparse_tensor(shape, nnz=nnz, seed=seed)
    rng = np.random.default_rng(seed + 1)
    factors = initialize_factors(shape, ranks, rng)
    core = initialize_core(ranks, np.random.default_rng(seed + 2))
    return tensor, factors, core


@pytest.mark.parametrize("shape,ranks", CASES)
def test_streamed_update_bitwise_equal_per_mode(shape, ranks, tmp_path):
    tensor, factors, core = _problem(shape, ranks, nnz=700)
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=64)
    streamed = [f.copy() for f in factors]
    for mode in range(tensor.order):
        update_factor_mode(tensor, factors, core, mode, 0.01)
        update_factor_mode(None, streamed, core, mode, 0.01, source=store)
        np.testing.assert_array_equal(streamed[mode], factors[mode])


@pytest.mark.parametrize("backend", ["numpy", "threaded"])
def test_streamed_update_bitwise_equal_across_backends(backend, tmp_path):
    tensor, factors, core = _problem((21, 13, 9), (3, 3, 3), nnz=900)
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=128)
    streamed = [f.copy() for f in factors]
    update_factor_mode(tensor, factors, core, 0, 0.01, backend=backend)
    update_factor_mode(
        None, streamed, core, 0, 0.01, source=store, backend=backend
    )
    np.testing.assert_array_equal(streamed[0], factors[0])


def test_shard_smaller_than_one_segment(tmp_path):
    """A row whose segment exceeds shard_nnz spans shards; results agree."""
    rng = np.random.default_rng(3)
    # Row 0 of mode 0 owns 300 of 400 entries; shards hold only 48.
    heavy = np.column_stack(
        (
            np.zeros(300, dtype=np.int64),
            rng.integers(0, 15, size=300),
            rng.integers(0, 13, size=300),
        )
    )
    light = np.column_stack(
        (
            rng.integers(1, 12, size=100),
            rng.integers(0, 15, size=100),
            rng.integers(0, 13, size=100),
        )
    )
    from repro.tensor import SparseTensor

    tensor = SparseTensor(
        np.vstack((heavy, light)), rng.uniform(0, 1, size=400), (12, 15, 13)
    )
    factors = initialize_factors(tensor.shape, (3, 3, 3), np.random.default_rng(4))
    core = initialize_core((3, 3, 3), np.random.default_rng(5))
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=48)
    assert any(s.continues_segment for s in store.mode_shards(0))

    streamed = [f.copy() for f in factors]
    for mode in range(3):
        update_factor_mode(tensor, factors, core, mode, 0.01)
        update_factor_mode(None, streamed, core, mode, 0.01, source=store)
        np.testing.assert_array_equal(streamed[mode], factors[mode])


@pytest.mark.parametrize("shape,ranks", CASES)
def test_full_fit_bitwise_equal_on_canonical_order(shape, ranks, tmp_path):
    """Sharded fit == in-core fit, including the error trace, when the
    tensor's entry order is the store's canonical (mode-0 sorted) one."""
    tensor, _, _ = _problem(shape, ranks, nnz=600, seed=7)
    canonical = ShardStore.build(tensor, tmp_path / "a", shard_nnz=97).to_tensor()
    store = ShardStore.build(canonical, tmp_path / "b", shard_nnz=97)
    config = PTuckerConfig(ranks=ranks, max_iterations=3, seed=0)

    incore = PTucker(config).fit(canonical)
    streamed = ShardedSweepExecutor(store).fit(config)

    np.testing.assert_array_equal(streamed.core, incore.core)
    for mine, reference in zip(streamed.factors, incore.factors):
        np.testing.assert_array_equal(mine, reference)
    assert streamed.trace.errors == incore.trace.errors


def test_full_fit_bitwise_equal_on_unsorted_tensor(tmp_path):
    """With convergence disabled, factor updates match bit for bit even when
    the tensor's entry order differs from the store's canonical order (only
    the error reduction order differs, and it decides nothing)."""
    tensor, _, _ = _problem((16, 12, 10, 8), (2, 2, 3, 2), nnz=800, seed=11)
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=111)
    config = PTuckerConfig(
        ranks=(2, 2, 3, 2), max_iterations=3, seed=0, tolerance=0.0
    )
    incore = PTucker(config).fit(tensor)
    streamed = ShardedSweepExecutor(store).fit(config)
    np.testing.assert_array_equal(streamed.core, incore.core)
    for mine, reference in zip(streamed.factors, incore.factors):
        np.testing.assert_array_equal(mine, reference)


def test_small_block_size_still_bitwise_equal_to_itself(tmp_path):
    """Streaming at a different block size changes summation order, so it is
    compared against the in-core loop at that same block size."""
    tensor, factors, core = _problem((18, 14, 10), (3, 3, 3), nnz=650, seed=2)
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=80)
    streamed = [f.copy() for f in factors]
    update_factor_mode(tensor, factors, core, 0, 0.01, block_size=50)
    update_factor_mode(
        None, streamed, core, 0, 0.01, source=store, block_size=50
    )
    np.testing.assert_array_equal(streamed[0], factors[0])


def test_config_shard_dir_routes_fit_through_store(tmp_path):
    tensor, _, _ = _problem((15, 13, 11), (3, 3, 3), nnz=500, seed=9)
    shard_dir = str(tmp_path / "store")
    config = PTuckerConfig(
        ranks=(3, 3, 3),
        max_iterations=3,
        seed=0,
        tolerance=0.0,
        shard_dir=shard_dir,
        shard_nnz=70,
    )
    via_config = PTucker(config).fit(tensor)
    incore = PTucker(config.with_updates(shard_dir=None)).fit(tensor)
    np.testing.assert_array_equal(via_config.core, incore.core)
    for mine, reference in zip(via_config.factors, incore.factors):
        np.testing.assert_array_equal(mine, reference)
    # The store persisted and is reused on a second fit.
    store = ShardStore.open(shard_dir)
    assert store.nnz == tensor.nnz
    again = PTucker(config).fit(tensor)
    np.testing.assert_array_equal(again.core, via_config.core)


def test_shard_dir_rejected_for_solver_variants(tmp_path):
    config = PTuckerConfig(
        ranks=(2, 2, 2), max_iterations=1, shard_dir=str(tmp_path / "s")
    )
    tensor, _, _ = _problem((8, 7, 6), (2, 2, 2), nnz=100)
    with pytest.raises(ShapeError):
        PTuckerCache(config).fit(tensor)


def test_source_conflicts_are_rejected(tmp_path):
    tensor, factors, core = _problem((8, 7, 6), (2, 2, 2), nnz=100)
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=30)
    with pytest.raises(ValueError):
        update_factor_mode(
            None, factors, core, 0, 0.01, source=store, kernel="kron"
        )
    with pytest.raises(ValueError):
        update_factor_mode(
            None,
            factors,
            core,
            0,
            0.01,
            source=store,
            delta_provider=lambda positions, mode: None,
        )
    with pytest.raises(ValueError):
        update_factor_mode(None, factors, core, 0, 0.01)
    with pytest.raises(ValueError):
        parallel_update_factor_mode(None, factors, core, 0, 0.01)


def test_parallel_executor_streams_from_store(tmp_path):
    """The process-pool path gathers worker slices straight from the store."""
    tensor, factors, core = _problem((20, 15, 12), (3, 3, 3), nnz=600, seed=6)
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=90)
    reference = [f.copy() for f in factors]
    update_factor_mode(tensor, reference, core, 0, 0.01)
    parallel_update_factor_mode(
        None, factors, core, 0, 0.01, n_workers=2, source=store
    )
    np.testing.assert_allclose(factors[0], reference[0], atol=1e-8)


def test_executor_sweep_updates_every_mode(tmp_path):
    tensor, factors, core = _problem((14, 12, 9), (3, 3, 3), nnz=400, seed=8)
    store = ShardStore.build(tensor, tmp_path / "s", shard_nnz=55)
    reference = [f.copy() for f in factors]
    for mode in range(3):
        update_factor_mode(tensor, reference, core, mode, 0.01)
    ShardedSweepExecutor(store).sweep(factors, core, 0.01)
    for mode in range(3):
        np.testing.assert_array_equal(factors[mode], reference[mode])
