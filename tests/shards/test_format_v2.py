"""Format-v2 tests: narrow column dtypes, v1 refusal + migration, spill workers.

Covers the dtype-boundary property (uint8/16/32/int64 chosen exactly at the
documented dimension boundaries, including synthetic shapes beyond 2**32),
the bitwise narrow-vs-wide contract of stores and sweeps, the clear error a
retired v1 directory produces, the ``shards-migrate`` rewrite (bitwise
identical to a fresh narrow build), and the forced single-worker spill path.
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro.columns import IndexColumns, index_dtype_for_dim, index_dtypes_for_shape
from repro.core.row_update import build_mode_context, update_factor_mode
from repro.data import random_sparse_tensor
from repro.exceptions import DataFormatError, ShapeError
from repro.shards import (
    ShardStore,
    ShardedSweepExecutor,
    V1StoreReader,
    is_v1_store,
    migrate_v1_store,
)
from repro.shards.store import MANIFEST_NAME
from repro.tensor import SparseTensor, TensorEntryReader
from repro.cli import main as cli_main


def assert_directories_identical(left, right):
    left, right = str(left), str(right)
    left_files = sorted(
        os.path.relpath(os.path.join(dirpath, name), left)
        for dirpath, _, names in os.walk(left)
        for name in names
    )
    right_files = sorted(
        os.path.relpath(os.path.join(dirpath, name), right)
        for dirpath, _, names in os.walk(right)
        for name in names
    )
    assert left_files == right_files
    for relative in left_files:
        with open(os.path.join(left, relative), "rb") as fh:
            left_bytes = fh.read()
        with open(os.path.join(right, relative), "rb") as fh:
            right_bytes = fh.read()
        assert left_bytes == right_bytes, f"{relative} differs"


class TestDtypeBoundaries:
    """The narrowest-dtype rule at every documented boundary."""

    @pytest.mark.parametrize(
        "dim,expected",
        [
            (2, np.uint8),
            (255, np.uint8),
            (256, np.uint8),  # largest index 255 still fits
            (257, np.uint16),
            (65535, np.uint16),
            (65536, np.uint16),  # largest index 65535 still fits
            (65537, np.uint32),
            (2**32 - 1, np.uint32),
            (2**32, np.uint32),  # largest index 2**32-1 still fits
            (2**32 + 1, np.int64),
        ],
    )
    def test_dim_boundaries(self, dim, expected):
        assert index_dtype_for_dim(dim) == np.dtype(expected)
        # The wide policy ignores the dimension entirely.
        assert index_dtype_for_dim(dim, "wide") == np.dtype(np.int64)

    def test_shape_helper_and_policy_validation(self):
        dtypes = index_dtypes_for_shape((256, 257, 2**32 + 1))
        assert dtypes == (
            np.dtype(np.uint8),
            np.dtype(np.uint16),
            np.dtype(np.int64),
        )
        with pytest.raises(ShapeError):
            index_dtypes_for_shape((4, 4), "narrow")

    def test_store_columns_use_boundary_dtypes(self, tmp_path, rng):
        """A synthetic shape straddling the boundaries lands every dtype."""
        shape = (256, 65536, 2**32, 2**32 + 1)
        nnz = 64
        indices = np.stack(
            [rng.integers(0, min(s, 10**6), size=nnz) for s in shape], axis=1
        ).astype(np.int64)
        # Pin one entry at each dimension's maximum so the data really
        # exercises the extreme representable index.
        indices[0] = [s - 1 for s in shape]
        tensor = SparseTensor(indices, rng.standard_normal(nnz), shape)
        store = ShardStore.build(tensor, tmp_path / "store", shard_nnz=20)
        assert store.index_dtypes == (
            np.dtype(np.uint8),
            np.dtype(np.uint16),
            np.dtype(np.uint32),
            np.dtype(np.int64),
        )
        assert store.index_bytes_per_entry == 1 + 2 + 4 + 8
        store.validate()
        block, _ = store.read_mode_block(0, 0, store.nnz)
        assert isinstance(block, IndexColumns)
        assert block.dtypes == store.index_dtypes
        restored = store.to_tensor()
        assert restored.allclose(tensor)
        assert int(np.asarray(restored.indices).max()) == 2**32

    def test_streaming_build_matches_in_ram_at_boundaries(self, tmp_path, rng):
        """The external-memory build picks the same dtypes, file for file."""
        shape = (255, 257, 65537)
        nnz = 300
        indices = np.stack(
            [rng.integers(0, s, size=nnz) for s in shape], axis=1
        ).astype(np.int64)
        indices[0] = [s - 1 for s in shape]
        tensor = SparseTensor(indices, rng.standard_normal(nnz), shape)
        in_ram = tmp_path / "in-ram"
        streamed = tmp_path / "streamed"
        ShardStore.build(tensor, in_ram, shard_nnz=64)
        ShardStore.build_streaming(
            TensorEntryReader(tensor), streamed, shard_nnz=64, chunk_nnz=57
        )
        assert_directories_identical(in_ram, streamed)


class TestNarrowVsWideBitwise:
    """index_dtype="auto" and "wide" produce bit-identical numerics."""

    @pytest.mark.parametrize("order", [3, 4, 5])
    def test_incore_contexts_bitwise_equal(self, order, rng, bitwise):
        from repro.kernels.backends import available_backends

        shape = tuple([13, 300, 9, 70_000, 5][:order])
        tensor = random_sparse_tensor(shape, nnz=600, seed=order)
        ranks = tuple([3, 2, 4, 2, 3][:order])
        core = rng.uniform(-0.5, 0.5, size=ranks)
        factors = [
            rng.uniform(-0.5, 0.5, size=(dim, rank))
            for dim, rank in zip(shape, ranks)
        ]
        for backend in available_backends():
            for mode in range(order):
                results = {}
                for policy in ("wide", "auto"):
                    context = build_mode_context(
                        tensor, mode, index_dtype=policy
                    )
                    if policy == "auto":
                        assert isinstance(context.sorted_indices, IndexColumns)
                    fresh = [np.array(f, copy=True) for f in factors]
                    update_factor_mode(
                        tensor,
                        fresh,
                        core,
                        mode,
                        0.01,
                        context=context,
                        block_size=150,
                        backend=backend,
                    )
                    results[policy] = fresh[mode]
                bitwise(
                    results["auto"],
                    results["wide"],
                    f"backend={backend} mode={mode}",
                )

    @pytest.mark.parametrize("backend", ["numpy", "threaded"])
    def test_sharded_sweep_bitwise_equal(self, backend, tmp_path, rng, bitwise):
        tensor = random_sparse_tensor((40, 25, 12), nnz=900, seed=11)
        core = rng.uniform(-0.5, 0.5, size=(3, 3, 3))
        factors = [
            rng.uniform(-0.5, 0.5, size=(dim, 3)) for dim in tensor.shape
        ]
        results = {}
        for policy in ("auto", "wide"):
            store = ShardStore.build(
                tensor, tmp_path / policy, shard_nnz=128, index_dtype=policy
            )
            tensor.clear_caches()
            executor = ShardedSweepExecutor(
                store, backend=backend, block_size=200
            )
            fresh = [np.array(f, copy=True) for f in factors]
            executor.update_factor_mode(fresh, core, 0, 0.01)
            results[policy] = fresh[0]
        bitwise(results["auto"], results["wide"], f"backend={backend}")

    def test_full_fit_bitwise_equal(self, bitwise):
        from repro.core import PTucker, PTuckerConfig

        tensor = random_sparse_tensor((20, 14, 9), nnz=500, seed=3)
        fits = {}
        for policy in ("auto", "wide"):
            config = PTuckerConfig(
                ranks=(3, 3, 3), max_iterations=3, index_dtype=policy
            )
            fits[policy] = PTucker(config).fit(tensor)
        bitwise(fits["auto"].core, fits["wide"].core, "auto vs wide core")
        for mode, (narrow, wide) in enumerate(
            zip(fits["auto"].factors, fits["wide"].factors)
        ):
            bitwise(narrow, wide, f"auto vs wide factor {mode}")

    def test_for_tensor_rebuilds_on_policy_change(self, tmp_path):
        tensor = random_sparse_tensor((30, 20, 10), nnz=300, seed=7)
        target = tmp_path / "store"
        narrow = ShardStore.for_tensor(tensor, target, shard_nnz=100)
        assert narrow.index_dtype == "auto"
        wide = ShardStore.for_tensor(
            tensor, target, shard_nnz=100, index_dtype="wide"
        )
        assert wide.index_dtype == "wide"
        assert all(d == np.dtype(np.int64) for d in wide.index_dtypes)


def _downgrade_to_v1(directory: str) -> None:
    """Rewrite a freshly built v2 store as the retired v1 layout (test rig).

    v1 stored one ``(m, N)`` int64 matrix per shard; stacking a v2
    shard's columns back reproduces it exactly (same entries, same
    order), and the manifest shard entries regain their v1 keys.
    """
    directory = str(directory)
    with open(os.path.join(directory, MANIFEST_NAME), encoding="utf-8") as fh:
        manifest = json.load(fh)
    for mode_entry in manifest["modes"]:
        for shard in mode_entry["shards"]:
            columns = [
                np.load(os.path.join(directory, path))
                for path in shard["columns"]
            ]
            matrix = np.stack(
                [c.astype(np.int64) for c in columns], axis=1
            )
            stem = shard["values"][: -len(".values.npy")]
            np.save(os.path.join(directory, stem + ".indices.npy"), matrix)
            for path in shard["columns"]:
                os.remove(os.path.join(directory, path))
            shard["indices"] = stem + ".indices.npy"
            del shard["columns"]
    manifest["version"] = 1
    manifest["dtypes"] = {"indices": "int64", "values": "float64"}
    with open(
        os.path.join(directory, MANIFEST_NAME), "w", encoding="utf-8"
    ) as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture
def tensor():
    return random_sparse_tensor((23, 17, 12), nnz=800, seed=5)


@pytest.fixture
def v1_dir(tensor, tmp_path):
    directory = tmp_path / "v1-store"
    ShardStore.build(tensor, directory, shard_nnz=150)
    _downgrade_to_v1(directory)
    return directory


class TestV1Handling:
    def test_open_names_versions_and_recipe(self, v1_dir):
        with pytest.raises(DataFormatError) as excinfo:
            ShardStore.open(v1_dir)
        message = str(excinfo.value)
        assert "version-1" in message
        assert "version 2" in message
        assert "shards-migrate" in message
        assert "ingest" in message and "--out" in message

    def test_is_v1_store(self, v1_dir, tmp_path, tensor):
        assert is_v1_store(v1_dir)
        v2 = ShardStore.build(tensor, tmp_path / "v2", shard_nnz=150)
        assert not is_v1_store(v2.directory)
        assert not is_v1_store(tmp_path / "nowhere")

    def test_v1_reader_streams_canonical_order(self, v1_dir, tensor):
        reader = V1StoreReader(v1_dir)
        assert reader.shape == tensor.shape
        chunks = list(reader.iter_entry_chunks(97))
        indices = np.concatenate([i for i, _ in chunks])
        values = np.concatenate([v for _, v in chunks])
        context = build_mode_context(tensor, 0)
        np.testing.assert_array_equal(indices, context.sorted_indices)
        np.testing.assert_array_equal(values, context.sorted_values)

    def test_migrate_matches_fresh_narrow_build(self, v1_dir, tensor, tmp_path):
        """The migrated directory is bitwise-identical to building v2 from
        the same tensor — columns, values, segmentation and manifest."""
        migrated = tmp_path / "migrated"
        store = migrate_v1_store(v1_dir, migrated)
        reference = tmp_path / "reference"
        ShardStore.build(tensor, reference, shard_nnz=150)
        assert_directories_identical(migrated, reference)
        store.validate()
        assert store.matches(tensor)
        assert store.to_tensor().allclose(tensor)

    def test_migrate_refuses_in_place(self, v1_dir):
        with pytest.raises(ShapeError):
            migrate_v1_store(v1_dir, v1_dir)

    def test_migrate_cli(self, v1_dir, tensor, tmp_path, capsys):
        out = tmp_path / "cli-migrated"
        assert cli_main(["shards-migrate", str(v1_dir), "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "migrated v1 store" in captured
        assert ShardStore.open(out).to_tensor().allclose(tensor)

    def test_ingest_cli_reads_v1_directory(self, v1_dir, tensor, tmp_path, capsys):
        """The exact recipe the open() error quotes really works."""
        out = tmp_path / "resharded"
        assert cli_main(["ingest", str(v1_dir), "--out", str(out)]) == 0
        assert ShardStore.open(out).to_tensor().allclose(tensor)

    def test_fit_shards_on_v1_rebuilds_in_place(self, v1_dir, tmp_path):
        """``fit --shards <v1 dir>`` still serves: the directory is a cache,
        so the unreadable v1 store is rebuilt as v2 from the input tensor
        (the standalone recipe in the ``open()`` error covers the case
        where only the store survives)."""
        from repro.tensor import save_text

        tensor = random_sparse_tensor((23, 17, 12), nnz=800, seed=5)
        text = tmp_path / "t.tns"
        save_text(tensor, text)
        code = cli_main(
            [
                "fit",
                str(text),
                "--ranks",
                "3",
                "--max-iterations",
                "1",
                "--shards",
                str(v1_dir),
            ]
        )
        assert code == 0
        rebuilt = ShardStore.open(v1_dir)
        assert rebuilt.index_dtype == "auto"
        assert rebuilt.to_tensor().allclose(tensor)


class TestSpillWorkers:
    def test_forced_serial_and_parallel_spills_identical(
        self, tensor, tmp_path, monkeypatch
    ):
        """REPRO_SPILL_WORKERS=1 (the pinned serial path) and a forced
        multi-worker pool write identical stores."""
        reader = TensorEntryReader(tensor)
        monkeypatch.setenv("REPRO_SPILL_WORKERS", "1")
        serial = tmp_path / "serial"
        ShardStore.build_streaming(reader, serial, shard_nnz=150, chunk_nnz=97)
        monkeypatch.setenv("REPRO_SPILL_WORKERS", "3")
        threaded = tmp_path / "threaded"
        ShardStore.build_streaming(
            reader, threaded, shard_nnz=150, chunk_nnz=97
        )
        assert_directories_identical(serial, threaded)

    def test_spill_workers_env_parsing(self, monkeypatch):
        from repro.shards.merge import spill_workers

        monkeypatch.setenv("REPRO_SPILL_WORKERS", "5")
        assert spill_workers() == 5
        monkeypatch.setenv("REPRO_SPILL_WORKERS", "not-a-number")
        assert spill_workers() >= 1
        monkeypatch.delenv("REPRO_SPILL_WORKERS")
        assert spill_workers() >= 1
