"""External-memory shard builds: bitwise identity with the in-RAM build."""

import os

import numpy as np
import pytest

from repro.core import PTucker, PTuckerConfig
from repro.exceptions import DataFormatError, ShapeError
from repro.shards import ShardStore
from repro.tensor import SparseTensor, load_shards, save_shards, save_text
from repro.tensor.io import TensorEntryReader, TextEntryReader


def random_tensor(order, nnz, seed, dim=24):
    rng = np.random.default_rng(seed)
    shape = tuple(int(s) for s in rng.integers(dim // 2, dim, order))
    indices = np.stack(
        [rng.integers(0, s, nnz) for s in shape], axis=1
    ).astype(np.int64)
    values = rng.standard_normal(nnz)
    return SparseTensor(indices, values, shape)


def directory_files(root):
    return sorted(
        os.path.relpath(os.path.join(dirpath, name), root)
        for dirpath, _, names in os.walk(root)
        for name in names
    )


def assert_directories_identical(left, right):
    left_files = directory_files(left)
    assert left_files == directory_files(right)
    assert left_files, "comparison would be vacuous"
    for relative in left_files:
        with open(os.path.join(left, relative), "rb") as handle:
            left_bytes = handle.read()
        with open(os.path.join(right, relative), "rb") as handle:
            right_bytes = handle.read()
        assert left_bytes == right_bytes, f"{relative} differs"


class TestBitwiseIdentity:
    @pytest.mark.parametrize("order", [3, 4, 5])
    def test_orders(self, order, tmp_path):
        tensor = random_tensor(order, 2_000, seed=order)
        in_ram = str(tmp_path / "in_ram")
        streamed = str(tmp_path / "streamed")
        ShardStore.build(tensor, in_ram, shard_nnz=700)
        ShardStore.build_streaming(
            TensorEntryReader(tensor), streamed, shard_nnz=700, chunk_nnz=333
        )
        assert_directories_identical(in_ram, streamed)

    @pytest.mark.parametrize(
        "shard_nnz,chunk_nnz",
        [(1, 1), (13, 7), (100, 1000), (1000, 100), (257, 61), (5000, 5000)],
    )
    def test_ragged_shard_and_chunk_sizes(self, shard_nnz, chunk_nnz, tmp_path):
        tensor = random_tensor(3, 1_200, seed=17)
        in_ram = str(tmp_path / "in_ram")
        streamed = str(tmp_path / "streamed")
        ShardStore.build(tensor, in_ram, shard_nnz=shard_nnz)
        ShardStore.build_streaming(
            TensorEntryReader(tensor),
            streamed,
            shard_nnz=shard_nnz,
            chunk_nnz=chunk_nnz,
        )
        assert_directories_identical(in_ram, streamed)

    def test_from_text_file(self, tmp_path):
        tensor = random_tensor(3, 900, seed=3)
        path = tmp_path / "t.tns"
        save_text(tensor, path)
        in_ram = str(tmp_path / "in_ram")
        streamed = str(tmp_path / "streamed")
        ShardStore.build(tensor, in_ram, shard_nnz=250)
        store = ShardStore.build_streaming(
            TextEntryReader(path), streamed, shard_nnz=250, chunk_nnz=123
        )
        assert_directories_identical(in_ram, streamed)
        # The fingerprint matches the original tensor, so for_tensor reuses it.
        assert store.matches(tensor)

    def test_duplicate_and_skewed_rows(self, tmp_path):
        """Ties everywhere: one dominant row id exercises stable merging."""
        rng = np.random.default_rng(11)
        nnz = 800
        indices = np.stack(
            [
                np.where(rng.random(nnz) < 0.7, 2, rng.integers(0, 6, nnz)),
                rng.integers(0, 4, nnz),
                rng.integers(0, 5, nnz),
            ],
            axis=1,
        ).astype(np.int64)
        tensor = SparseTensor(indices, rng.standard_normal(nnz), (6, 4, 5))
        in_ram = str(tmp_path / "in_ram")
        streamed = str(tmp_path / "streamed")
        ShardStore.build(tensor, in_ram, shard_nnz=97)
        ShardStore.build_streaming(
            TensorEntryReader(tensor), streamed, shard_nnz=97, chunk_nnz=53
        )
        assert_directories_identical(in_ram, streamed)

    def test_single_entry_and_empty(self, tmp_path):
        single = SparseTensor(
            np.asarray([[0, 1, 2]]), np.asarray([3.5]), (2, 3, 4)
        )
        empty = SparseTensor(
            np.empty((0, 3), dtype=np.int64), np.empty(0), (2, 3, 4)
        )
        for name, tensor in (("single", single), ("empty", empty)):
            in_ram = str(tmp_path / f"{name}_in_ram")
            streamed = str(tmp_path / f"{name}_streamed")
            ShardStore.build(tensor, in_ram, shard_nnz=1)
            ShardStore.build_streaming(
                TensorEntryReader(tensor), streamed, shard_nnz=1, chunk_nnz=1
            )
            assert_directories_identical(in_ram, streamed)

    def test_cascaded_merge_matches_flat_merge(self, tmp_path, monkeypatch):
        """Many tiny runs force the fd-bounded cascade; output is identical."""
        import repro.shards.merge as merge_module

        monkeypatch.setattr(merge_module, "MAX_OPEN_RUNS", 3)
        tensor = random_tensor(3, 1_500, seed=41)
        in_ram = str(tmp_path / "in_ram")
        streamed = str(tmp_path / "streamed")
        ShardStore.build(tensor, in_ram, shard_nnz=400)
        # chunk_nnz=60 -> 25 runs per mode -> two cascade passes at fan-in 3.
        ShardStore.build_streaming(
            TensorEntryReader(tensor), streamed, shard_nnz=400, chunk_nnz=60
        )
        assert_directories_identical(in_ram, streamed)

    @pytest.mark.slow
    def test_large_disk_heavy_build(self, tmp_path):
        tensor = random_tensor(4, 60_000, seed=99, dim=64)
        in_ram = str(tmp_path / "in_ram")
        streamed = str(tmp_path / "streamed")
        ShardStore.build(tensor, in_ram, shard_nnz=7_000)
        ShardStore.build_streaming(
            TensorEntryReader(tensor),
            streamed,
            shard_nnz=7_000,
            chunk_nnz=4_111,
        )
        assert_directories_identical(in_ram, streamed)


class TestStreamingBuildBehaviour:
    def test_scratch_directory_removed(self, random_small, tmp_path):
        target = tmp_path / "store"
        ShardStore.build_streaming(TensorEntryReader(random_small), str(target))
        assert not (target / ".ingest-tmp").exists()

    def test_store_is_usable_and_validates(self, random_small, tmp_path):
        store = ShardStore.build_streaming(
            TensorEntryReader(random_small), str(tmp_path / "s"), shard_nnz=100
        )
        store.validate()
        roundtrip = load_shards(tmp_path / "s")
        assert roundtrip.allclose(random_small)

    def test_empty_source_without_shape_raises(self, tmp_path):
        class EmptySource:
            shape = None

            def iter_entry_chunks(self, chunk_nnz):
                return iter(())

        with pytest.raises(DataFormatError):
            ShardStore.build_streaming(EmptySource(), str(tmp_path / "s"))

    def test_out_of_bounds_source_raises(self, tmp_path):
        tensor = SparseTensor(np.asarray([[5, 0]]), np.asarray([1.0]), (6, 2))
        with pytest.raises(ShapeError):
            ShardStore.build_streaming(
                TensorEntryReader(tensor), str(tmp_path / "s"), shape=(3, 2)
            )

    def test_invalid_sizes_raise(self, random_small, tmp_path):
        reader = TensorEntryReader(random_small)
        with pytest.raises(ShapeError):
            ShardStore.build_streaming(reader, str(tmp_path / "s"), shard_nnz=0)
        with pytest.raises(ShapeError):
            ShardStore.build_streaming(reader, str(tmp_path / "s"), chunk_nnz=0)

    def test_save_shards_source_keyword(self, random_small, tmp_path):
        in_ram = str(tmp_path / "in_ram")
        streamed = str(tmp_path / "streamed")
        save_shards(random_small, in_ram, shard_nnz=150)
        save_shards(
            None,
            streamed,
            shard_nnz=150,
            source=TensorEntryReader(random_small),
            chunk_nnz=77,
        )
        assert_directories_identical(in_ram, streamed)

    def test_save_shards_requires_exactly_one_input(self, random_small, tmp_path):
        with pytest.raises(ShapeError):
            save_shards(None, str(tmp_path / "s"))
        with pytest.raises(ShapeError):
            save_shards(
                random_small,
                str(tmp_path / "s"),
                source=TensorEntryReader(random_small),
            )


class TestFitStreaming:
    def test_matches_in_ram_fit(self, tmp_path, bitwise):
        tensor = random_tensor(3, 1_000, seed=23)
        config = PTuckerConfig(
            ranks=(3, 3, 3),
            max_iterations=3,
            tolerance=0.0,
            seed=0,
            ingest_chunk_nnz=311,
            shard_nnz=450,
        )
        in_ram = PTucker(config).fit(tensor)
        streamed = PTucker(config).fit_streaming(TensorEntryReader(tensor))
        bitwise(streamed.core, in_ram.core, "streamed vs in-ram core")
        for mode, (mine, theirs) in enumerate(
            zip(streamed.factors, in_ram.factors)
        ):
            bitwise(mine, theirs, f"streamed vs in-ram factor {mode}")

    def test_from_text_matches_in_ram_fit(self, tmp_path, bitwise):
        tensor = random_tensor(3, 800, seed=29)
        path = tmp_path / "t.tns"
        save_text(tensor, path)
        config = PTuckerConfig(
            ranks=(2, 2, 2), max_iterations=2, tolerance=0.0, seed=1
        )
        in_ram = PTucker(config).fit(tensor)
        streamed = PTucker(config).fit_streaming(TextEntryReader(path))
        bitwise(streamed.core, in_ram.core, "text-ingest vs in-ram core")

    def test_persists_store_when_shard_dir_set(self, tmp_path):
        tensor = random_tensor(3, 500, seed=31)
        store_dir = str(tmp_path / "store")
        config = PTuckerConfig(
            ranks=(2, 2, 2), max_iterations=1, shard_dir=store_dir
        )
        PTucker(config).fit_streaming(TensorEntryReader(tensor))
        assert ShardStore.open(store_dir).matches(tensor)

    def test_variants_rejected(self, random_small):
        from repro.core import PTuckerCache

        with pytest.raises(ShapeError):
            PTuckerCache(PTuckerConfig(ranks=(2, 2, 2))).fit_streaming(
                TensorEntryReader(random_small)
            )

    def test_config_validates_ingest_chunk_nnz(self):
        with pytest.raises(ShapeError):
            PTuckerConfig(ingest_chunk_nnz=0)
