"""The shared bench-environment snapshot every BENCH_*.json embeds."""

import json
import platform

import numpy as np

from repro.metrics import bench_environment, blas_thread_count


class TestBenchEnvironment:
    def test_required_keys_present(self):
        env = bench_environment()
        for key in (
            "python",
            "numpy",
            "machine",
            "cpu_count",
            "blas_threads",
            "single_cpu_caveat",
        ):
            assert key in env

    def test_values_reflect_this_runtime(self):
        env = bench_environment()
        assert env["python"] == platform.python_version()
        assert env["numpy"] == np.__version__
        assert isinstance(env["single_cpu_caveat"], bool)

    def test_caveat_set_on_single_cpu(self, monkeypatch):
        import repro.metrics.environment as environment

        monkeypatch.setattr(environment.os, "cpu_count", lambda: 1)
        assert environment.bench_environment()["single_cpu_caveat"] is True

    def test_caveat_set_when_blas_pinned_to_one_thread(self, monkeypatch):
        import repro.metrics.environment as environment

        monkeypatch.setattr(environment.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(environment, "blas_thread_count", lambda: 1)
        assert environment.bench_environment()["single_cpu_caveat"] is True

    def test_caveat_clear_on_multicore(self, monkeypatch):
        import repro.metrics.environment as environment

        monkeypatch.setattr(environment.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(environment, "blas_thread_count", lambda: 8)
        assert environment.bench_environment()["single_cpu_caveat"] is False

    def test_snapshot_is_json_serialisable(self):
        json.dumps(bench_environment())


class TestBlasThreadCount:
    def test_reads_conventional_env_vars(self, monkeypatch):
        import repro.metrics.environment as environment

        # Force the env-var fallback regardless of threadpoolctl presence.
        monkeypatch.setitem(
            __import__("sys").modules, "threadpoolctl", None
        )
        monkeypatch.setenv("OPENBLAS_NUM_THREADS", "3")
        assert environment.blas_thread_count() == 3

    def test_committed_artifacts_embed_the_snapshot(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for name in ("BENCH_kernels.json", "BENCH_serving.json"):
            artifact = root / name
            if not artifact.exists():
                continue
            payload = json.loads(artifact.read_text())
            env = payload["environment"]
            assert "single_cpu_caveat" in env
            assert "cpu_count" in env
