"""Tests for the accuracy metrics (Eq. 5, Eq. 6, RMSE, fit)."""

import numpy as np
import pytest

from repro.metrics import (
    fit,
    reconstruction_error,
    regularized_loss,
    residuals,
    rmse_of_values,
)
from repro.metrics.errors import test_rmse as rmse_on_tensor
from repro.tensor import SparseTensor, sparse_reconstruct, tucker_reconstruct


@pytest.fixture
def model_and_tensor(rng):
    core = rng.uniform(size=(2, 2, 2))
    factors = [rng.uniform(size=(d, 2)) for d in (6, 5, 4)]
    dense = tucker_reconstruct(core, factors)
    tensor = SparseTensor.from_dense(dense, keep_zeros=True)
    return tensor, core, factors


class TestReconstructionError:
    def test_zero_for_exact_model(self, model_and_tensor):
        tensor, core, factors = model_and_tensor
        assert reconstruction_error(tensor, core, factors) == pytest.approx(0.0, abs=1e-10)

    def test_matches_manual_formula(self, model_and_tensor, rng):
        tensor, core, factors = model_and_tensor
        noisy = tensor.with_values(tensor.values + rng.normal(0, 0.1, tensor.nnz))
        predictions = sparse_reconstruct(noisy, core, factors)
        expected = np.sqrt(np.sum((noisy.values - predictions) ** 2))
        assert reconstruction_error(noisy, core, factors) == pytest.approx(expected)

    def test_residuals_alignment(self, model_and_tensor, rng):
        tensor, core, factors = model_and_tensor
        shift = rng.normal(0, 1.0, tensor.nnz)
        shifted = tensor.with_values(tensor.values + shift)
        np.testing.assert_allclose(residuals(shifted, core, factors), shift, atol=1e-10)


class TestRmseAndFit:
    def test_rmse_scales_with_noise(self, model_and_tensor, rng):
        tensor, core, factors = model_and_tensor
        small = tensor.with_values(tensor.values + rng.normal(0, 0.01, tensor.nnz))
        large = tensor.with_values(tensor.values + rng.normal(0, 0.5, tensor.nnz))
        assert rmse_on_tensor(small, core, factors) < rmse_on_tensor(large, core, factors)

    def test_rmse_empty_tensor_is_zero(self, model_and_tensor):
        _, core, factors = model_and_tensor
        empty = SparseTensor.from_entries([], shape=(6, 5, 4))
        assert rmse_on_tensor(empty, core, factors) == 0.0

    def test_fit_is_one_for_exact_model(self, model_and_tensor):
        tensor, core, factors = model_and_tensor
        assert fit(tensor, core, factors) == pytest.approx(1.0, abs=1e-9)

    def test_rmse_of_values(self):
        assert rmse_of_values([1.0, 2.0], [1.0, 4.0]) == pytest.approx(np.sqrt(2.0))

    def test_rmse_of_values_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse_of_values([1.0], [1.0, 2.0])

    def test_rmse_of_values_empty(self):
        assert rmse_of_values([], []) == 0.0


class TestRegularizedLoss:
    def test_equals_squared_error_plus_penalty(self, model_and_tensor, rng):
        tensor, core, factors = model_and_tensor
        noisy = tensor.with_values(tensor.values + rng.normal(0, 0.1, tensor.nnz))
        lam = 0.3
        loss = regularized_loss(noisy, core, factors, lam)
        squared = reconstruction_error(noisy, core, factors) ** 2
        penalty = lam * sum(np.sum(f**2) for f in factors)
        assert loss == pytest.approx(squared + penalty)

    def test_zero_regularization(self, model_and_tensor):
        tensor, core, factors = model_and_tensor
        assert regularized_loss(tensor, core, factors, 0.0) == pytest.approx(0.0, abs=1e-9)
