"""Tests for the intermediate-data memory model and runtime tracker."""

import numpy as np
import pytest

from repro.exceptions import OutOfMemoryError
from repro.metrics import BYTES_PER_FLOAT, MemoryModel, MemoryTracker, TensorAttributes


@pytest.fixture
def attrs():
    return TensorAttributes(shape=(1000, 1000, 1000), ranks=(10, 10, 10), nnz=100_000)


class TestMemoryModel:
    def test_p_tucker_smallest(self, attrs):
        """Table III: P-Tucker has the smallest intermediate data of all methods."""
        model = MemoryModel(threads=4)
        p_tucker = model.p_tucker(attrs)
        for other in (
            model.p_tucker_cache(attrs),
            model.tucker_als(attrs),
            model.tucker_wopt(attrs),
            model.tucker_csf(attrs),
        ):
            assert p_tucker < other

    def test_p_tucker_scales_with_threads(self, attrs):
        assert MemoryModel(threads=8).p_tucker(attrs) == pytest.approx(
            8 * MemoryModel(threads=1).p_tucker(attrs)
        )

    def test_cache_scales_with_nnz(self):
        small = TensorAttributes((100, 100, 100), (5, 5, 5), nnz=1000)
        large = TensorAttributes((100, 100, 100), (5, 5, 5), nnz=10_000)
        model = MemoryModel()
        assert model.p_tucker_cache(large) == pytest.approx(
            10 * model.p_tucker_cache(small)
        )

    def test_wopt_grows_with_dimensionality_power(self):
        model = MemoryModel()
        small = TensorAttributes((100, 100, 100), (5, 5, 5), nnz=1000)
        large = TensorAttributes((1000, 1000, 1000), (5, 5, 5), nnz=1000)
        assert model.tucker_wopt(large) == pytest.approx(
            100 * model.tucker_wopt(small)
        )

    def test_s_hot_independent_of_dimensionality(self):
        model = MemoryModel()
        small = TensorAttributes((100, 100, 100), (5, 5, 5), nnz=1000)
        large = TensorAttributes((10**6,) * 3, (5, 5, 5), nnz=1000)
        assert model.s_hot(small) == pytest.approx(model.s_hot(large))

    def test_estimate_dispatch_and_aliases(self, attrs):
        model = MemoryModel()
        assert model.estimate("P-Tucker", attrs) == model.p_tucker(attrs)
        assert model.estimate("s-hotscan", attrs) == model.s_hot(attrs)
        assert model.estimate("HOOI", attrs) == model.tucker_als(attrs)

    def test_estimate_unknown_algorithm(self, attrs):
        with pytest.raises(KeyError):
            MemoryModel().estimate("magic", attrs)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            MemoryModel(threads=0)


class TestMemoryTracker:
    def test_peak_tracks_high_watermark(self):
        tracker = MemoryTracker()
        tracker.allocate(100)
        tracker.allocate(50)
        tracker.release(100)
        tracker.allocate(20)
        assert tracker.peak_bytes == 150
        assert tracker.current_bytes == 70

    def test_budget_enforced(self):
        tracker = MemoryTracker(budget_bytes=100)
        tracker.allocate(80)
        with pytest.raises(OutOfMemoryError) as excinfo:
            tracker.allocate(50, what="cache")
        assert excinfo.value.budget_bytes == 100
        assert "cache" in str(excinfo.value)

    def test_allocate_array_uses_float64(self):
        tracker = MemoryTracker()
        tracker.allocate_array((10, 10))
        assert tracker.peak_bytes == 100 * BYTES_PER_FLOAT

    def test_release_never_goes_negative(self):
        tracker = MemoryTracker()
        tracker.allocate(10)
        tracker.release(100)
        assert tracker.current_bytes == 0

    def test_release_all(self):
        tracker = MemoryTracker()
        tracker.allocate(10, "a")
        tracker.allocate(20, "b")
        tracker.release_all()
        assert tracker.current_bytes == 0
        assert tracker.allocations == {}

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().allocate(-5)

    def test_peak_megabytes(self):
        tracker = MemoryTracker()
        tracker.allocate(2 * 1024 * 1024)
        assert tracker.peak_megabytes == pytest.approx(2.0)

    def test_allocations_by_label(self):
        tracker = MemoryTracker()
        tracker.allocate(10, "delta")
        tracker.allocate(5, "delta")
        tracker.release(3, "delta")
        assert tracker.allocations["delta"] == 12
