"""Tests for the timing helpers."""

import math
import time

import numpy as np
import pytest

from repro.metrics import (
    Counters,
    IterationTimer,
    LatencyWindow,
    Stopwatch,
    percentile,
)


class TestStopwatch:
    def test_accumulates_by_label(self):
        watch = Stopwatch()
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("b"):
            pass
        assert watch.counts["a"] == 2
        assert watch.durations["a"] >= 0.02
        assert watch.total() >= watch.durations["a"]

    def test_mean_unknown_label_is_zero(self):
        assert Stopwatch().mean("missing") == 0.0

    def test_mean(self):
        watch = Stopwatch()
        with watch.measure("x"):
            time.sleep(0.01)
        assert watch.mean("x") == pytest.approx(watch.durations["x"])

    def test_records_time_even_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure("boom"):
                raise RuntimeError("fail")
        assert watch.counts["boom"] == 1


class TestIterationTimer:
    def test_mean_and_total(self):
        timer = IterationTimer()
        for _ in range(3):
            with timer.iteration():
                time.sleep(0.005)
        assert len(timer.seconds) == 3
        assert timer.total_seconds >= 0.015
        assert timer.mean_seconds == pytest.approx(timer.total_seconds / 3)

    def test_empty_timer(self):
        timer = IterationTimer()
        assert timer.mean_seconds == 0.0
        assert timer.total_seconds == 0.0


class TestCounters:
    def test_add_and_get(self):
        counters = Counters()
        counters.add("hits")
        counters.add("hits", 4)
        assert counters.get("hits") == 5
        assert counters.get("never") == 0

    def test_ratio(self):
        counters = Counters()
        counters.add("hit", 3)
        counters.add("total", 4)
        assert counters.ratio("hit", "total") == 0.75
        assert counters.ratio("hit", "missing") == 0.0

    def test_snapshot_is_a_copy(self):
        counters = Counters()
        counters.add("x")
        snapshot = counters.snapshot()
        snapshot["x"] = 99
        assert counters.get("x") == 1


class TestPercentile:
    def test_matches_numpy_linear_method(self):
        rng = np.random.default_rng(0)
        values = sorted(rng.standard_normal(137).tolist())
        for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert percentile(values, fraction) == pytest.approx(
                float(np.percentile(values, fraction * 100))
            )

    def test_single_element(self):
        assert percentile([3.5], 0.99) == 3.5

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_fraction_is_clamped(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, -1.0) == 1.0
        assert percentile(values, 2.0) == 3.0


class TestLatencyWindow:
    def test_snapshot_summarises_samples(self):
        window = LatencyWindow()
        for ms in (1.0, 2.0, 3.0, 4.0):
            window.record(ms / 1e3)
        snapshot = window.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["window"] == 4
        assert snapshot["mean_ms"] == pytest.approx(2.5)
        assert snapshot["p50_ms"] == pytest.approx(2.5)
        assert snapshot["max_ms"] == pytest.approx(4.0)

    def test_window_is_bounded_but_count_is_total(self):
        window = LatencyWindow(maxlen=8)
        for _ in range(20):
            window.record(0.001)
        snapshot = window.snapshot()
        assert snapshot["count"] == 20
        assert snapshot["window"] == 8

    def test_measure_records_elapsed_time(self):
        window = LatencyWindow()
        with window.measure():
            time.sleep(0.005)
        snapshot = window.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["p50_ms"] >= 5.0

    def test_empty_snapshot_is_nan(self):
        snapshot = LatencyWindow().snapshot()
        assert snapshot["count"] == 0
        assert math.isnan(snapshot["mean_ms"])
        assert math.isnan(snapshot["p50_ms"])
