"""Tests for the timing helpers."""

import time

import pytest

from repro.metrics import IterationTimer, Stopwatch


class TestStopwatch:
    def test_accumulates_by_label(self):
        watch = Stopwatch()
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("b"):
            pass
        assert watch.counts["a"] == 2
        assert watch.durations["a"] >= 0.02
        assert watch.total() >= watch.durations["a"]

    def test_mean_unknown_label_is_zero(self):
        assert Stopwatch().mean("missing") == 0.0

    def test_mean(self):
        watch = Stopwatch()
        with watch.measure("x"):
            time.sleep(0.01)
        assert watch.mean("x") == pytest.approx(watch.durations["x"])

    def test_records_time_even_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure("boom"):
                raise RuntimeError("fail")
        assert watch.counts["boom"] == 1


class TestIterationTimer:
    def test_mean_and_total(self):
        timer = IterationTimer()
        for _ in range(3):
            with timer.iteration():
                time.sleep(0.005)
        assert len(timer.seconds) == 3
        assert timer.total_seconds >= 0.015
        assert timer.mean_seconds == pytest.approx(timer.total_seconds / 3)

    def test_empty_timer(self):
        timer = IterationTimer()
        assert timer.mean_seconds == 0.0
        assert timer.total_seconds == 0.0
