"""Tests for crash-safe checkpoint/resume of P-Tucker fits."""

import os

import numpy as np
import pytest

from faultinject import FaultInjector
from repro.cli import main
from repro.core import PTucker, PTuckerConfig
from repro.core.trace import ConvergenceTrace, IterationRecord
from repro.exceptions import DataFormatError, ShapeError
from repro.resilience import CheckpointManager, fit_state_digest, resume_state
from repro.tensor import save_text


def _fit(tensor, **overrides):
    settings = dict(ranks=(3, 3, 3), max_iterations=6, tolerance=0.0, seed=0)
    settings.update(overrides)
    return PTucker(PTuckerConfig(**settings)).fit(tensor)


def _assert_models_bitwise_equal(result, reference):
    assert result.core.tobytes() == reference.core.tobytes()
    for mine, theirs in zip(result.factors, reference.factors):
        assert mine.tobytes() == theirs.tobytes()


def _sample_trace() -> ConvergenceTrace:
    trace = ConvergenceTrace()
    trace.add(
        IterationRecord(
            iteration=1,
            reconstruction_error=0.5,
            loss=1.25,
            seconds=0.01,
            core_nnz=27,
        )
    )
    return trace


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path, rng):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        factors = [rng.standard_normal((5, 3)) for _ in range(3)]
        core = rng.standard_normal((3, 3, 3))
        trace = _sample_trace()
        manager.save(1, factors, core, trace, config_digest="abc123")

        state = manager.load_latest()
        assert state is not None
        assert state.iteration == 1
        assert state.config_digest == "abc123"
        assert state.core.tobytes() == core.tobytes()
        for mine, theirs in zip(state.factors, factors):
            assert mine.tobytes() == theirs.tobytes()
        assert len(state.trace.records) == 1
        assert state.trace.records[0].reconstruction_error == 0.5
        assert not state.trace.converged

    def test_due_cadence_and_final_override(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), every=3)
        assert [i for i in range(1, 8) if manager.due(i)] == [3, 6]
        assert manager.due(5, final=True)

    def test_partial_checkpoint_without_manifest_is_invisible(
        self, tmp_path, rng
    ):
        """A crash mid-save leaves no manifest; resume must not see it."""
        manager = CheckpointManager(str(tmp_path))
        factors = [rng.standard_normal((4, 2)) for _ in range(3)]
        core = rng.standard_normal((2, 2, 2))
        manager.save(1, factors, core, _sample_trace(), "d")
        partial = manager.iter_dir(2)
        os.makedirs(partial)
        np.save(os.path.join(partial, "factor0.npy"), factors[0])
        assert manager.iterations() == [1]
        assert manager.load_latest().iteration == 1

    def test_corruption_names_file_and_fallback(self, tmp_path, rng):
        manager = CheckpointManager(str(tmp_path))
        factors = [rng.standard_normal((4, 2)) for _ in range(3)]
        core = rng.standard_normal((2, 2, 2))
        for iteration in (1, 2):
            manager.save(iteration, factors, core, _sample_trace(), "d")
        bad = os.path.join(manager.iter_dir(2), "core.npy")
        FaultInjector(seed=5).bit_flip(bad)
        with pytest.raises(DataFormatError) as excinfo:
            manager.load(2)
        message = str(excinfo.value)
        assert bad in message
        assert "last valid checkpoint is iteration 1" in message
        assert manager.iter_dir(1) in message
        # The earlier checkpoint is intact and still loads.
        assert manager.load(1).iteration == 1

    def test_truncation_diagnosed_before_numpy_parses(self, tmp_path, rng):
        manager = CheckpointManager(str(tmp_path))
        factors = [rng.standard_normal((4, 2)) for _ in range(3)]
        manager.save(
            1, factors, rng.standard_normal((2, 2, 2)), _sample_trace(), "d"
        )
        bad = os.path.join(manager.iter_dir(1), "factor1.npy")
        FaultInjector().truncate(bad)
        with pytest.raises(DataFormatError) as excinfo:
            manager.load(1)
        message = str(excinfo.value)
        assert bad in message
        assert "truncated" in message
        assert "no earlier valid checkpoint exists" in message

    def test_digest_mismatch_refuses_resume(self, tmp_path, rng):
        manager = CheckpointManager(str(tmp_path))
        factors = [rng.standard_normal((4, 2)) for _ in range(3)]
        manager.save(
            3, factors, rng.standard_normal((2, 2, 2)), _sample_trace(), "aaa"
        )
        with pytest.raises(DataFormatError, match="config digest"):
            resume_state(manager, resume=True, config_digest="bbb")

    def test_resume_off_or_empty_returns_none(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "never-created"))
        assert resume_state(None, True, "d") is None
        assert resume_state(manager, False, "d") is None
        assert resume_state(manager, True, "d") is None

    def test_fit_state_digest_separates_trajectories(self):
        base = dict(
            shape=(4, 4, 4),
            nnz=10,
            ranks=(2, 2, 2),
            regularization=0.01,
            seed=0,
            orthogonalize=False,
            backend="numpy",
            block_size=100_000,
        )
        digest = fit_state_digest(**base)
        assert digest == fit_state_digest(**base)
        assert digest != fit_state_digest(**{**base, "seed": 1})
        assert digest != fit_state_digest(**{**base, "regularization": 0.02})
        assert digest != fit_state_digest(**{**base, "ranks": (3, 2, 2)})


class TestFitResume:
    def test_resume_is_bitwise_identical_to_uninterrupted(
        self, planted_small, tmp_path
    ):
        tensor = planted_small.tensor
        reference = _fit(tensor)

        ckpt = str(tmp_path / "ckpt")
        _fit(tensor, max_iterations=3, checkpoint_dir=ckpt)
        # Canary: resume must re-enter at iteration 4, leaving the early
        # checkpoints untouched (a from-scratch refit would rewrite them).
        canary = os.path.join(ckpt, "iter0000001", "canary")
        open(canary, "w").close()

        resumed = _fit(tensor, checkpoint_dir=ckpt, resume=True)
        _assert_models_bitwise_equal(resumed, reference)
        assert os.path.exists(canary)
        assert len(resumed.trace.records) == 6
        assert CheckpointManager(ckpt).latest_iteration() == 6

    def test_resume_of_finished_fit_is_a_no_op(self, planted_small, tmp_path):
        tensor = planted_small.tensor
        ckpt = str(tmp_path / "ckpt")
        reference = _fit(tensor, checkpoint_dir=ckpt)
        again = _fit(tensor, checkpoint_dir=ckpt, resume=True)
        _assert_models_bitwise_equal(again, reference)
        assert len(again.trace.records) == 6

    def test_resume_after_convergence_keeps_verdict(
        self, planted_small, tmp_path
    ):
        """A checkpoint that already recorded convergence stops immediately."""
        tensor = planted_small.tensor
        ckpt = str(tmp_path / "ckpt")
        first = _fit(tensor, checkpoint_dir=ckpt, tolerance=0.5)
        assert first.trace.converged
        again = _fit(
            tensor, checkpoint_dir=ckpt, resume=True, tolerance=0.5
        )
        _assert_models_bitwise_equal(again, first)
        assert again.trace.converged
        assert len(again.trace.records) == len(first.trace.records)

    def test_checkpoint_every_cadence(self, planted_small, tmp_path):
        tensor = planted_small.tensor
        ckpt = str(tmp_path / "ckpt")
        _fit(tensor, max_iterations=5, checkpoint_dir=ckpt, checkpoint_every=2)
        # Every 2nd iteration plus the forced final one.
        assert CheckpointManager(ckpt).iterations() == [2, 4, 5]

    def test_sharded_fit_resume_is_bitwise_identical(
        self, planted_small, tmp_path
    ):
        tensor = planted_small.tensor
        reference = _fit(tensor, shard_dir=str(tmp_path / "shards-ref"))
        ckpt = str(tmp_path / "ckpt")
        shards = str(tmp_path / "shards")
        _fit(
            tensor, max_iterations=2, shard_dir=shards, checkpoint_dir=ckpt
        )
        resumed = _fit(
            tensor, shard_dir=shards, checkpoint_dir=ckpt, resume=True
        )
        _assert_models_bitwise_equal(resumed, reference)

    def test_config_validation(self):
        with pytest.raises(ShapeError, match="checkpoint_every"):
            PTuckerConfig(ranks=(2, 2, 2), checkpoint_every=0)
        with pytest.raises(ShapeError, match="resume"):
            PTuckerConfig(ranks=(2, 2, 2), resume=True)


class TestCliResume:
    @pytest.fixture
    def tensor_file(self, tmp_path, planted_small):
        path = tmp_path / "tensor.tns"
        save_text(planted_small.tensor, path)
        return str(path)

    def test_cli_resume_matches_uninterrupted_run(
        self, tensor_file, tmp_path, capsys
    ):
        from repro.cli import load_model

        common = [
            "fit", tensor_file, "--ranks", "3", "3", "3",
            "--max-iterations", "4", "--tolerance", "0",
        ]
        ref_prefix = str(tmp_path / "ref")
        assert main(common + ["--output", ref_prefix]) == 0

        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["fit", tensor_file, "--ranks", "3", "3", "3",
             "--max-iterations", "2", "--tolerance", "0",
             "--checkpoint-dir", ckpt]
        ) == 0
        resumed_prefix = str(tmp_path / "resumed")
        assert main(
            common
            + ["--checkpoint-dir", ckpt, "--resume", "--output", resumed_prefix]
        ) == 0
        capsys.readouterr()
        reference = load_model(ref_prefix + ".npz")
        resumed = load_model(resumed_prefix + ".npz")
        assert resumed.core.tobytes() == reference.core.tobytes()
        for mine, theirs in zip(resumed.factors, reference.factors):
            assert mine.tobytes() == theirs.tobytes()

    def test_cli_resume_from_corrupt_checkpoint_exits_2(
        self, tensor_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["fit", tensor_file, "--ranks", "3", "3", "3",
             "--max-iterations", "3", "--tolerance", "0",
             "--checkpoint-dir", ckpt]
        ) == 0
        bad = os.path.join(ckpt, "iter0000003", "core.npy")
        FaultInjector(seed=1).truncate(bad)
        capsys.readouterr()
        code = main(
            ["fit", tensor_file, "--ranks", "3", "3", "3",
             "--max-iterations", "3", "--tolerance", "0",
             "--checkpoint-dir", ckpt, "--resume"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert bad in err
        assert "last valid checkpoint is iteration 2" in err

    def test_cli_resume_requires_checkpoint_dir(self, tensor_file, capsys):
        code = main(
            ["fit", tensor_file, "--ranks", "3", "3", "3", "--resume"]
        )
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_cli_checkpoint_rejects_other_algorithms(
        self, tensor_file, tmp_path, capsys
    ):
        code = main(
            ["fit", tensor_file, "--ranks", "3", "--algorithm", "s-hot",
             "--checkpoint-dir", str(tmp_path / "ckpt")]
        )
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err
