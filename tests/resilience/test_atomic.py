"""Tests for the atomic write helpers (write-tmp, fsync, rename)."""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.resilience import (
    atomic_open,
    atomic_save_array,
    atomic_write_bytes,
    atomic_write_json,
    is_tmp_path,
    sha256_file,
    tmp_path_for,
)


def _no_tmp_leftovers(directory) -> bool:
    return not any(is_tmp_path(name) for name in os.listdir(directory))


class TestAtomicOpen:
    def test_successful_write_lands_at_final_path(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_open(str(target)) as handle:
            handle.write(b"payload")
        assert target.read_bytes() == b"payload"
        assert _no_tmp_leftovers(tmp_path)

    def test_exception_leaves_no_file_and_no_tmp(self, tmp_path):
        target = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with atomic_open(str(target)) as handle:
                handle.write(b"half-written")
                raise RuntimeError("crash mid-write")
        assert not target.exists()
        assert _no_tmp_leftovers(tmp_path)

    def test_exception_preserves_previous_content(self, tmp_path):
        """A failed rewrite leaves the complete old file, never a torn one."""
        target = tmp_path / "out.bin"
        target.write_bytes(b"old complete content")
        with pytest.raises(RuntimeError):
            with atomic_open(str(target)) as handle:
                handle.write(b"new")
                raise RuntimeError("crash mid-rewrite")
        assert target.read_bytes() == b"old complete content"
        assert _no_tmp_leftovers(tmp_path)


class TestHelpers:
    def test_tmp_path_round_trip(self, tmp_path):
        path = str(tmp_path / "file.npy")
        tmp = tmp_path_for(path)
        assert tmp.startswith(path)
        assert is_tmp_path(tmp)
        assert not is_tmp_path(path)

    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(str(target), b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"
        assert _no_tmp_leftovers(tmp_path)

    def test_atomic_write_json_byte_format(self, tmp_path):
        """The JSON byte format matches the historical manifest writer."""
        payload = {"b": [1, 2], "a": "x"}
        target = tmp_path / "manifest.json"
        atomic_write_json(str(target), payload)
        expected = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert target.read_text() == expected

    def test_atomic_save_array_round_trip(self, tmp_path):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        target = tmp_path / "array.npy"
        atomic_save_array(str(target), array)
        np.testing.assert_array_equal(
            np.load(str(target), allow_pickle=False), array
        )
        assert _no_tmp_leftovers(tmp_path)

    def test_sha256_file_matches_hashlib(self, tmp_path):
        target = tmp_path / "data"
        content = os.urandom(70_000)  # spans multiple read blocks
        target.write_bytes(content)
        assert sha256_file(str(target)) == hashlib.sha256(content).hexdigest()
