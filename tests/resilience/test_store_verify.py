"""Tests for shard-store file verification and crash-safe builds."""

import logging
import os

import numpy as np
import pytest

from faultinject import FaultInjector
from repro.cli import main
from repro.exceptions import DataFormatError
from repro.shards import ShardStore
from repro.tensor import save_text
from repro.tensor.io import open_entry_reader, save_shards


@pytest.fixture
def store_dir(tmp_path, planted_small):
    directory = str(tmp_path / "store")
    ShardStore.build(planted_small.tensor, directory, shard_nnz=400)
    return directory


@pytest.fixture
def tensor_file(tmp_path, planted_small):
    path = tmp_path / "tensor.tns"
    save_text(planted_small.tensor, path)
    return str(path)


class TestVerifyFiles:
    def test_intact_store_passes(self, store_dir):
        store = ShardStore.open(store_dir)
        store.verify_files()
        store.validate()

    def test_truncated_values_file_is_named(self, store_dir):
        store = ShardStore.open(store_dir)
        shard = store.mode_shards(0)[0]
        bad = os.path.join(store_dir, shard.values_path)
        FaultInjector().truncate(bad)
        with pytest.raises(DataFormatError) as excinfo:
            store.verify_files()
        assert bad in str(excinfo.value)
        assert "truncated" in str(excinfo.value)

    def test_missing_column_file_is_named(self, store_dir):
        store = ShardStore.open(store_dir)
        shard = store.mode_shards(1)[0]
        bad = os.path.join(store_dir, shard.column_paths[0])
        os.remove(bad)
        with pytest.raises(DataFormatError) as excinfo:
            store.verify_files()
        assert bad in str(excinfo.value)
        assert "missing" in str(excinfo.value)

    def test_wrong_dtype_is_named(self, store_dir):
        store = ShardStore.open(store_dir)
        shard = store.mode_shards(0)[0]
        bad = os.path.join(store_dir, shard.values_path)
        np.save(bad, np.zeros(shard.nnz, dtype=np.float32))
        with pytest.raises(DataFormatError, match="header dtype"):
            store.verify_files()

    def test_wrong_shape_is_named(self, store_dir):
        store = ShardStore.open(store_dir)
        shard = store.mode_shards(0)[0]
        bad = os.path.join(store_dir, shard.values_path)
        np.save(bad, np.zeros(shard.nnz + 7, dtype=np.float64))
        with pytest.raises(DataFormatError, match="header shape"):
            store.verify_files()

    def test_corrupt_segmentation_array_is_named(self, store_dir):
        store = ShardStore.open(store_dir)
        bad = os.path.join(store_dir, "mode0", "row_ids.npy")
        np.save(bad, np.zeros(3, dtype=np.float64))
        with pytest.raises(DataFormatError, match="segmentation"):
            store.verify_files()


class TestShardsVerifyCommand:
    def test_intact_store_exits_0(self, store_dir, capsys):
        assert main(["shards-verify", store_dir]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "observed entries" in out

    def test_quick_mode_exits_0(self, store_dir, capsys):
        assert main(["shards-verify", store_dir, "--quick"]) == 0
        assert "file headers OK" in capsys.readouterr().out

    def test_corrupt_store_exits_2_naming_the_file(self, store_dir, capsys):
        store = ShardStore.open(store_dir)
        bad = os.path.join(store_dir, store.mode_shards(0)[0].values_path)
        FaultInjector().truncate(bad)
        assert main(["shards-verify", store_dir]) == 2
        assert bad in capsys.readouterr().err

    def test_bit_flip_caught_by_full_validation(self, store_dir, capsys):
        """Data-level damage passes the header check but fails validate()."""
        store = ShardStore.open(store_dir)
        shard = store.mode_shards(0)[0]
        bad = os.path.join(store_dir, shard.column_paths[0])
        # Flip the high bit of the sorted mode column's last element: the
        # file size and header stay intact (--quick passes) but the row
        # range no longer matches the manifest.
        FaultInjector(seed=9).bit_flip(
            bad, offset=os.path.getsize(bad) - 1, bit=7
        )
        assert main(["shards-verify", store_dir, "--quick"]) == 0
        capsys.readouterr()
        assert main(["shards-verify", store_dir]) == 2

    def test_fit_shards_runs_the_check_before_sweeping(
        self, store_dir, tensor_file, capsys
    ):
        store = ShardStore.open(store_dir)
        bad = os.path.join(store_dir, store.mode_shards(2)[0].values_path)
        FaultInjector().truncate(bad)
        code = main(
            ["fit", tensor_file, "--ranks", "3", "3", "3",
             "--max-iterations", "2", "--shards", store_dir,
             "--shard-nnz", "400"]
        )
        assert code == 2
        assert bad in capsys.readouterr().err


class TestCrashSafeBuilds:
    def test_crashed_rebuild_leaves_no_openable_store(
        self, store_dir, planted_small, monkeypatch
    ):
        """Manifest retirement first, manifest write last: a rebuild that
        dies in between leaves a directory ``open`` refuses — never one
        that opens but holds mixed old/new data."""

        def boom(directory, manifest):
            raise RuntimeError("injected crash before the commit point")

        monkeypatch.setattr("repro.shards.store._write_manifest", boom)
        with pytest.raises(RuntimeError, match="injected crash"):
            ShardStore.build(planted_small.tensor, store_dir, shard_nnz=200)
        with pytest.raises(DataFormatError):
            ShardStore.open(store_dir)

    def test_stale_ingest_tmp_is_detected_and_cleaned(
        self, tmp_path, tensor_file, caplog
    ):
        directory = str(tmp_path / "store")
        tmp = os.path.join(directory, ".ingest-tmp", "mode0")
        os.makedirs(tmp)
        with open(os.path.join(tmp, "run000000.col0.npy"), "wb") as handle:
            handle.write(b"stale spill junk")
        with caplog.at_level(logging.WARNING, logger="repro.shards.merge"):
            store = save_shards(
                None,
                directory,
                shard_nnz=300,
                source=open_entry_reader(tensor_file),
                chunk_nnz=200,
            )
        assert "interrupted streaming build" in caplog.text
        assert not os.path.isdir(os.path.join(directory, ".ingest-tmp"))
        store.validate()

    def test_stale_tmp_next_to_manifest_is_also_cleaned(
        self, store_dir, tensor_file, caplog
    ):
        os.makedirs(os.path.join(store_dir, ".ingest-tmp", "mode1"))
        with caplog.at_level(logging.WARNING, logger="repro.shards.merge"):
            store = save_shards(
                None,
                store_dir,
                shard_nnz=300,
                source=open_entry_reader(tensor_file),
                chunk_nnz=200,
            )
        assert "stale" in caplog.text
        assert not os.path.isdir(os.path.join(store_dir, ".ingest-tmp"))
        store.validate()
