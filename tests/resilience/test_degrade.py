"""Tests for graceful numba→numpy degradation on call-time JIT failure."""

import warnings

import numpy as np
import pytest

from repro.kernels.backends.base import NumpyBackend
from repro.kernels.backends.degrade import JitCallGuard


class TestJitCallGuard:
    def test_first_failure_warns_once_then_stays_silent(self):
        guard = JitCallGuard("numba")
        assert not guard.failed
        with pytest.warns(RuntimeWarning, match="degrading to the numpy"):
            guard.note_failure(RuntimeError("LLVM exploded"))
        assert guard.failed
        assert isinstance(guard.last_error, RuntimeError)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            guard.note_failure(RuntimeError("again"))

    def test_fallback_is_a_cached_numpy_backend(self):
        guard = JitCallGuard("numba")
        fallback = guard.fallback()
        assert isinstance(fallback, NumpyBackend)
        assert guard.fallback() is fallback


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
class TestNumbaDegrade:
    """Integration: a jitted kernel raising at call time degrades to numpy
    with identical results (runs only where numba is installed)."""

    @pytest.fixture
    def backend_module(self, monkeypatch):
        pytest.importorskip("numba")
        from repro.kernels.backends import numba_backend as module

        monkeypatch.setattr(module, "_JIT_GUARD", JitCallGuard("numba"))
        return module

    @pytest.fixture
    def problem(self, planted_small):
        from repro.core.core_tensor import initialize_core, initialize_factors
        from repro.core.row_update import build_mode_context

        tensor = planted_small.tensor
        factors = initialize_factors(
            tensor.shape, (3, 3, 3), np.random.default_rng(0)
        )
        core = initialize_core((3, 3, 3), np.random.default_rng(1))
        context = build_mode_context(tensor, 0)
        return tensor, factors, core, context

    def _kernel_inputs(self, context):
        return (
            context.sorted_indices,
            context.sorted_values,
            context.row_starts,
        )

    def test_call_time_failure_degrades_bitwise_identically(
        self, backend_module, problem, monkeypatch
    ):
        tensor, factors, core, context = problem

        def boom(*args, **kwargs):
            raise RuntimeError("injected JIT failure")

        monkeypatch.setattr(backend_module, "_fused_normal_equations", boom)
        monkeypatch.setattr(
            backend_module, "_fused_normal_equations_gathered", boom
        )
        backend = backend_module.NumbaBackend()
        indices, values, starts = self._kernel_inputs(context)
        with pytest.warns(RuntimeWarning, match="degrading to the numpy"):
            kernel = backend.make_normal_equations_kernel(
                factors, core, 0, indices.shape[0]
            )
            b_matrices, c_vectors = kernel(indices, values, starts)

        reference_kernel = NumpyBackend().make_normal_equations_kernel(
            factors, core, 0, indices.shape[0]
        )
        b_ref, c_ref = reference_kernel(indices, values, starts)
        assert b_matrices.tobytes() == b_ref.tobytes()
        assert c_vectors.tobytes() == c_ref.tobytes()
        assert backend_module._JIT_GUARD.failed

    def test_later_kernels_skip_the_jit_entirely(
        self, backend_module, problem, monkeypatch
    ):
        tensor, factors, core, context = problem
        backend_module._JIT_GUARD.note_failure(RuntimeError("earlier"))
        backend = backend_module.NumbaBackend()
        indices, values, starts = self._kernel_inputs(context)
        kernel = backend.make_normal_equations_kernel(
            factors, core, 0, indices.shape[0]
        )
        reference_kernel = NumpyBackend().make_normal_equations_kernel(
            factors, core, 0, indices.shape[0]
        )
        b_matrices, c_vectors = kernel(indices, values, starts)
        b_ref, c_ref = reference_kernel(indices, values, starts)
        assert b_matrices.tobytes() == b_ref.tobytes()
        assert c_vectors.tobytes() == c_ref.tobytes()

    def test_delta_contraction_degrades_too(
        self, backend_module, problem, monkeypatch
    ):
        tensor, factors, core, context = problem

        def boom(*args, **kwargs):
            raise RuntimeError("injected JIT failure")

        monkeypatch.setattr(backend_module, "_delta_block", boom)
        monkeypatch.setattr(backend_module, "_delta_block_gathered", boom)
        backend = backend_module.NumbaBackend()
        block = context.sorted_indices[:50]
        with pytest.warns(RuntimeWarning, match="degrading to the numpy"):
            deltas = backend.contract_delta_block(block, factors, core, 0)
        reference = NumpyBackend().contract_delta_block(
            block, factors, core, 0
        )
        assert deltas.tobytes() == reference.tobytes()
