"""Tests for the shared retry machinery (deadlines, backoff, driver)."""

import pytest

from repro.resilience import (
    BackoffPolicy,
    Deadline,
    RetryExhaustedError,
    decorrelated_jitter,
    retry,
)


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.none()
        assert deadline.remaining() is None
        assert not deadline.expired
        assert deadline.clamp(3.5) == 3.5

    def test_after_counts_down(self):
        deadline = Deadline.after(60.0)
        remaining = deadline.remaining()
        assert 0.0 < remaining <= 60.0
        assert not deadline.expired

    def test_expired_deadline(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        assert deadline.clamp(10.0) == 0.0

    def test_clamp_bounds_interval_by_budget(self):
        deadline = Deadline.after(0.5)
        assert deadline.clamp(10.0) <= 0.5
        assert deadline.clamp(0.0) == 0.0

    def test_clamp_never_negative(self):
        assert Deadline.after(1.0).clamp(-5.0) == 0.0
        assert Deadline.none().clamp(-5.0) == 0.0


class TestBackoffPolicy:
    def test_deterministic_schedule_without_jitter(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, multiplier=2.0, jitter="none")
        assert [policy.next_delay() for _ in range(5)] == [
            0.1, 0.2, 0.4, 0.8, 1.0  # exponential, clamped at the cap
        ]

    def test_reset_restarts_from_base(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, multiplier=2.0, jitter="none")
        policy.next_delay(), policy.next_delay()
        policy.reset()
        assert policy.next_delay() == 0.1

    def test_jittered_delays_stay_in_bounds(self):
        policy = BackoffPolicy(base=0.05, cap=2.0, seed=7)
        previous = policy.base
        for _ in range(50):
            delay = policy.next_delay()
            assert 0.05 <= delay <= 2.0
            previous = delay

    def test_seed_makes_jitter_reproducible(self):
        a = BackoffPolicy(seed=3)
        b = BackoffPolicy(seed=3)
        assert [a.next_delay() for _ in range(8)] == [
            b.next_delay() for _ in range(8)
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"base": -1.0},
            {"base": 2.0, "cap": 1.0},
            {"jitter": "gaussian"},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_decorrelated_jitter_respects_cap(self):
        import random

        rng = random.Random(0)
        for _ in range(100):
            assert decorrelated_jitter(0.1, 1.5, 40.0, rng) <= 1.5


class TestRetry:
    def test_success_needs_no_retry(self):
        calls = []

        def fn():
            calls.append(1)
            return "ok"

        assert retry(fn, attempts=3, sleep=lambda s: None) == "ok"
        assert len(calls) == 1

    def test_succeeds_after_transient_failures(self):
        state = {"failures": 2}
        slept = []

        def fn():
            if state["failures"]:
                state["failures"] -= 1
                raise OSError("transient")
            return 42

        result = retry(
            fn,
            attempts=5,
            backoff=BackoffPolicy(base=0.01, cap=0.02, jitter="none"),
            sleep=slept.append,
        )
        assert result == 42
        assert len(slept) == 2  # one sleep per failed attempt

    def test_exhaustion_reraises_last_exception(self):
        def fn():
            raise OSError("always")

        with pytest.raises(OSError, match="always"):
            retry(fn, attempts=3, sleep=lambda s: None)

    def test_non_matching_exception_propagates_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise KeyError("deterministic bug")

        with pytest.raises(KeyError):
            retry(fn, attempts=5, retry_on=(OSError,), sleep=lambda s: None)
        assert len(calls) == 1

    def test_expired_deadline_stops_between_attempts(self):
        def fn():
            raise OSError("transient")

        with pytest.raises(RetryExhaustedError, match="deadline expired"):
            retry(
                fn,
                attempts=100,
                deadline=Deadline.after(0.0),
                sleep=lambda s: None,
            )

    def test_on_retry_observes_each_failure(self):
        seen = []
        state = {"failures": 2}

        def fn():
            if state["failures"]:
                state["failures"] -= 1
                raise OSError("boom")
            return "done"

        retry(
            fn,
            attempts=5,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
            sleep=lambda s: None,
        )
        assert seen == [(1, "boom"), (2, "boom")]

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            retry(lambda: None, attempts=0)
