"""Fault-injection utilities driving the resilience and chaos tests.

:class:`FaultInjector` produces the three fault families the test suite
exercises deliberately:

* **process death** — spawn a real child CLI fit and SIGKILL it the
  moment an observable on-disk condition holds (a checkpoint manifest
  landing, a scratch directory appearing), which is exactly the abrupt
  stop an OOM-kill or power loss produces: no exception handlers, no
  ``atexit``, no flushes;
* **file corruption** — truncate or bit-flip a chosen artifact after the
  fact, simulating torn writes and silent media decay;
* **worker death** — an environment recipe for the
  ``REPRO_INJECT_WORKER_DEATH`` die-once hook of
  :mod:`repro.parallel.executor`.

Randomised choices (which iteration to kill at, which byte to flip) come
from a seeded generator so every chaos run is reproducible.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import time
from typing import Callable, Optional, Sequence

import numpy as np

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: Child script for a deterministic mid-build crash: run a streaming shard
#: build whose entry source SIGKILLs the process after N chunks, leaving a
#: stale ``.ingest-tmp`` and no manifest — the interrupted-build state the
#: next build must detect and clean.
_KILLED_BUILD_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys
    tensor_path, out_dir, die_after, chunk_nnz, shard_nnz = sys.argv[1:6]
    from repro.tensor.io import open_entry_reader
    from repro.shards.merge import streaming_build

    class DieAfterChunks:
        def __init__(self, reader, n):
            self._reader = reader
            self._n = n
            self.shape = getattr(reader, "shape", None)

        def iter_entry_chunks(self, chunk_nnz):
            for number, chunk in enumerate(
                self._reader.iter_entry_chunks(chunk_nnz)
            ):
                if number == self._n:
                    os.kill(os.getpid(), signal.SIGKILL)
                yield chunk

    streaming_build(
        DieAfterChunks(open_entry_reader(tensor_path), int(die_after)),
        out_dir,
        shard_nnz=int(shard_nnz),
        chunk_nnz=int(chunk_nnz),
    )
    """
)


def repro_env(extra: Optional[dict] = None) -> dict:
    """A child environment that resolves ``import repro`` from ``src/``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    if extra:
        env.update({k: str(v) for k, v in extra.items()})
    return env


class FaultInjector:
    """Deterministic (seeded) injection of crashes and file corruption."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    # -- process-level faults ----------------------------------------
    def spawn_cli(
        self, argv: Sequence[str], extra_env: Optional[dict] = None
    ) -> subprocess.Popen:
        """Start ``python -m repro <argv>`` as a real child process."""
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            env=repro_env(extra_env),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def kill_when(
        self,
        process: subprocess.Popen,
        condition: Callable[[], bool],
        timeout: float = 120.0,
        poll: float = 0.005,
    ) -> bool:
        """SIGKILL ``process`` once ``condition()`` holds.

        Returns True when the kill landed while the process was alive,
        False when it exited on its own first (the fault missed).  Raises
        after ``timeout`` seconds so a wedged child cannot hang the suite.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if condition():
                process.kill()
                process.wait()
                return True
            if process.poll() is not None:
                return False
            time.sleep(poll)
        process.kill()
        process.wait()
        raise TimeoutError("fault condition never became true")

    def kill_fit_at_iteration(
        self,
        fit_argv: Sequence[str],
        checkpoint_dir: str,
        iteration: Optional[int] = None,
        low: int = 2,
        high: int = 4,
        timeout: float = 120.0,
    ) -> int:
        """Run a CLI fit and SIGKILL it once iteration ``iteration`` commits.

        ``iteration`` defaults to a seeded-random draw from [low, high].
        Returns the targeted iteration.  The caller should verify the fit
        did not finish (e.g. the last checkpoint is below max_iterations).
        """
        if iteration is None:
            iteration = int(self.rng.integers(low, high + 1))
        marker = os.path.join(
            checkpoint_dir, f"iter{iteration:07d}", "manifest.json"
        )
        process = self.spawn_cli(fit_argv)
        self.kill_when(
            process, lambda: os.path.exists(marker), timeout=timeout
        )
        return iteration

    def kill_streaming_build_mid_ingest(
        self,
        tensor_path: str,
        out_dir: str,
        die_after_chunks: int = 2,
        chunk_nnz: int = 100,
        shard_nnz: int = 500,
    ) -> None:
        """Run a child shard build that SIGKILLs itself mid-ingest.

        Deterministic by construction: the child's entry source kills the
        process after ``die_after_chunks`` chunks, so the build always
        dies with ``.ingest-tmp`` populated and no manifest written.
        """
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _KILLED_BUILD_SCRIPT,
                str(tensor_path),
                str(out_dir),
                str(die_after_chunks),
                str(chunk_nnz),
                str(shard_nnz),
            ],
            env=repro_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        process.wait()
        assert process.returncode == -9, (
            f"child build should die by SIGKILL, exited {process.returncode}"
        )

    # -- file-level faults -------------------------------------------
    def truncate(self, path: str, keep_fraction: float = 0.5) -> None:
        """Cut ``path`` down to a fraction of its size (a torn write)."""
        size = os.path.getsize(path)
        keep = min(max(1, int(size * keep_fraction)), size - 1)
        with open(path, "r+b") as handle:
            handle.truncate(keep)

    def bit_flip(
        self, path: str, offset: Optional[int] = None, bit: int = 0
    ) -> int:
        """Flip bit ``bit`` of one byte of ``path``; returns the offset."""
        size = os.path.getsize(path)
        if offset is None:
            offset = int(self.rng.integers(0, size))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << bit)]))
        return offset

    # -- worker-level faults -----------------------------------------
    def worker_death_env(self, sentinel_path: str) -> dict:
        """Environment that makes the first pool worker task die abruptly."""
        from repro.parallel.executor import INJECT_WORKER_DEATH_ENV

        return {INJECT_WORKER_DEATH_ENV: str(sentinel_path)}
