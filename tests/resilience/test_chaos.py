"""Chaos tests: real SIGKILLs against real child processes.

Marked ``chaos`` and excluded from the tier-1 run (see ``pytest.ini``);
CI runs them as a separate job step with ``-m chaos``.  Every random
choice (kill iteration, flipped byte) comes from a seeded
:class:`~faultinject.FaultInjector`, so a failure reproduces exactly.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from faultinject import FaultInjector, repro_env
from repro.cli import load_model, main
from repro.data import planted_tucker_tensor
from repro.exceptions import DataFormatError
from repro.shards import ShardStore
from repro.tensor import save_text

pytestmark = pytest.mark.chaos

MAX_ITERATIONS = 8


@pytest.fixture
def tensor_file(tmp_path):
    # Large enough that one ALS iteration takes appreciable wall time, so
    # the SIGKILL lands mid-fit, never after the child already finished.
    planted = planted_tucker_tensor(
        shape=(70, 60, 50), ranks=(4, 4, 4), nnz=30_000,
        noise_level=0.01, seed=13,
    )
    path = tmp_path / "tensor.tns"
    save_text(planted.tensor, path)
    return str(path)


def _fit_argv(tensor_file, ckpt_dir, output=None):
    argv = [
        "fit", tensor_file, "--ranks", "4", "4", "4",
        "--max-iterations", str(MAX_ITERATIONS), "--tolerance", "0",
        "--checkpoint-dir", str(ckpt_dir),
    ]
    if output:
        argv += ["--output", str(output)]
    return argv


class TestKillAndResume:
    def test_resume_after_sigkill_is_bitwise_identical(
        self, tensor_file, tmp_path, capsys
    ):
        """Kill a fit at a seeded-random iteration; resume must reproduce
        the uninterrupted model bit for bit."""
        injector = FaultInjector(seed=20260807)
        ckpt = str(tmp_path / "ckpt")

        targeted = injector.kill_fit_at_iteration(
            _fit_argv(tensor_file, ckpt), ckpt
        )
        from repro.resilience import CheckpointManager

        latest = CheckpointManager(ckpt).latest_iteration()
        assert latest is not None and latest >= targeted
        assert latest < MAX_ITERATIONS, "fit finished before the kill landed"

        # Canary inside the first checkpoint: a resume re-enters at
        # latest+1 and never rewrites it; a from-scratch refit would.
        canary = os.path.join(ckpt, "iter0000001", "canary")
        open(canary, "w").close()

        ref_prefix = str(tmp_path / "reference")
        assert main(_fit_argv(
            tensor_file, str(tmp_path / "ckpt-ref"), output=ref_prefix
        )) == 0
        resumed_prefix = str(tmp_path / "resumed")
        assert main(
            _fit_argv(tensor_file, ckpt, output=resumed_prefix) + ["--resume"]
        ) == 0
        capsys.readouterr()

        reference = load_model(ref_prefix + ".npz")
        resumed = load_model(resumed_prefix + ".npz")
        # npz bytes are not deterministic (zip metadata); the arrays are.
        assert resumed.core.tobytes() == reference.core.tobytes()
        for mine, theirs in zip(resumed.factors, reference.factors):
            assert mine.tobytes() == theirs.tobytes()
        assert os.path.exists(canary)

    def test_bit_flip_after_kill_is_diagnosed_not_misread(
        self, tensor_file, tmp_path, capsys
    ):
        """Corrupting the surviving checkpoint makes resume fail loudly,
        naming the damaged file and the fall-back checkpoint."""
        injector = FaultInjector(seed=77)
        ckpt = str(tmp_path / "ckpt")
        injector.kill_fit_at_iteration(
            _fit_argv(tensor_file, ckpt), ckpt, iteration=3
        )
        from repro.resilience import CheckpointManager

        latest = CheckpointManager(ckpt).latest_iteration()
        bad = os.path.join(ckpt, f"iter{latest:07d}", "factor0.npy")
        injector.bit_flip(bad)
        code = main(_fit_argv(tensor_file, ckpt) + ["--resume"])
        assert code == 2
        err = capsys.readouterr().err
        assert bad in err
        assert f"last valid checkpoint is iteration {latest - 1}" in err


class TestKillDuringStreamingBuild:
    def test_next_build_detects_cleans_and_matches_fresh(
        self, tensor_file, tmp_path
    ):
        """SIGKILL a streaming shard build mid-ingest; the next build over
        the same directory detects the debris, cleans it, and produces a
        store byte-identical to one built in a fresh directory."""
        injector = FaultInjector(seed=3)
        crashed_dir = str(tmp_path / "crashed")
        injector.kill_streaming_build_mid_ingest(
            tensor_file, crashed_dir, die_after_chunks=2, chunk_nnz=2_000,
            shard_nnz=5_000,
        )
        assert os.path.isdir(os.path.join(crashed_dir, ".ingest-tmp"))
        assert not os.path.exists(os.path.join(crashed_dir, "manifest.json"))
        with pytest.raises(DataFormatError):
            ShardStore.open(crashed_dir)

        # Rebuild over the crashed directory and build a pristine control.
        env = repro_env({"REPRO_SPILL_WORKERS": "1"})
        fresh_dir = str(tmp_path / "fresh")
        for target in (crashed_dir, fresh_dir):
            subprocess.run(
                [sys.executable, "-m", "repro", "ingest", tensor_file,
                 "--out", target, "--chunk-nnz", "2000",
                 "--shard-nnz", "5000"],
                env=env, check=True, capture_output=True,
            )

        assert not os.path.isdir(os.path.join(crashed_dir, ".ingest-tmp"))
        ShardStore.open(crashed_dir).validate()

        def snapshot(directory):
            files = {}
            for root, _, names in os.walk(directory):
                for name in names:
                    path = os.path.join(root, name)
                    relative = os.path.relpath(path, directory)
                    with open(path, "rb") as handle:
                        files[relative] = handle.read()
            return files

        rebuilt, fresh = snapshot(crashed_dir), snapshot(fresh_dir)
        assert sorted(rebuilt) == sorted(fresh)
        for relative in fresh:
            assert rebuilt[relative] == fresh[relative], relative


class TestWorkerDeathChaos:
    def test_worker_sigkill_mid_update_recovers(self, tmp_path):
        """A worker dying abruptly inside a parallel mode update is
        re-dispatched; the recovered factors equal the serial update's."""
        from repro.core.core_tensor import initialize_core, initialize_factors
        from repro.core.row_update import update_factor_mode
        from repro.parallel import parallel_update_factor_mode

        planted = planted_tucker_tensor(
            shape=(25, 20, 15), ranks=(3, 3, 3), nnz=2_000,
            noise_level=0.01, seed=5,
        )
        tensor = planted.tensor
        factors = initialize_factors(
            tensor.shape, (3, 3, 3), np.random.default_rng(0)
        )
        core = initialize_core((3, 3, 3), np.random.default_rng(1))
        serial = [f.copy() for f in factors]
        update_factor_mode(tensor, serial, core, 0, regularization=0.01)

        sentinel = str(tmp_path / "died-once")
        injector = FaultInjector()
        env = injector.worker_death_env(sentinel)
        old = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            parallel_update_factor_mode(
                tensor, factors, core, 0, regularization=0.01, n_workers=2
            )
        finally:
            for key, value in old.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        assert os.path.exists(sentinel), "the injected death never fired"
        np.testing.assert_allclose(factors[0], serial[0], atol=1e-8)
