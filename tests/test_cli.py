"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import ALGORITHMS, load_model, main, save_model
from repro.core import PTucker, PTuckerConfig
from repro.data import planted_tucker_tensor
from repro.tensor import save_text


@pytest.fixture
def tensor_file(tmp_path):
    planted = planted_tucker_tensor(
        shape=(15, 12, 10), ranks=(2, 2, 2), nnz=700, noise_level=0.01, seed=6
    )
    path = tmp_path / "tensor.tns"
    save_text(planted.tensor, path)
    return str(path), planted.tensor


class TestInfoCommand:
    def test_prints_statistics(self, tensor_file, capsys):
        path, tensor = tensor_file
        assert main(["info", path]) == 0
        output = capsys.readouterr().out
        assert f"shape: {tensor.shape}" in output
        assert f"observed entries: {tensor.nnz}" in output
        assert "mode 0" in output


class TestFactorizeCommand:
    def test_factorize_and_save_model(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        prefix = str(tmp_path / "model")
        code = main(
            [
                "factorize",
                path,
                "--ranks",
                "2",
                "2",
                "2",
                "--max-iterations",
                "3",
                "--output",
                prefix,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "P-Tucker" in output
        assert "iter   1" in output or "iter 1" in output.replace("  ", " ")
        model = load_model(prefix + ".npz")
        assert model.core.shape == (2, 2, 2)
        assert len(model.factors) == 3

    def test_factorize_with_test_split(self, tensor_file, capsys):
        path, _ = tensor_file
        code = main(
            [
                "factorize",
                path,
                "--ranks",
                "2",
                "--max-iterations",
                "2",
                "--test-fraction",
                "0.1",
            ]
        )
        assert code == 0
        assert "test RMSE" in capsys.readouterr().out

    def test_factorize_with_alternative_algorithm(self, tensor_file, capsys):
        path, _ = tensor_file
        code = main(
            [
                "factorize",
                path,
                "--algorithm",
                "s-hot",
                "--ranks",
                "2",
                "--max-iterations",
                "2",
            ]
        )
        assert code == 0
        assert "S-HOT" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["threaded", "auto", "numba"])
    def test_factorize_with_backend(self, tensor_file, capsys, backend):
        """Every backend name (incl. optional ones) runs end to end."""
        path, _ = tensor_file
        code = main(
            [
                "factorize",
                path,
                "--ranks",
                "2",
                "2",
                "2",
                "--max-iterations",
                "2",
                "--backend",
                backend,
            ]
        )
        assert code == 0
        assert "error=" in capsys.readouterr().out

    def test_fit_alias_with_shards(self, tensor_file, tmp_path, capsys):
        """`fit --shards DIR` builds a shard store and streams the sweeps."""
        path, _ = tensor_file
        shard_dir = tmp_path / "shards"
        code = main(
            [
                "fit",
                path,
                "--ranks",
                "2",
                "2",
                "2",
                "--max-iterations",
                "2",
                "--shards",
                str(shard_dir),
                "--shard-nnz",
                "100",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "streaming sweeps from shard store" in output
        assert "error=" in output
        assert (shard_dir / "manifest.json").exists()

    def test_shards_match_in_core_model(self, tensor_file, tmp_path, capsys):
        """The sharded CLI run stores the same model as the in-core run."""
        path, _ = tensor_file
        incore_prefix = str(tmp_path / "incore")
        sharded_prefix = str(tmp_path / "sharded")
        base = ["factorize", path, "--ranks", "2", "2", "2",
                "--max-iterations", "2", "--tolerance", "0"]
        assert main(base + ["--output", incore_prefix]) == 0
        assert main(
            base
            + [
                "--output",
                sharded_prefix,
                "--shards",
                str(tmp_path / "shards"),
                "--shard-nnz",
                "128",
            ]
        ) == 0
        capsys.readouterr()
        incore = load_model(incore_prefix + ".npz")
        sharded = load_model(sharded_prefix + ".npz")
        np.testing.assert_array_equal(sharded.core, incore.core)
        for mine, reference in zip(sharded.factors, incore.factors):
            np.testing.assert_array_equal(mine, reference)

    def test_shards_reject_other_algorithms(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        code = main(
            [
                "factorize",
                path,
                "--algorithm",
                "s-hot",
                "--ranks",
                "2",
                "--shards",
                str(tmp_path / "shards"),
            ]
        )
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_all_registered_algorithms_are_constructible(self):
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=1)
        for name, cls in ALGORITHMS.items():
            solver = cls(config)
            assert hasattr(solver, "fit"), name


class TestIngestCommand:
    def test_ingest_builds_matching_store(self, tensor_file, tmp_path, capsys):
        path, tensor = tensor_file
        store_dir = str(tmp_path / "store")
        code = main(
            ["ingest", path, "--shards", store_dir, "--chunk-nnz", "123"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "observed entries" in output
        from repro.shards import ShardStore

        store = ShardStore.open(store_dir)
        store.validate()
        assert store.matches(tensor)

    def test_ingest_reshards_existing_store(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        first = str(tmp_path / "first")
        second = str(tmp_path / "second")
        assert main(["ingest", path, "--shards", first]) == 0
        code = main(["ingest", first, "--shards", second, "--shard-nnz", "99"])
        assert code == 0
        from repro.shards import ShardStore

        assert ShardStore.open(second).shard_nnz == 99


class TestFromTextFlag:
    def test_from_text_matches_in_ram_model(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        in_ram_prefix = str(tmp_path / "in_ram")
        streamed_prefix = str(tmp_path / "streamed")
        common = ["--ranks", "2", "2", "2", "--max-iterations", "2",
                  "--tolerance", "0"]
        assert main(["fit", path, *common, "--output", in_ram_prefix]) == 0
        code = main(
            ["fit", path, *common, "--from-text", "--chunk-nnz", "200",
             "--output", streamed_prefix]
        )
        assert code == 0
        assert "streaming ingest" in capsys.readouterr().out
        in_ram = load_model(in_ram_prefix + ".npz")
        streamed = load_model(streamed_prefix + ".npz")
        np.testing.assert_array_equal(streamed.core, in_ram.core)
        for mine, theirs in zip(streamed.factors, in_ram.factors):
            np.testing.assert_array_equal(mine, theirs)

    def test_from_text_rejects_other_algorithms(self, tensor_file, capsys):
        path, _ = tensor_file
        code = main(
            ["fit", path, "--ranks", "2", "2", "2", "--from-text",
             "--algorithm", "cp-als"]
        )
        assert code == 2
        assert "--from-text" in capsys.readouterr().err

    def test_from_text_rejects_test_fraction(self, tensor_file, capsys):
        path, _ = tensor_file
        code = main(
            ["fit", path, "--ranks", "2", "2", "2", "--from-text",
             "--test-fraction", "0.1"]
        )
        assert code == 2
        assert "test" in capsys.readouterr().err


class TestPredictCommand:
    def test_predict_matches_library_prediction(self, tensor_file, tmp_path, capsys):
        path, tensor = tensor_file
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=3, seed=0)
        result = PTucker(config).fit(tensor)
        prefix = str(tmp_path / "model")
        save_model(result, prefix)

        code = main(["predict", prefix + ".npz", "--index", "1", "2", "3"])
        assert code == 0
        printed = float(capsys.readouterr().out.strip())
        expected = float(result.predict(np.array([1, 2, 3]))[0])
        assert printed == pytest.approx(expected, rel=1e-5)

    def test_predict_wrong_arity(self, tensor_file, tmp_path, capsys):
        path, tensor = tensor_file
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=1, seed=0)
        result = PTucker(config).fit(tensor)
        prefix = str(tmp_path / "model")
        save_model(result, prefix)
        code = main(["predict", prefix + ".npz", "--index", "1", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestModelRoundtrip:
    def test_save_load_preserves_model(self, tensor_file, tmp_path):
        _, tensor = tensor_file
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=2, seed=0)
        result = PTucker(config).fit(tensor)
        prefix = str(tmp_path / "roundtrip")
        save_model(result, prefix)
        loaded = load_model(prefix + ".npz")
        np.testing.assert_allclose(loaded.core, result.core)
        for original, reloaded in zip(result.factors, loaded.factors):
            np.testing.assert_allclose(original, reloaded)
        assert loaded.algorithm == "P-Tucker"


@pytest.fixture
def model_file(tensor_file, tmp_path):
    _, tensor = tensor_file
    config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=2, seed=0)
    result = PTucker(config).fit(tensor)
    prefix = str(tmp_path / "served")
    save_model(result, prefix)
    return prefix + ".npz", result


class TestQueryCommand:
    def test_point_query_matches_predict(self, model_file, capsys):
        path, result = model_file
        assert main(["query", path, "--index", "1", "2", "3"]) == 0
        printed = float(capsys.readouterr().out.strip())
        expected = float(result.predict(np.array([1, 2, 3]))[0])
        assert printed == pytest.approx(expected, rel=1e-5)

    def test_topk_prints_item_score_lines(self, model_file, capsys):
        path, result = model_file
        code = main(
            ["query", path, "--topk", "4", "--mode", "1", "--context", "3", "5"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        scores = []
        for line in lines:
            item, score = line.split("\t")
            assert 0 <= int(item) < 12
            scores.append(float(score))
        assert scores == sorted(scores, reverse=True)

    def test_topk_without_mode_or_context_is_usage_error(self, model_file, capsys):
        path, _ = model_file
        assert main(["query", path, "--topk", "4"]) == 2
        assert "--mode and --context" in capsys.readouterr().err

    def test_missing_model_file_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.npz")
        code = main(["query", missing, "--index", "1", "2", "3"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unreachable_server_is_exit_2(self, capsys):
        code = main(
            ["query", "http://127.0.0.1:9", "--index", "1", "2", "3"]
        )
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestServeCommand:
    def test_no_http_without_stdio_is_usage_error(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--no-http"]) == 2
        assert "--stdio" in capsys.readouterr().err
