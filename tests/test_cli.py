"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import ALGORITHMS, load_model, main, save_model
from repro.core import PTucker, PTuckerConfig
from repro.data import planted_tucker_tensor
from repro.tensor import save_text


@pytest.fixture
def tensor_file(tmp_path):
    planted = planted_tucker_tensor(
        shape=(15, 12, 10), ranks=(2, 2, 2), nnz=700, noise_level=0.01, seed=6
    )
    path = tmp_path / "tensor.tns"
    save_text(planted.tensor, path)
    return str(path), planted.tensor


class TestInfoCommand:
    def test_prints_statistics(self, tensor_file, capsys):
        path, tensor = tensor_file
        assert main(["info", path]) == 0
        output = capsys.readouterr().out
        assert f"shape: {tensor.shape}" in output
        assert f"observed entries: {tensor.nnz}" in output
        assert "mode 0" in output


class TestFactorizeCommand:
    def test_factorize_and_save_model(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        prefix = str(tmp_path / "model")
        code = main(
            [
                "factorize",
                path,
                "--ranks",
                "2",
                "2",
                "2",
                "--max-iterations",
                "3",
                "--output",
                prefix,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "P-Tucker" in output
        assert "iter   1" in output or "iter 1" in output.replace("  ", " ")
        model = load_model(prefix + ".npz")
        assert model.core.shape == (2, 2, 2)
        assert len(model.factors) == 3

    def test_factorize_with_test_split(self, tensor_file, capsys):
        path, _ = tensor_file
        code = main(
            [
                "factorize",
                path,
                "--ranks",
                "2",
                "--max-iterations",
                "2",
                "--test-fraction",
                "0.1",
            ]
        )
        assert code == 0
        assert "test RMSE" in capsys.readouterr().out

    def test_factorize_with_alternative_algorithm(self, tensor_file, capsys):
        path, _ = tensor_file
        code = main(
            [
                "factorize",
                path,
                "--algorithm",
                "s-hot",
                "--ranks",
                "2",
                "--max-iterations",
                "2",
            ]
        )
        assert code == 0
        assert "S-HOT" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["threaded", "auto", "numba"])
    def test_factorize_with_backend(self, tensor_file, capsys, backend):
        """Every backend name (incl. optional ones) runs end to end."""
        path, _ = tensor_file
        code = main(
            [
                "factorize",
                path,
                "--ranks",
                "2",
                "2",
                "2",
                "--max-iterations",
                "2",
                "--backend",
                backend,
            ]
        )
        assert code == 0
        assert "error=" in capsys.readouterr().out

    def test_all_registered_algorithms_are_constructible(self):
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=1)
        for name, cls in ALGORITHMS.items():
            solver = cls(config)
            assert hasattr(solver, "fit"), name


class TestPredictCommand:
    def test_predict_matches_library_prediction(self, tensor_file, tmp_path, capsys):
        path, tensor = tensor_file
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=3, seed=0)
        result = PTucker(config).fit(tensor)
        prefix = str(tmp_path / "model")
        save_model(result, prefix)

        code = main(["predict", prefix + ".npz", "--index", "1", "2", "3"])
        assert code == 0
        printed = float(capsys.readouterr().out.strip())
        expected = float(result.predict(np.array([1, 2, 3]))[0])
        assert printed == pytest.approx(expected, rel=1e-5)

    def test_predict_wrong_arity(self, tensor_file, tmp_path, capsys):
        path, tensor = tensor_file
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=1, seed=0)
        result = PTucker(config).fit(tensor)
        prefix = str(tmp_path / "model")
        save_model(result, prefix)
        code = main(["predict", prefix + ".npz", "--index", "1", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestModelRoundtrip:
    def test_save_load_preserves_model(self, tensor_file, tmp_path):
        _, tensor = tensor_file
        config = PTuckerConfig(ranks=(2, 2, 2), max_iterations=2, seed=0)
        result = PTucker(config).fit(tensor)
        prefix = str(tmp_path / "roundtrip")
        save_model(result, prefix)
        loaded = load_model(prefix + ".npz")
        np.testing.assert_allclose(loaded.core, result.core)
        for original, reloaded in zip(result.factors, loaded.factors):
            np.testing.assert_allclose(original, reloaded)
        assert loaded.algorithm == "P-Tucker"
