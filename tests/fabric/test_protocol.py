"""Tests for the length-prefixed worker frame protocol."""

import numpy as np
import pytest

from repro.fabric.protocol import (
    HEADER,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    Frame,
    FrameKind,
    FrameReader,
    ProtocolError,
    encode_frame,
)


def test_roundtrip_simple_payload():
    wire = encode_frame(FrameKind.TASK, {"key": 3, "data": [1, 2, 3]})
    frames = FrameReader().feed(wire)
    assert frames == [Frame(FrameKind.TASK, {"key": 3, "data": [1, 2, 3]})]


def test_roundtrip_numpy_payload():
    array = np.arange(12, dtype=np.float64).reshape(3, 4)
    wire = encode_frame(FrameKind.RESULT, ("key", array))
    [frame] = FrameReader().feed(wire)
    key, decoded = frame.payload
    assert key == "key"
    np.testing.assert_array_equal(decoded, array)
    assert decoded.dtype == array.dtype


def test_multiple_frames_in_one_feed():
    wire = encode_frame(FrameKind.HELLO, 1) + encode_frame(
        FrameKind.HEARTBEAT, None
    ) + encode_frame(FrameKind.SHUTDOWN, None)
    frames = FrameReader().feed(wire)
    assert [f.kind for f in frames] == [
        FrameKind.HELLO, FrameKind.HEARTBEAT, FrameKind.SHUTDOWN
    ]


def test_byte_at_a_time_reassembly():
    """Frames split at every possible boundary still decode identically."""
    wire = encode_frame(FrameKind.SETUP, (7, "key", "mod:fn", [1.5, 2.5]))
    reader = FrameReader()
    frames = []
    for i in range(len(wire)):
        frames.extend(reader.feed(wire[i : i + 1]))
    assert frames == [Frame(FrameKind.SETUP, (7, "key", "mod:fn", [1.5, 2.5]))]
    assert reader.pending_bytes == 0


def test_partial_frame_reports_pending_bytes():
    wire = encode_frame(FrameKind.TASK, list(range(100)))
    reader = FrameReader()
    assert reader.feed(wire[:10]) == []
    assert reader.pending_bytes == 10


def test_bad_magic_raises_protocol_error():
    wire = bytearray(encode_frame(FrameKind.TASK, None))
    wire[0] ^= 0xFF
    with pytest.raises(ProtocolError, match="magic"):
        FrameReader().feed(bytes(wire))


def test_unknown_frame_kind_raises():
    bogus = HEADER.pack(MAGIC, 250, 0)
    with pytest.raises(ProtocolError):
        FrameReader().feed(bogus)


def test_oversized_length_prefix_rejected_before_allocation():
    huge = HEADER.pack(MAGIC, int(FrameKind.TASK), MAX_PAYLOAD_BYTES + 1)
    with pytest.raises(ProtocolError, match="exceeds"):
        FrameReader().feed(huge)


def test_corrupt_pickle_payload_raises():
    garbage = b"\x00not-a-pickle"
    wire = HEADER.pack(MAGIC, int(FrameKind.TASK), len(garbage)) + garbage
    with pytest.raises(ProtocolError, match="unpickle"):
        FrameReader().feed(wire)
