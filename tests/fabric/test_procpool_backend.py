"""Tests for the ``procpool`` kernel backend on the execution fabric."""

import os

import numpy as np
import pytest

from repro.core import PTucker, PTuckerConfig
from repro.core.core_tensor import initialize_core, initialize_factors
from repro.core.row_update import build_mode_context
from repro.kernels.backends import (
    ProcpoolBackend,
    available_backends,
    resolve_backend,
)
from repro.kernels import concatenated_segment_starts, segment_positions


def _mode_inputs(tensor, mode):
    """Mode-sorted entry arrays + segment starts for one whole-mode block."""
    context = build_mode_context(tensor, mode)
    positions = segment_positions(context.row_starts, context.row_counts)
    starts = concatenated_segment_starts(context.row_counts)
    return (
        context.sorted_indices[positions],
        context.sorted_values[positions],
        starts,
    )


def _run_kernel(backend, tensor, factors, core, mode):
    indices, values, starts = _mode_inputs(tensor, mode)
    kernel = backend.make_normal_equations_kernel(
        factors, core, mode, indices.shape[0]
    )
    return kernel(indices, values, starts)


class TestRegistry:
    def test_procpool_is_registered(self):
        assert "procpool" in available_backends()

    def test_resolve_returns_procpool_backend(self):
        assert isinstance(resolve_backend("procpool"), ProcpoolBackend)

    def test_config_accepts_procpool_by_name(self):
        config = PTuckerConfig(
            ranks=(2, 2, 2), max_iterations=1, backend="procpool"
        )
        assert config.backend == "procpool"


class TestBitwise:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_chunked_stacks_match_serial_reference(self, planted_small, mode):
        """(B, c) stacks are bitwise equal to numpy whatever the chunking."""
        tensor = planted_small.tensor
        factors = initialize_factors(
            tensor.shape, (3, 3, 3), np.random.default_rng(0)
        )
        core = initialize_core((3, 3, 3), np.random.default_rng(1))

        reference = resolve_backend("numpy")
        # Tiny chunk floor so even the small test tensor really crosses
        # the process pipe in several chunks.
        procpool = ProcpoolBackend(n_workers=2, min_chunk_entries=8)

        b_ref, c_ref = _run_kernel(reference, tensor, factors, core, mode)
        b_pp, c_pp = _run_kernel(procpool, tensor, factors, core, mode)
        np.testing.assert_array_equal(b_pp, b_ref)
        np.testing.assert_array_equal(c_pp, c_ref)

    def test_single_worker_degrades_to_serial_without_spawning(
        self, planted_small
    ):
        tensor = planted_small.tensor
        factors = initialize_factors(
            tensor.shape, (3, 3, 3), np.random.default_rng(0)
        )
        core = initialize_core((3, 3, 3), np.random.default_rng(1))
        reference = resolve_backend("numpy")
        degraded = ProcpoolBackend(n_workers=1)
        assert degraded._supervisor is None  # nothing spawned for n=1
        b_ref, c_ref = _run_kernel(reference, tensor, factors, core, 0)
        b_d, c_d = _run_kernel(degraded, tensor, factors, core, 0)
        np.testing.assert_array_equal(b_d, b_ref)
        np.testing.assert_array_equal(c_d, c_ref)

    def test_full_fit_matches_numpy_backend(self, planted_small, monkeypatch):
        """An entire fit through ``backend="procpool"`` is bitwise equal to
        the numpy backend fit (worker processes are invisible)."""
        from repro.kernels.backends.procpool import PROC_WORKERS_ENV

        monkeypatch.setenv(PROC_WORKERS_ENV, "2")
        tensor = planted_small.tensor

        def fit(backend):
            config = PTuckerConfig(
                ranks=(3, 3, 3), max_iterations=2, seed=0, backend=backend
            )
            return PTucker(config).fit(tensor)

        reference = fit("numpy")
        result = fit("procpool")
        np.testing.assert_array_equal(result.core, reference.core)
        for ours, theirs in zip(result.factors, reference.factors):
            np.testing.assert_array_equal(ours, theirs)


class TestWorkerCountResolution:
    def test_env_override(self, monkeypatch):
        from repro.kernels.backends.procpool import PROC_WORKERS_ENV

        monkeypatch.setenv(PROC_WORKERS_ENV, "5")
        assert ProcpoolBackend().n_workers == 5

    def test_constructor_beats_env(self, monkeypatch):
        from repro.kernels.backends.procpool import PROC_WORKERS_ENV

        monkeypatch.setenv(PROC_WORKERS_ENV, "5")
        assert ProcpoolBackend(n_workers=3).n_workers == 3

    def test_garbage_env_falls_back_to_cpu_count(self, monkeypatch):
        from repro.kernels.backends.procpool import PROC_WORKERS_ENV

        monkeypatch.setenv(PROC_WORKERS_ENV, "not-a-number")
        assert ProcpoolBackend().n_workers == max(1, os.cpu_count() or 1)


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="procpool-vs-threaded wall-clock needs at least 2 CPUs",
)
def test_procpool_beats_threaded_on_multicore():
    """On a multicore host the process pool overlaps where threads serialise.

    Skipped (never failed) on single-CPU hosts; the workload is sized so
    the GIL-bound segment bookkeeping dominates the threaded backend.
    """
    import time

    from repro.data import planted_tucker_tensor

    problem = planted_tucker_tensor(
        shape=(300, 300, 300),
        ranks=(8, 8, 8),
        nnz=400_000,
        noise=0.01,
        seed=0,
    )
    tensor = problem.tensor
    factors = initialize_factors(
        tensor.shape, (8, 8, 8), np.random.default_rng(0)
    )
    core = initialize_core((8, 8, 8), np.random.default_rng(1))

    def best_of(backend, repeats=3):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            _run_kernel(backend, tensor, factors, core, 0)
            times.append(time.perf_counter() - start)
        return min(times)

    workers = min(4, os.cpu_count() or 2)
    procpool = ProcpoolBackend(n_workers=workers)
    threaded = resolve_backend("threaded")
    _run_kernel(procpool, tensor, factors, core, 0)  # warm the pool
    t_proc = best_of(procpool)
    t_thread = best_of(threaded)
    assert t_proc < t_thread, (
        f"procpool {t_proc:.3f}s not faster than threaded {t_thread:.3f}s "
        f"on {os.cpu_count()} CPUs"
    )
