"""Chaos suite: the three worker failure modes, injected at seeded points.

Each test runs a real chunked normal-equations sweep on the ``procpool``
backend with a fault injected into the worker pool — SIGKILL (abrupt
death), SIGSTOP (hung: heartbeats stop, process lingers) or a wedge
(heartbeats keep flowing, the task never finishes) — at a task ordinal
drawn from a seeded RNG, and asserts the recovered ``(B, c)`` stacks are
**byte-identical** to an undisturbed run.  Row/segment independence is
what makes this possible: re-dispatching a lost chunk to another worker
replays the exact same IEEE operation sequence.

Marked ``chaos`` (excluded from tier-1): these tests SIGKILL/SIGSTOP
child processes and take seconds of wall clock on heartbeat timeouts.
"""

import numpy as np
import pytest

from repro.core.core_tensor import initialize_core, initialize_factors
from repro.core.row_update import build_mode_context
from repro.fabric import TaskSupervisor
from repro.fabric.worker import (
    INJECT_AT_ENV,
    INJECT_KILL_ENV,
    INJECT_STOP_ENV,
    INJECT_WEDGE_ENV,
)
from repro.kernels import concatenated_segment_starts, segment_positions
from repro.kernels.backends import ProcpoolBackend, resolve_backend
from repro.metrics import Counters
from repro.resilience import BackoffPolicy

pytestmark = pytest.mark.chaos

FAST_BACKOFF = BackoffPolicy(base=0.01, cap=0.1, jitter="none")


def _mode_inputs(tensor, mode=0):
    context = build_mode_context(tensor, mode)
    positions = segment_positions(context.row_starts, context.row_counts)
    starts = concatenated_segment_starts(context.row_counts)
    return (
        context.sorted_indices[positions],
        context.sorted_values[positions],
        starts,
    )


@pytest.fixture()
def sweep(planted_small):
    """Inputs plus the undisturbed serial reference stacks."""
    tensor = planted_small.tensor
    factors = initialize_factors(
        tensor.shape, (3, 3, 3), np.random.default_rng(0)
    )
    core = initialize_core((3, 3, 3), np.random.default_rng(1))
    indices, values, starts = _mode_inputs(tensor)
    kernel = resolve_backend("numpy").make_normal_equations_kernel(
        factors, core, 0, indices.shape[0]
    )
    b_ref, c_ref = kernel(indices, values, starts)
    return factors, core, indices, values, starts, b_ref, c_ref


def _disturbed_run(sweep, counters, task_deadline=None, **supervisor_kwargs):
    """One procpool sweep on a freshly spawned (fault-primed) pool."""
    factors, core, indices, values, starts, b_ref, c_ref = sweep
    supervisor = TaskSupervisor(
        2,
        task_deadline=task_deadline,
        backoff=FAST_BACKOFF,
        counters=counters,
        name="chaos",
        **supervisor_kwargs,
    )
    backend = ProcpoolBackend(
        n_workers=2, min_chunk_entries=8, supervisor=supervisor
    )
    try:
        kernel = backend.make_normal_equations_kernel(
            factors, core, 0, indices.shape[0]
        )
        b_pp, c_pp = kernel(indices, values, starts)
    finally:
        supervisor.shutdown()
    assert b_pp.tobytes() == b_ref.tobytes()
    assert c_pp.tobytes() == c_ref.tobytes()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sigkill_mid_sweep_is_byte_invisible(
    sweep, tmp_path, monkeypatch, seed
):
    """A worker SIGKILLed at a seeded-random task ordinal changes nothing."""
    fire_at = int(np.random.default_rng(seed).integers(1, 3))
    monkeypatch.setenv(INJECT_KILL_ENV, str(tmp_path / "kill"))
    monkeypatch.setenv(INJECT_AT_ENV, str(fire_at))
    counters = Counters()
    _disturbed_run(sweep, counters)
    assert counters.get("fabric.workers_died") >= 1
    assert counters.get("fabric.redispatches") >= 1


@pytest.mark.parametrize("seed", [3, 4])
def test_sigstop_mid_sweep_is_byte_invisible(
    sweep, tmp_path, monkeypatch, seed
):
    """A SIGSTOPped worker is recovered — by the straggler hedge (an idle
    worker duplicates the stuck chunk) or, failing that, by the missed
    heartbeats — with byte-identical output either way."""
    fire_at = int(np.random.default_rng(seed).integers(1, 3))
    monkeypatch.setenv(INJECT_STOP_ENV, str(tmp_path / "stop"))
    monkeypatch.setenv(INJECT_AT_ENV, str(fire_at))
    counters = Counters()
    _disturbed_run(
        sweep, counters, heartbeat_interval=0.1, hedge_after=0.2
    )
    recovered = (
        counters.get("fabric.hedges") + counters.get("fabric.workers_hung")
    )
    assert recovered >= 1


def test_sigstop_without_hedging_uses_hung_detection(
    sweep, tmp_path, monkeypatch
):
    """With hedging off, only the heartbeat silence can catch a SIGSTOP."""
    monkeypatch.setenv(INJECT_STOP_ENV, str(tmp_path / "stop"))
    counters = Counters()
    _disturbed_run(
        sweep, counters, heartbeat_interval=0.1, hedge=False
    )
    assert counters.get("fabric.workers_hung") >= 1
    assert counters.get("fabric.redispatches") >= 1


def test_wedged_task_is_caught_by_the_deadline(sweep, tmp_path, monkeypatch):
    """A wedge heartbeats forever; only the per-task deadline catches it."""
    monkeypatch.setenv(INJECT_WEDGE_ENV, str(tmp_path / "wedge"))
    counters = Counters()
    _disturbed_run(
        sweep, counters, task_deadline=1.0, hedge=False,
        heartbeat_interval=0.1,
    )
    assert counters.get("fabric.deadline_kills") >= 1
    assert counters.get("fabric.redispatches") >= 1
