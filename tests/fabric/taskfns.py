"""Task and setup callables the fabric tests dispatch into workers.

Workers import these by dotted path (``tests.fabric.taskfns:echo``);
they resolve because the supervisor spawns workers with the repository
root as the working directory, which ``python -m`` puts on ``sys.path``.
Every callable takes ``(context, payload)`` per the worker contract.
"""

import os
import time


def echo(context, payload):
    """Return the payload unchanged."""
    return payload


def double(context, payload):
    """Return twice the payload."""
    return payload * 2


def pid(context, payload):
    """Return this worker's process id."""
    return os.getpid()


def sleep_ms(context, payload):
    """Sleep ``payload`` milliseconds, then return it."""
    time.sleep(payload / 1000.0)
    return payload


def boom(context, payload):
    """Raise a deterministic error carrying the payload."""
    raise ValueError(f"boom: {payload}")


def die(context, payload):
    """Exit the worker process abruptly (simulates a crash)."""
    os._exit(1)


def setup_store(context, payload):
    """Setup callable: return the payload for ``context.setups``."""
    return payload


def read_setup(context, payload):
    """Return the stored setup value under key ``payload``."""
    return context.setups[payload]


def tasks_executed(context, payload):
    """Return how many tasks this worker has executed (incl. this one)."""
    return context.tasks_executed


def stray_print(context, payload):
    """print() to stdout — must land on stderr, never in the protocol."""
    print("stray output that must not corrupt the frame stream")
    return payload
