"""Tier-1 tests for the task supervisor: dispatch, setups, failures.

These spawn real worker processes but keep them few and the work tiny,
so the suite stays inside the default run.  The violent fault-injection
scenarios (SIGKILL/SIGSTOP/wedge mid-sweep) live in
``test_chaos_fabric.py`` behind the ``chaos`` marker.
"""

import numpy as np
import pytest

from repro.fabric import (
    PoisonedTaskError,
    Task,
    TaskRetryError,
    TaskSupervisor,
)
from repro.metrics import Counters
from repro.resilience import BackoffPolicy

TASKFNS = "tests.fabric.taskfns"

#: Fast backoff so failure tests spend milliseconds, not seconds.
FAST_BACKOFF = BackoffPolicy(base=0.01, cap=0.05, jitter="none")


@pytest.fixture(scope="module")
def supervisor():
    """One warm two-worker pool shared by the happy-path tests."""
    with TaskSupervisor(2, name="test-fabric") as sup:
        yield sup


def _tasks(fn, payloads):
    return [
        Task(key=i, fn=f"{TASKFNS}:{fn}", payload=p)
        for i, p in enumerate(payloads)
    ]


class TestDispatch:
    def test_results_in_submission_order(self, supervisor):
        results = supervisor.run_tasks(_tasks("double", [1, 2, 3, 4, 5]))
        assert results == [2, 4, 6, 8, 10]

    def test_numpy_payloads_roundtrip(self, supervisor):
        arrays = [np.arange(4, dtype=np.float64) * i for i in range(3)]
        results = supervisor.run_tasks(_tasks("echo", arrays))
        for sent, received in zip(arrays, results):
            np.testing.assert_array_equal(sent, received)

    def test_work_spreads_across_workers(self, supervisor):
        # Enough slow-ish tasks that both workers must participate.
        pids = supervisor.run_tasks(_tasks("pid", [5] * 8))
        assert len(set(pids)) == 2

    def test_empty_task_list(self, supervisor):
        assert supervisor.run_tasks([]) == []

    def test_supervisor_usable_after_many_rounds(self, supervisor):
        for round_no in range(3):
            assert supervisor.run_tasks(
                _tasks("double", [round_no])
            ) == [2 * round_no]


class TestSetups:
    def test_broadcast_setup_visible_to_tasks(self, supervisor):
        supervisor.broadcast_setup(
            "shared", f"{TASKFNS}:setup_store", {"answer": 41}
        )
        results = supervisor.run_tasks(_tasks("read_setup", ["shared"] * 2))
        assert results == [{"answer": 41}, {"answer": 41}]

    def test_wait_ready_reports_caught_up_pool(self, supervisor):
        supervisor.broadcast_setup(
            "shared2", f"{TASKFNS}:setup_store", {"answer": 42}
        )
        assert supervisor.wait_ready(30.0)
        assert supervisor.ready()

    def test_liveness_shape(self, supervisor):
        supervisor.wait_ready(30.0)
        report = supervisor.liveness()
        assert len(report) == 2
        for entry in report:
            assert entry["alive"] is True
            assert isinstance(entry["pid"], int)
            assert entry["setup_caught_up"] is True


class TestFailures:
    def test_deterministic_error_propagates_with_remote_traceback(self):
        with TaskSupervisor(1, backoff=FAST_BACKOFF) as sup:
            with pytest.raises(ValueError, match="boom payload") as excinfo:
                sup.run_tasks(_tasks("boom", ["boom payload"]))
            notes = getattr(excinfo.value, "__notes__", [])
            assert any("remote worker traceback" in n for n in notes)
            # The pool survives a task error: the next round still works.
            assert sup.run_tasks(_tasks("double", [21])) == [42]

    def test_error_does_not_consume_retry_budget(self):
        counters = Counters()
        with TaskSupervisor(
            1, backoff=FAST_BACKOFF, counters=counters
        ) as sup:
            with pytest.raises(ValueError):
                sup.run_tasks(_tasks("boom", ["x"]))
        assert counters.get("fabric.redispatches") == 0

    def test_poisoned_task_names_key_and_kills(self):
        counters = Counters()
        with TaskSupervisor(
            2,
            backoff=FAST_BACKOFF,
            poison_threshold=2,
            max_task_retries=5,
            counters=counters,
        ) as sup:
            with pytest.raises(PoisonedTaskError) as excinfo:
                sup.run_tasks(_tasks("die", [None]))
            assert excinfo.value.kills == 2
            assert excinfo.value.key[1] == 0  # (run_id, task.key)
        assert counters.get("fabric.workers_died") >= 2

    def test_retry_budget_exhaustion_raises_taskretryerror(self):
        # poison_threshold above max_task_retries so the retry budget is
        # what gives out; every attempt lands on the same dying task.
        with TaskSupervisor(
            1,
            backoff=FAST_BACKOFF,
            poison_threshold=99,
            max_task_retries=1,
        ) as sup:
            with pytest.raises(TaskRetryError) as excinfo:
                sup.run_tasks(_tasks("die", [None]))
            assert excinfo.value.keys  # names the unfinished task keys

    def test_worker_death_redispatches_and_completes(self, tmp_path):
        """One abrupt worker death mid-batch is invisible in the results."""
        import os

        from repro.fabric.worker import INJECT_KILL_ENV

        counters = Counters()
        old = os.environ.get(INJECT_KILL_ENV)
        os.environ[INJECT_KILL_ENV] = str(tmp_path / "kill-once")
        try:
            with TaskSupervisor(
                2, backoff=FAST_BACKOFF, counters=counters
            ) as sup:
                results = sup.run_tasks(_tasks("double", list(range(8))))
        finally:
            if old is None:
                del os.environ[INJECT_KILL_ENV]
            else:  # pragma: no cover - env hygiene
                os.environ[INJECT_KILL_ENV] = old
        assert results == [2 * i for i in range(8)]
        assert counters.get("fabric.workers_died") >= 1
        assert counters.get("fabric.redispatches") >= 1


class TestHedging:
    def test_hedged_duplicate_first_result_wins(self):
        """With one straggling task and an idle worker, a hedge fires and
        the answer is still exactly one result per task."""
        counters = Counters()
        with TaskSupervisor(
            2, hedge=True, hedge_after=0.05, counters=counters
        ) as sup:
            sup.wait_ready(30.0)
            # One slow task, nothing else: the second worker idles, the
            # hedge duplicates the straggler, first finisher wins.
            results = sup.run_tasks(_tasks("sleep_ms", [400]))
        assert results == [400]
        assert counters.get("fabric.hedges") >= 1

    def test_hedging_disabled_runs_single_copies(self):
        counters = Counters()
        with TaskSupervisor(
            2, hedge=False, counters=counters
        ) as sup:
            results = sup.run_tasks(_tasks("sleep_ms", [150]))
        assert results == [150]
        assert counters.get("fabric.hedges") == 0
