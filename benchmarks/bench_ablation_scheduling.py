"""Ablation: scheduling policy for the parallel row updates (Section IV-D).

The paper reports that dynamic scheduling makes P-Tucker 1.5x faster than a
naive (static) work distribution on MovieLens.  This ablation measures the
makespan of static, dynamic and LPT scheduling over the row-workload
distribution of a real run, for several thread counts.
"""

from repro.core import PTucker, PTuckerConfig
from repro.data import generate_movielens_like
from repro.experiments.report import render_table
from repro.parallel import ParallelSimulator


def test_ablation_scheduling_policies(benchmark):
    """Compare static / dynamic / LPT scheduling makespans on a MovieLens-style run."""

    def run():
        dataset = generate_movielens_like(
            n_users=300, n_movies=120, n_years=10, n_hours=24, n_ratings=15_000, seed=0
        )
        config = PTuckerConfig(ranks=(6, 6, 4, 4), max_iterations=1, seed=0)
        result = PTucker(config).fit(dataset.tensor)
        simulator = ParallelSimulator(
            result.scheduler,
            serial_seconds=result.trace.mean_iteration_seconds,
            rank=6,
        )
        rows = []
        for threads in (4, 8, 16, 20):
            for policy in ("static", "dynamic", "lpt"):
                estimate = simulator.estimate(threads, policy)
                rows.append(
                    {
                        "threads": threads,
                        "policy": policy,
                        "sec/iter": estimate.parallel_seconds,
                        "speedup": estimate.speedup,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation - scheduling policy vs threads"))
    by_key = {(row["threads"], row["policy"]): row["sec/iter"] for row in rows}
    for threads in (4, 8, 16, 20):
        assert by_key[(threads, "dynamic")] <= by_key[(threads, "static")] + 1e-12
