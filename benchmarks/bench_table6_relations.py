"""Benchmark regenerating Table VI: relation discovery from the core tensor."""

from repro.experiments import table6
from repro.experiments.report import render_table


def test_table6_relation_discovery(benchmark):
    """Report the strongest core-tensor relations between movie, year and hour."""
    result = benchmark.pedantic(
        lambda: table6.run(rank=5, n_relations=3, n_ratings=10_000, max_iterations=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Table VI - discovered relations"))
    for note in result.notes:
        print(f"note: {note}")
    assert len(result.rows) == 3
    strengths = [row["g_value"] for row in result.rows]
    assert strengths == sorted(strengths, reverse=True)
