"""Benchmark regenerating Table V: concept discovery on the MovieLens stand-in."""

from repro.experiments import table5
from repro.experiments.report import render_table


def test_table5_concept_discovery(benchmark):
    """Cluster movie factor rows into genre-like concepts and report their purity."""
    result = benchmark.pedantic(
        lambda: table5.run(rank=6, n_concepts=5, n_ratings=10_000, max_iterations=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Table V - discovered movie concepts"))
    for note in result.notes:
        print(f"note: {note}")
    assert result.rows, "at least one concept must be discovered"
    # Concepts must be genre-coherent well beyond chance (6 planted genres).
    best_share = max(row["genre_share"] for row in result.rows)
    assert best_share > 1.5 / 6.0
