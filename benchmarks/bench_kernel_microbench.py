"""Microbenchmark: seed Kronecker kernel vs. contraction kernel backends.

Unlike the figure/table benchmarks, this one measures the repository's own
perf trajectory: one ``update_factor_mode`` sweep with the seed kernel
(``kernel="kron"``) against the contraction kernel (``kernel="contracted"``)
under every available execution backend (``numpy``, ``threaded``, ``numba``
where installed) across an (nnz, rank, order) grid, with a brute-force
accuracy check on the contracted result.

Run as a pytest benchmark (small grid) or as a script::

    PYTHONPATH=src python benchmarks/bench_kernel_microbench.py [--small] [-o OUT]

which writes ``BENCH_kernels.json`` (the full default grid; ``--small``
smoke runs write ``BENCH_kernels_small.json`` instead so they never clobber
the committed full-grid record).  ``benchmarks/run_benchmarks.py`` and
``python -m repro.experiments bench-kernels`` wrap the same runner.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

from repro.experiments.report import render_table
from repro.kernels.backends import available_backends
from repro.kernels.microbench import (
    DEFAULT_GRID,
    SMALL_GRID,
    run_microbench,
    write_payload,
)


@pytest.mark.slow
def test_kernel_microbench_small_grid(benchmark):
    """Contracted kernel beats the seed kernel on every small-grid cell."""
    payload = benchmark.pedantic(
        lambda: run_microbench(grid=SMALL_GRID, repeats=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(payload["rows"], title="Kernel microbench - kron vs contracted"))
    assert payload["max_abs_error_vs_brute_force"] <= 1e-8
    for row in payload["rows"]:
        # The out-of-core contract: streamed shards reproduce the in-core
        # sweep bit for bit at matched block boundaries.
        assert row["sharded_equals_incore"] is True
        # Slack below 1.0 keeps the regression signal without making the
        # assertion flaky when a tiny cell hits scheduler noise on a loaded
        # machine; real regressions show up as order-of-magnitude drops.
        assert row["speedup"] > 0.8, f"contracted kernel regressed on {row}"
        # The recorded selection is the measured argmin, so it can never
        # name a backend that timed slower than another candidate.
        times = {
            name: row.get(
                "seconds_contracted" if name == "numpy" else f"seconds_{name}"
            )
            for name in payload["backends"]
        }
        assert times[row["backend_selected"]] == min(times.values())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the seed vs. contraction row-update kernels."
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="run the reduced smoke grid instead of the full default grid "
        "(which includes the nnz=100k acceptance cell)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a single tiny cell with one repeat (CI smoke: proves the "
        "whole bench pipeline executes in seconds; never overwrites the "
        "committed record)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="where to write the JSON payload (default: repo-root "
        "BENCH_kernels.json, or BENCH_kernels_small.json with --small)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per cell (best-of)"
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        choices=available_backends(),
        help="execution backends to time (default: all registered)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        grid = SMALL_GRID[:1]
        args.repeats = 1
    else:
        grid = SMALL_GRID if args.small else DEFAULT_GRID
    output = args.output
    if output is None:
        # Smoke/small runs get their own file so the committed full-grid
        # record is never overwritten by reduced-grid data.
        if args.smoke:
            filename = "BENCH_kernels_smoke.json"
        elif args.small:
            filename = "BENCH_kernels_small.json"
        else:
            filename = "BENCH_kernels.json"
        output = os.path.join(os.path.dirname(__file__), "..", filename)
    payload = run_microbench(grid=grid, repeats=args.repeats, backends=args.backends)
    path = write_payload(payload, os.path.normpath(output))
    print(render_table(payload["rows"], title="Kernel microbench - kron vs contracted"))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
