"""Benchmark regenerating Figure 5: the R(beta) distribution over core entries."""

from repro.experiments import figure5
from repro.experiments.report import render_table


def test_fig5_partial_error_distribution(benchmark):
    """Cumulative share of partial reconstruction error per core-entry decile."""
    result = benchmark.pedantic(
        lambda: figure5.run(rank=5, n_ratings=6000, max_iterations=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Figure 5 - cumulative R(beta) share"))
    for note in result.notes:
        print(f"note: {note}")
    shares = {row["core_entry_fraction"]: row["cumulative_error_share"] for row in result.rows}
    # A small fraction of core entries must carry a disproportionate error share.
    assert shares[0.2] > 0.3
    assert abs(shares[1.0] - 1.0) < 1e-9
