"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one figure or table of the paper at a reduced
scale (pure-Python runs of the paper's full sizes would take hours).  The
rows each benchmark prints are the same rows the corresponding experiment
module produces; the pytest-benchmark timings give the per-iteration costs
that the paper's speed figures report.
"""

from __future__ import annotations

import pytest

from repro.core import PTuckerConfig
from repro.data import generate_movielens_like, planted_tucker_tensor, random_sparse_tensor


def pytest_collection_modifyitems(config, items):
    """Benchmarks live outside tests/; keep ordering stable by path then name."""
    items.sort(key=lambda item: (str(item.fspath), item.name))


@pytest.fixture(scope="session")
def bench_sparse_tensor():
    """Medium random sparse tensor shared by the speed benchmarks."""
    return random_sparse_tensor((2000, 2000, 2000), nnz=20_000, seed=1)


@pytest.fixture(scope="session")
def bench_planted_tensor():
    """Planted low-rank tensor shared by the accuracy benchmarks."""
    return planted_tucker_tensor(
        shape=(60, 60, 40), ranks=(4, 4, 4), nnz=10_000, noise_level=0.02, seed=2
    )


@pytest.fixture(scope="session")
def bench_movielens():
    """MovieLens-style stand-in shared by the discovery benchmarks."""
    return generate_movielens_like(
        n_users=200, n_movies=100, n_years=10, n_hours=24, n_ratings=12_000, seed=3
    )


@pytest.fixture
def bench_config():
    """Default solver configuration for benchmarks (few iterations)."""
    return PTuckerConfig(ranks=(4, 4, 4), max_iterations=2, seed=0)
