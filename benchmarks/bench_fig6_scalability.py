"""Benchmarks regenerating Figure 6: data scalability of P-Tucker vs competitors.

One benchmark per panel — (a) order, (b) dimensionality, (c) number of
observable entries, (d) rank — plus per-solver timing benchmarks on a common
workload so pytest-benchmark's own statistics give the per-iteration costs
directly.
"""

import pytest

from repro.core import PTuckerConfig
from repro.experiments import figure6
from repro.experiments.harness import run_algorithm
from repro.experiments.report import render_table


def _print_panel(result, panel):
    rows = [row for row in result.rows if row["sweep"] == panel]
    print()
    print(render_table(rows, title=f"Figure 6({panel}) - time per iteration"))


@pytest.mark.parametrize("panel", ["order", "dimensionality", "nnz", "rank"])
def test_fig6_panel(benchmark, panel):
    """Run one Figure 6 sweep and report per-point, per-method iteration times."""
    result = benchmark.pedantic(
        lambda: figure6.run(panels=(panel,), small=True, max_iterations=1),
        rounds=1,
        iterations=1,
    )
    _print_panel(result, panel)
    ptucker_rows = [
        row
        for row in result.rows
        if row["algorithm"] == "P-Tucker" and not row["oom"]
    ]
    assert ptucker_rows, "P-Tucker must complete every sweep point"


@pytest.mark.parametrize(
    "algorithm", ["P-Tucker", "Tucker-CSF", "S-HOT"]
)
def test_fig6_solver_iteration_cost(benchmark, bench_sparse_tensor, algorithm):
    """Directly benchmark one ALS iteration of each scalable method."""
    config = PTuckerConfig(ranks=(5, 5, 5), max_iterations=1, seed=0)
    outcome = benchmark(run_algorithm, algorithm, bench_sparse_tensor, config)
    assert not outcome.out_of_memory
