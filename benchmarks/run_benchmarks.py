"""One-command benchmark entry point: ``python benchmarks/run_benchmarks.py``.

Runs the kernel microbench suite with small default sizes (including the
nnz=100k, rank=10, order=3 cell the perf gate tracks) and emits
``BENCH_kernels.json`` at the repository root, so the perf trajectory is
reproducible in one command.  The same runner is exposed as
``python -m repro.experiments bench-kernels``.

This is a thin alias for ``benchmarks/bench_kernel_microbench.py`` (one
implementation, two discoverable names); all flags — ``--small``,
``--repeats``, ``-o`` — pass through.  The pytest-benchmark figure/table
suite is unaffected; run it with ``pytest benchmarks/`` as before.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, _HERE)

from bench_kernel_microbench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
