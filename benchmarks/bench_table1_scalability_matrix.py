"""Benchmark regenerating Table I: the qualitative scalability matrix."""

from repro.experiments import table1
from repro.experiments.report import render_table


def test_table1_scalability_matrix(benchmark):
    """Derive the four check-marks per method from measured behaviour."""
    result = benchmark.pedantic(
        lambda: table1.run(dimensionality=30, nnz=2500, max_iterations=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Table I - scalability matrix (derived)"))
    for note in result.notes:
        print(f"note: {note}")
    by_method = {row["method"]: row for row in result.rows}
    assert all(by_method["P-Tucker"][k] for k in ("scale", "speed", "memory", "accuracy"))
