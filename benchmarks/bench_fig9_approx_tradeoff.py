"""Benchmark regenerating Figure 9: P-Tucker vs P-Tucker-Approx convergence."""

from repro.experiments import figure9
from repro.experiments.report import render_table


def test_fig9_approx_tradeoff(benchmark):
    """Per-iteration time and error of both variants on the MovieLens stand-in."""
    result = benchmark.pedantic(
        lambda: figure9.run(rank=5, n_ratings=6000, max_iterations=5),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Figure 9 - P-Tucker vs P-Tucker-Approx"))
    for note in result.notes:
        print(f"note: {note}")

    approx_rows = [r for r in result.rows if r["algorithm"] == "P-Tucker-Approx"]
    exact_rows = [r for r in result.rows if r["algorithm"] == "P-Tucker"]
    # The truncated core must shrink every iteration (the source of the speed-up).
    core_sizes = [r["core_nnz"] for r in approx_rows]
    assert all(b <= a for a, b in zip(core_sizes, core_sizes[1:]))
    # The approximate variant stays in the same accuracy ballpark as P-Tucker.
    assert approx_rows[-1]["recon_error"] <= 3.0 * exact_rows[-1]["recon_error"]
