"""Benchmark regenerating Figure 8: P-Tucker vs P-Tucker-Cache time/memory trade-off."""

import pytest

from repro.core import PTucker, PTuckerCache, PTuckerConfig
from repro.data import random_sparse_tensor
from repro.experiments import figure8
from repro.experiments.report import render_table


def test_fig8_order_sweep(benchmark):
    """Time and peak intermediate memory of both variants across tensor orders."""
    result = benchmark.pedantic(
        lambda: figure8.run(orders=(4, 5, 6), dimensionality=40, nnz=600, max_iterations=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Figure 8 - P-Tucker vs P-Tucker-Cache"))
    for note in result.notes:
        print(f"note: {note}")
    cache_memory = [
        row["peak_mem_MB"] for row in result.rows if row["algorithm"] == "P-Tucker-Cache"
    ]
    base_memory = [
        row["peak_mem_MB"] for row in result.rows if row["algorithm"] == "P-Tucker"
    ]
    assert all(c > b for c, b in zip(cache_memory, base_memory))


@pytest.mark.parametrize("solver_cls", [PTucker, PTuckerCache])
def test_fig8_variant_iteration_cost(benchmark, solver_cls):
    """Direct per-fit timing of the two variants on a fixed higher-order tensor."""
    tensor = random_sparse_tensor((40,) * 5, nnz=600, seed=4)
    config = PTuckerConfig(ranks=(3,), max_iterations=1, seed=0)
    result = benchmark(lambda: solver_cls(config).fit(tensor))
    assert result.trace.n_iterations == 1
