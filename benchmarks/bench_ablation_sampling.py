"""Ablation: entry sampling (the paper's future-work extension).

Measures the time/accuracy trade-off of P-Tucker-Sampled as the sample
fraction shrinks: factor updates get cheaper roughly in proportion to the
fraction, while the held-out RMSE degrades gracefully.
"""

import numpy as np

from repro.core import PTucker, PTuckerConfig, PTuckerSampled
from repro.data import planted_tucker_tensor
from repro.experiments.report import render_table


def test_ablation_sampling_fraction(benchmark):
    """Sweep the sample fraction and report time per iteration and test RMSE."""

    def run():
        planted = planted_tucker_tensor(
            shape=(300, 300, 60), ranks=(4, 4, 4), nnz=40_000, noise_level=0.02, seed=1
        )
        rng = np.random.default_rng(0)
        train, test = planted.tensor.split(0.9, rng=rng)
        config = PTuckerConfig(ranks=(4, 4, 4), max_iterations=4, seed=0, tolerance=0.0)

        rows = []
        exact = PTucker(config).fit(train)
        rows.append(
            {
                "sample_fraction": 1.0,
                "sec/iter": exact.trace.mean_iteration_seconds,
                "test_rmse": exact.test_rmse(test),
            }
        )
        for fraction in (0.5, 0.25, 0.1):
            result = PTuckerSampled(config, sample_fraction=fraction).fit(train)
            rows.append(
                {
                    "sample_fraction": fraction,
                    "sec/iter": result.trace.mean_iteration_seconds,
                    "test_rmse": result.test_rmse(test),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation - sampling fraction trade-off"))
    # Sampling a quarter of the entries must cut the factor-update cost
    # noticeably while keeping the RMSE in the same order of magnitude.
    full = rows[0]
    quarter = next(row for row in rows if row["sample_fraction"] == 0.25)
    assert quarter["sec/iter"] < full["sec/iter"]
    assert quarter["test_rmse"] < 10 * full["test_rmse"]
