"""Benchmark: serving-layer top-K and predict latency/throughput.

Measures the repository's serving hot paths (see :mod:`repro.serve.bench`):
batched vs. unbatched rank-space top-K at serving item counts (with a
bitwise identity check between the two), the naive per-entry predict loop
those paths replace, cold vs. warm projection-cache latency, and batched
point predictions.

Run as a pytest benchmark (small grid) or as a script::

    PYTHONPATH=src python benchmarks/bench_serving.py [--small] [-o OUT]

which writes ``BENCH_serving.json`` (the full default grid, including the
items=200k/rank=256 acceptance cell where batch-1024 top-K clears 10x the
unbatched per-query loop on one CPU; ``--small`` smoke runs write
``BENCH_serving_small.json`` instead so they never clobber the committed
full-grid record).  Column glossary: ``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

from repro.experiments.report import render_table
from repro.serve.bench import (
    DEFAULT_GRID,
    SMALL_GRID,
    run_serving_bench,
    write_payload,
)


@pytest.mark.slow
def test_serving_bench_small_grid(benchmark):
    """Batched top-K matches the unbatched loop bitwise and beats naive."""
    payload = benchmark.pedantic(
        lambda: run_serving_bench(
            grid=SMALL_GRID,
            workload_queries=256,
            unbatched_queries=32,
            repeats=1,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            payload["rows"], title="Serving - batched vs unbatched vs naive"
        )
    )
    for row in payload["rows"]:
        # The identity contract: batching is a pure throughput lever, it
        # can never change a returned item or score.
        if "matches_unbatched" in row:
            assert row["matches_unbatched"] is True, row
        # Every serving path beats the naive per-entry predict loop by an
        # order of magnitude, even on the smoke grid's tiny item modes.
        assert row["speedup_vs_naive"] > 10.0, row
    for row in payload["projection_cache"]:
        assert row["cache_hit_rate"] >= 0.5, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the serving layer's top-K and predict hot paths."
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="run the reduced smoke grid instead of the full default grid "
        "(which includes the items=200k/rank=256 acceptance cell)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a single tiny cell with a reduced workload (CI smoke: "
        "proves the bench pipeline executes in seconds; never overwrites "
        "the committed record)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="where to write the JSON payload (default: repo-root "
        "BENCH_serving.json, or BENCH_serving_small.json with --small)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timing repeats per pass"
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=1024,
        help="workload size per cell for the batched passes",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        grid = SMALL_GRID[:1]
        args.repeats = 1
        args.queries = min(args.queries, 128)
        unbatched = 16
    else:
        grid = SMALL_GRID if args.small else DEFAULT_GRID
        unbatched = 64
    output = args.output
    if output is None:
        # Smoke/small runs get their own file so the committed full-grid
        # record is never overwritten by reduced-grid data.
        if args.smoke:
            filename = "BENCH_serving_smoke.json"
        elif args.small:
            filename = "BENCH_serving_small.json"
        else:
            filename = "BENCH_serving.json"
        output = os.path.join(os.path.dirname(__file__), "..", filename)
    payload = run_serving_bench(
        grid=grid,
        workload_queries=args.queries,
        unbatched_queries=min(unbatched, args.queries),
        repeats=args.repeats,
    )
    path = write_payload(payload, os.path.normpath(output))
    print(
        render_table(
            payload["rows"], title="Serving - batched vs unbatched vs naive"
        )
    )
    print(
        render_table(
            payload["projection_cache"], title="Serving - projection cache"
        )
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
