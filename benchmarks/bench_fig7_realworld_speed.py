"""Benchmark regenerating Figure 7: speed on the real-world tensor stand-ins."""

from repro.experiments import figure7
from repro.experiments.report import render_table


def test_fig7_realworld_speed(benchmark):
    """Per-dataset, per-method time per iteration (O.O.M. marked like empty bars)."""
    result = benchmark.pedantic(
        lambda: figure7.run(scale=0.2, max_iterations=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Figure 7 - time per iteration by dataset"))
    for note in result.notes:
        print(f"note: {note}")
    datasets = {row["dataset"] for row in result.rows}
    assert datasets == {"MovieLens", "Yahoo-music", "Video", "Image"}
    ptucker_ok = [
        row for row in result.rows if row["algorithm"] == "P-Tucker" and not row["oom"]
    ]
    assert len(ptucker_ok) == 4, "P-Tucker must factorize every dataset"
