"""Ablations: Tucker rank and L2 regularization strength.

Two design knobs DESIGN.md calls out:

* the rank J controls the capacity/cost trade-off (the J^N term of Table III),
* the regularization λ (paper default 0.01) controls over-fitting on sparse
  observations.

Both are swept on a planted tensor with a held-out split.
"""

import numpy as np

from repro.core import PTucker, PTuckerConfig
from repro.data import planted_tucker_tensor
from repro.experiments.report import render_table


def _split_problem():
    planted = planted_tucker_tensor(
        shape=(120, 100, 40), ranks=(4, 4, 4), nnz=15_000, noise_level=0.05, seed=2
    )
    rng = np.random.default_rng(3)
    return planted.tensor.split(0.9, rng=rng)


def test_ablation_rank(benchmark):
    """Sweep the Tucker rank: cost should grow with J, RMSE should bottom out near the planted rank."""

    def run():
        train, test = _split_problem()
        rows = []
        for rank in (2, 4, 6, 8):
            config = PTuckerConfig(ranks=(rank,) * 3, max_iterations=5, seed=0)
            result = PTucker(config).fit(train)
            rows.append(
                {
                    "rank": rank,
                    "sec/iter": result.trace.mean_iteration_seconds,
                    "train_error": result.trace.errors[-1],
                    "test_rmse": result.test_rmse(test),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation - Tucker rank"))
    by_rank = {row["rank"]: row for row in rows}
    assert by_rank[8]["sec/iter"] > by_rank[2]["sec/iter"]
    assert by_rank[4]["test_rmse"] < by_rank[2]["test_rmse"]


def test_ablation_regularization(benchmark):
    """Sweep λ: extreme values must hurt the held-out RMSE relative to moderate ones."""

    def run():
        train, test = _split_problem()
        rows = []
        for lam in (0.0, 0.01, 1.0, 100.0):
            config = PTuckerConfig(
                ranks=(4, 4, 4), max_iterations=5, seed=0, regularization=lam
            )
            result = PTucker(config).fit(train)
            rows.append(
                {
                    "lambda": lam,
                    "train_error": result.trace.errors[-1],
                    "test_rmse": result.test_rmse(test),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation - regularization strength"))
    by_lambda = {row["lambda"]: row for row in rows}
    # The paper's default (0.01) must beat a heavily over-regularised model.
    assert by_lambda[0.01]["test_rmse"] < by_lambda[100.0]["test_rmse"]
