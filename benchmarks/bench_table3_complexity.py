"""Benchmark regenerating Table III: time/memory complexity checks."""

from repro.experiments import table3
from repro.experiments.report import render_table


def test_table3_time_scaling(benchmark):
    """P-Tucker per-iteration time versus |Omega| (near-linear expected)."""
    rows = benchmark.pedantic(
        lambda: table3.time_scaling_rows(nnz_values=(1000, 2000, 4000), dimensionality=250),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Table III - P-Tucker time vs |Omega|"))
    assert rows[-1]["sec/iter"] > rows[0]["sec/iter"]


def test_table3_memory_model(benchmark):
    """Measured peak intermediate memory versus the closed-form Table III model."""
    rows = benchmark.pedantic(
        lambda: table3.memory_model_rows(dimensionality=150, nnz=3000, rank=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Table III - measured vs model intermediate memory"))
    measured = {row["algorithm"]: row["measured_MB"] for row in rows}
    assert measured["P-Tucker"] <= min(v for k, v in measured.items() if k != "P-Tucker")
