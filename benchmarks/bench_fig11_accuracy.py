"""Benchmark regenerating Figure 11: accuracy on the real-world tensor stand-ins."""

import math

from repro.experiments import figure11
from repro.experiments.report import render_table


def test_fig11_accuracy(benchmark):
    """Reconstruction error and test RMSE per dataset and method."""
    result = benchmark.pedantic(
        lambda: figure11.run(scale=0.2, max_iterations=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Figure 11 - accuracy by dataset"))
    for note in result.notes:
        print(f"note: {note}")

    # P-Tucker must have the lowest test RMSE among the methods that finished,
    # on every rating dataset (the paper's 1.4-4.8x accuracy gap).
    for dataset in ("MovieLens", "Yahoo-music"):
        rows = [
            r
            for r in result.rows
            if r["dataset"] == dataset and not r["oom"] and not math.isnan(r["test_rmse"])
        ]
        best = min(rows, key=lambda r: r["test_rmse"])
        ptucker = next(r for r in rows if r["algorithm"] == "P-Tucker")
        assert ptucker["test_rmse"] <= 1.1 * best["test_rmse"]
