"""Benchmark regenerating Figure 10: thread scalability and scheduling ablation."""

from repro.experiments import figure10
from repro.experiments.report import render_table


def test_fig10_thread_scalability(benchmark):
    """Speed-up and memory versus the number of threads (simulated from workloads)."""
    result = benchmark.pedantic(
        lambda: figure10.run(
            thread_counts=(1, 2, 4, 8, 16, 20),
            dimensionality=2000,
            nnz=20_000,
            max_iterations=1,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result.rows, title="Figure 10 - speed-up and memory vs threads"))
    for note in result.notes:
        print(f"note: {note}")

    speedups = {row["threads"]: row["speedup"] for row in result.rows}
    assert speedups[1] == 1.0 or abs(speedups[1] - 1.0) < 1e-6
    # Near-linear scaling: at 16 threads at least half the ideal speed-up.
    assert speedups[16] > 8.0
    memory = {row["threads"]: row["memory_MB"] for row in result.rows}
    assert memory[20] > memory[1]
