"""Quickstart: factorize a sparse tensor with P-Tucker and predict missing values.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PTucker, PTuckerConfig
from repro.data import planted_tucker_tensor


def main() -> None:
    # 1. Build a sparse tensor.  Here we plant a low-rank Tucker model plus
    #    noise so we know what the "right answer" looks like; with your own
    #    data use repro.tensor.SparseTensor(indices, values, shape) or
    #    repro.tensor.load_text("ratings.tns").
    planted = planted_tucker_tensor(
        shape=(200, 150, 30),
        ranks=(5, 5, 3),
        nnz=30_000,
        noise_level=0.02,
        seed=7,
    )
    tensor = planted.tensor
    print(f"input tensor: {tensor}")

    # 2. Hold out 10% of the observed entries to measure prediction quality,
    #    exactly as the paper's accuracy experiments do.
    rng = np.random.default_rng(0)
    train, test = tensor.split(train_fraction=0.9, rng=rng)

    # 3. Configure and run P-Tucker.
    config = PTuckerConfig(
        ranks=(5, 5, 3),
        regularization=0.01,
        max_iterations=15,
        tolerance=1e-4,
        seed=0,
    )
    result = PTucker(config).fit(train)
    print(result.summary())
    print("reconstruction error per iteration:")
    for record in result.trace.records:
        print(
            f"  iter {record.iteration:2d}: error={record.reconstruction_error:10.4f} "
            f"({record.seconds:.3f}s)"
        )

    # 4. Evaluate on the held-out entries and predict a few missing cells.
    print(f"test RMSE: {result.test_rmse(test):.4f}")
    probe = np.array([[0, 0, 0], [10, 20, 5], [199, 149, 29]])
    predictions = result.predict(probe)
    for index, value in zip(probe, predictions):
        position = tuple(int(i) for i in index)
        print(f"predicted value at {position}: {value:.4f}")


if __name__ == "__main__":
    main()
