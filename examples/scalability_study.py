"""Scalability study: sweep tensor attributes and compare methods.

A scripted version of the paper's Figure 6 / Figure 10 experiments at a size
that runs in a couple of minutes on a laptop: it sweeps the number of
observed entries and the rank, prints the per-iteration time of each method,
and reports the simulated thread-scalability of P-Tucker.

Run with:  python examples/scalability_study.py
"""

from __future__ import annotations

from repro.core import PTucker, PTuckerConfig
from repro.data import nnz_sweep, rank_sweep, random_sparse_tensor
from repro.experiments.harness import run_algorithms
from repro.experiments.report import render_table
from repro.parallel import ParallelSimulator

METHODS = ("P-Tucker", "Tucker-CSF", "S-HOT")


def sweep_table(sweep, max_iterations: int = 2) -> None:
    rows = []
    for workload in sweep.workloads:
        tensor = workload.build()
        config = PTuckerConfig(
            ranks=workload.ranks, max_iterations=max_iterations, seed=workload.seed
        )
        for outcome in run_algorithms(METHODS, tensor, config):
            rows.append(
                {
                    "point": workload.name,
                    "algorithm": outcome.algorithm,
                    "sec/iter": outcome.seconds_per_iteration,
                }
            )
    print(render_table(rows, title=f"sweep over {sweep.attribute}"))
    print()


def thread_study() -> None:
    tensor = random_sparse_tensor((5000, 5000, 5000), nnz=50_000, seed=9)
    config = PTuckerConfig(ranks=(5, 5, 5), max_iterations=2, seed=0)
    result = PTucker(config).fit(tensor)
    simulator = ParallelSimulator(
        result.scheduler,
        serial_seconds=result.trace.mean_iteration_seconds,
        rank=5,
    )
    rows = []
    for threads in (1, 2, 4, 8, 16, 20):
        estimate = simulator.estimate(threads)
        rows.append(
            {
                "threads": threads,
                "speedup": estimate.speedup,
                "sec/iter": estimate.parallel_seconds,
            }
        )
    print(render_table(rows, title="simulated thread scalability of P-Tucker"))
    gain = simulator.scheduling_gain(20)
    print(f"dynamic vs static scheduling gain at 20 threads: {gain:.2f}x")


def main() -> None:
    sweep_table(nnz_sweep(nnzs=(2000, 8000, 32_000), dimensionality=20_000, rank=5))
    sweep_table(rank_sweep(ranks=(3, 5, 7, 9), dimensionality=5000, nnz=20_000))
    thread_study()


if __name__ == "__main__":
    main()
