"""Concept and relation discovery on a MovieLens-style rating tensor.

Reproduces the Section V workflow of the paper: factorize a
(user, movie, year, hour) rating tensor with P-Tucker, cluster the movie
factor rows into genre-like concepts (Table V), and read strong
(movie, year, hour) relations out of the core tensor (Table VI).

Run with:  python examples/movielens_discovery.py
"""

from __future__ import annotations

import numpy as np

from repro import PTucker, PTuckerConfig
from repro.data import generate_movielens_like, movie_titles
from repro.discovery import concept_alignment, discover_concepts, discover_relations

MOVIE_MODE = 1
MODE_NAMES = ("user", "movie", "year", "hour")


def main() -> None:
    # The real MovieLens tensor is replaced by a synthetic stand-in with
    # planted genres and (genre, year)/(genre, hour) affinities, so we can
    # check the discoveries against a known ground truth.
    dataset = generate_movielens_like(
        n_users=400,
        n_movies=150,
        n_years=12,
        n_hours=24,
        n_ratings=40_000,
        seed=3,
    )
    tensor = dataset.tensor
    print(f"rating tensor: {tensor}")

    config = PTuckerConfig(ranks=(8, 8, 5, 5), max_iterations=8, seed=0)
    result = PTucker(config).fit(tensor)
    print(result.summary())

    # ------------------------------------------------------------------
    # Concept discovery (Table V): cluster movie factor rows.
    # ------------------------------------------------------------------
    titles = movie_titles(dataset)
    discovery = discover_concepts(result, mode=MOVIE_MODE, n_concepts=6, seed=0)
    print("\n== discovered movie concepts ==")
    for concept in discovery.concepts:
        if concept.size == 0:
            continue
        genres = dataset.movie_genre[concept.member_indices]
        dominant = int(np.argmax(np.bincount(genres, minlength=dataset.n_genres)))
        print(
            f"concept {concept.concept_id} (size {concept.size}, dominant genre: "
            f"{dataset.genre_names[dominant]})"
        )
        for index in concept.representative_indices[:3]:
            print(f"    {titles[int(index)]}")
    purity = concept_alignment(discovery, dataset.movie_genre)
    print(f"clustering purity vs planted genres: {purity:.2f}")

    # ------------------------------------------------------------------
    # Relation discovery (Table VI): inspect the largest core entries.
    # ------------------------------------------------------------------
    relations = discover_relations(result, n_relations=3, modes=(1, 2, 3))
    print("\n== discovered relations ==")
    hour_labels = [f"{h:02d}:00" for h in range(24)]
    year_labels = [f"year+{y}" for y in range(12)]
    for relation in relations:
        print(
            relation.describe(
                mode_names=MODE_NAMES,
                attribute_labels={2: year_labels, 3: hour_labels},
            )
        )


if __name__ == "__main__":
    main()
