"""Rating prediction: P-Tucker versus zero-filling baselines.

Demonstrates the paper's central accuracy claim (Figure 11): on a partially
observed rating tensor, a method that models only the observed entries
(P-Tucker) predicts held-out ratings far better than HOOI-style methods that
treat every missing cell as a zero.

Run with:  python examples/recommender_completion.py
"""

from __future__ import annotations

import numpy as np

from repro import PTucker, PTuckerApprox, PTuckerConfig
from repro.baselines import SHot, TuckerAls, TuckerWopt
from repro.data import generate_movielens_like


def main() -> None:
    dataset = generate_movielens_like(
        n_users=300, n_movies=120, n_years=10, n_hours=24, n_ratings=25_000, seed=5
    )
    rng = np.random.default_rng(1)
    train, test = dataset.tensor.split(train_fraction=0.9, rng=rng)
    print(f"train: {train.nnz} ratings, test: {test.nnz} ratings")

    config = PTuckerConfig(ranks=(8, 8, 4, 4), max_iterations=6, seed=0)
    contenders = [
        ("P-Tucker", PTucker(config)),
        ("P-Tucker-Approx", PTuckerApprox(config)),
        ("Tucker-ALS (zero-fill)", TuckerAls(config)),
        ("S-HOT (zero-fill)", SHot(config)),
        ("Tucker-wOpt", TuckerWopt(config.with_updates(max_iterations=15))),
    ]

    print(f"{'method':<26} {'train error':>12} {'test RMSE':>10} {'sec/iter':>9}")
    baseline_rmse = None
    for name, solver in contenders:
        result = solver.fit(train)
        rmse = result.test_rmse(test)
        error = result.trace.errors[-1]
        seconds = result.trace.mean_iteration_seconds
        print(f"{name:<26} {error:12.4f} {rmse:10.4f} {seconds:9.3f}")
        if name == "P-Tucker":
            baseline_rmse = rmse

    # Show a handful of individual predictions from the P-Tucker model.
    result = PTucker(config).fit(train)
    sample = test.indices[:5]
    predicted = result.predict(sample)
    print("\nsample predictions (P-Tucker):")
    for index, truth, guess in zip(sample, test.values[:5], predicted):
        user, movie, year, hour = (int(i) for i in index)
        print(
            f"  user {user:3d}, movie {movie:3d}, year {year:2d}, hour {hour:2d}: "
            f"actual {truth:.3f}, predicted {guess:.3f}"
        )

    if baseline_rmse is not None:
        print(
            "\nP-Tucker models only the observed ratings, so it avoids the "
            "zero-fill bias that inflates the baselines' RMSE."
        )


if __name__ == "__main__":
    main()
