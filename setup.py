"""Setup shim.

The environment for this reproduction has no ``wheel`` package and no network
access, so PEP 517 editable installs (which build a wheel) fail.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
legacy ``setup.py develop`` path.

``pip install .[numba]`` pulls in the optional JIT stack that enables the
``numba`` kernel backend (see :mod:`repro.kernels.backends`); without it the
backend name silently resolves to the NumPy reference.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ptucker",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    extras_require={
        "numba": ["numba>=0.57"],
    },
)
