"""Shared retry machinery: deadlines, backoff with decorrelated jitter.

Every layer that survives transient failure needs the same three pieces —
a monotonic **deadline** clock ("how long may this whole operation take"),
a **backoff** schedule ("how long to wait before the next attempt"), and a
bounded **retry** driver that ties them together.  Before this module each
consumer grew its own: :mod:`repro.parallel.executor` counted bare
``max_retries``, ad-hoc polling loops slept fixed intervals.  They now
share one implementation, so the semantics (attempt counting, jitter,
deadline clamping) cannot drift between layers.

The backoff schedule is exponential with *decorrelated jitter* (the
AWS-architecture-blog variant): each delay is drawn uniformly from
``[base, previous * multiplier]`` and clamped to ``cap``.  Compared to
plain exponential backoff it decorrelates retry storms — two supervisors
that lost workers at the same instant re-dispatch at different times —
while keeping the expected delay growth exponential.

:class:`Deadline` is a monotonic-clock budget: ``Deadline.after(5.0)``
expires five seconds from now, ``Deadline.none()`` never does, and
``clamp()`` bounds any poll/sleep interval so a loop can never oversleep
its budget.  :func:`retry` is the generic driver used for idempotent
single calls; structured loops (the fabric supervisor's per-task
re-dispatch) consume :class:`BackoffPolicy` and :class:`Deadline`
directly.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type

from ..exceptions import ReproError

#: Default backoff bounds (seconds): first delay, largest delay.
DEFAULT_BASE = 0.05
DEFAULT_CAP = 5.0
DEFAULT_MULTIPLIER = 3.0


class RetryExhaustedError(ReproError, RuntimeError):
    """All attempts (or the deadline) were spent without success.

    ``__cause__`` carries the last underlying exception when there was
    one; :func:`retry` re-raises the *original* exception instead when it
    is available, so this class surfaces only for deadline expiry between
    attempts.
    """


class Deadline:
    """A monotonic-clock time budget shared across retries and polls.

    ``seconds=None`` is the unbounded deadline: it never expires and
    :meth:`remaining` returns ``None``.  All arithmetic uses
    ``time.monotonic`` so wall-clock jumps cannot expire (or revive) a
    budget.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: Optional[float]) -> None:
        self._expires_at = (
            None if seconds is None else time.monotonic() + float(seconds)
        )

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds)

    @classmethod
    def none(cls) -> "Deadline":
        """The unbounded deadline (never expires)."""
        return cls(None)

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative), or ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def clamp(self, interval: float) -> float:
        """``interval`` bounded by the remaining budget (>= 0)."""
        remaining = self.remaining()
        if remaining is None:
            return max(0.0, float(interval))
        return max(0.0, min(float(interval), remaining))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        remaining = self.remaining()
        if remaining is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={remaining:.3f}s)"


def decorrelated_jitter(
    base: float, cap: float, previous: float, rng: random.Random,
    multiplier: float = DEFAULT_MULTIPLIER,
) -> float:
    """One decorrelated-jitter delay: ``min(cap, U(base, previous * m))``."""
    high = max(base, previous * multiplier)
    return min(cap, rng.uniform(base, high))


class BackoffPolicy:
    """A stateful delay schedule: exponential growth, decorrelated jitter.

    :meth:`next_delay` advances the schedule; :meth:`reset` starts over
    (call it after a success so the next failure backs off from the
    base again).  ``jitter="none"`` gives the deterministic exponential
    schedule ``base * multiplier**n`` (used by tests that pin timing);
    ``seed`` makes the jittered schedule reproducible.
    """

    def __init__(
        self,
        base: float = DEFAULT_BASE,
        cap: float = DEFAULT_CAP,
        multiplier: float = DEFAULT_MULTIPLIER,
        jitter: str = "decorrelated",
        seed: Optional[int] = None,
    ) -> None:
        if base <= 0:
            raise ValueError(f"backoff base must be positive, got {base}")
        if cap < base:
            raise ValueError(f"backoff cap {cap} is below base {base}")
        if jitter not in ("decorrelated", "none"):
            raise ValueError(f"unknown jitter mode {jitter!r}")
        self.base = float(base)
        self.cap = float(cap)
        self.multiplier = float(multiplier)
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._previous = 0.0

    def next_delay(self) -> float:
        """The next delay in seconds, advancing the schedule."""
        if self.jitter == "none":
            delay = self.base if self._previous == 0.0 else min(
                self.cap, self._previous * self.multiplier
            )
        else:
            delay = decorrelated_jitter(
                self.base,
                self.cap,
                self._previous if self._previous else self.base,
                self._rng,
                self.multiplier,
            )
        self._previous = delay
        return delay

    def reset(self) -> None:
        """Restart the schedule from the base delay."""
        self._previous = 0.0


def retry(
    fn: Callable[[], object],
    *,
    attempts: int = 3,
    backoff: Optional[BackoffPolicy] = None,
    deadline: Optional[Deadline] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> object:
    """Call ``fn`` until it succeeds, the attempts run out, or the deadline.

    ``attempts`` is the total number of calls (not retries), so
    ``attempts=1`` means "no retry".  Between attempts the next
    ``backoff`` delay — clamped to the remaining ``deadline`` — is slept.
    Exceptions not matching ``retry_on`` propagate immediately (a
    deterministic bug repeats; retrying it only repeats the failure).
    On exhaustion the *last* exception is re-raised; if the deadline
    expired with attempts left, :class:`RetryExhaustedError` chains it.
    ``on_retry(attempt, exc)`` observes each failed attempt (logging,
    counters).
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    backoff = backoff if backoff is not None else BackoffPolicy()
    deadline = deadline if deadline is not None else Deadline.none()
    last: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:  # noqa: PERF203 - retry loop by design
            last = exc
            if on_retry is not None:
                on_retry(attempt, exc)
            if attempt == attempts:
                raise
            if deadline.expired:
                raise RetryExhaustedError(
                    f"deadline expired after {attempt} of {attempts} attempts"
                ) from exc
            sleep(deadline.clamp(backoff.next_delay()))
    raise RetryExhaustedError("unreachable") from last  # pragma: no cover
