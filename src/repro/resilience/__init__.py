"""Fault tolerance: atomic on-disk writes and crash-safe checkpoint/resume.

Long fits over out-of-core shard stores run for hours; this package is the
durability substrate that makes them interruptible.  Two halves:

* :mod:`repro.resilience.atomic` — the write-tmp, fsync, rename discipline
  (:func:`~repro.resilience.atomic.atomic_open` and friends) used by every
  durable artifact in the library: shard-store manifests and shard files,
  ``.rcoo`` containers, fitted ``.npz`` models and checkpoint files.  A
  crash at any instant leaves either the complete old file or the complete
  new file, never a torn one.
* :mod:`repro.resilience.checkpoint` — versioned per-iteration fit
  checkpoints (:class:`~repro.resilience.checkpoint.CheckpointManager`):
  factors + core + convergence trace, each file SHA-256-checksummed, the
  manifest written last, so a checkpoint is either complete and verifiable
  or invisible.  Resuming continues the trajectory bitwise-identically to
  an uninterrupted fit; corruption raises
  :class:`~repro.exceptions.DataFormatError` naming the file and the last
  valid checkpoint to fall back to.

Wire it with ``PTuckerConfig(checkpoint_dir=..., checkpoint_every=...,
resume=...)`` or the CLI ``fit --checkpoint-dir DIR`` / ``--resume``.

A third half, :mod:`repro.resilience.retry`, is the shared *transient
failure* vocabulary: :class:`~repro.resilience.retry.Deadline` wall-clock
budgets, :class:`~repro.resilience.retry.BackoffPolicy` exponential
backoff with decorrelated jitter, and the
:func:`~repro.resilience.retry.retry` driver.  The execution fabric
(:mod:`repro.fabric`) schedules worker respawns and task re-dispatches
with it, and :func:`repro.parallel.executor.parallel_update_factor_mode`
inherits the same policy through the fabric.
"""

from .retry import (
    BackoffPolicy,
    Deadline,
    RetryExhaustedError,
    decorrelated_jitter,
    retry,
)
from .atomic import (
    TMP_SUFFIX,
    atomic_open,
    atomic_save_array,
    atomic_write_bytes,
    atomic_write_json,
    fsync_directory,
    fsync_file,
    is_tmp_path,
    sha256_file,
    tmp_path_for,
)

#: Names served lazily from :mod:`repro.resilience.checkpoint`.  That module
#: imports :mod:`repro.core` (for the convergence trace), while low-level
#: writers (:mod:`repro.tensor.io`, :mod:`repro.shards.store`) import this
#: package for the atomic helpers — loading checkpoint eagerly here would
#: close an import cycle through ``repro.core``.
_CHECKPOINT_EXPORTS = (
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointManager",
    "CheckpointState",
    "fit_state_digest",
    "resume_state",
)


def __getattr__(name: str):
    if name in _CHECKPOINT_EXPORTS:
        from . import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BackoffPolicy",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointManager",
    "CheckpointState",
    "Deadline",
    "RetryExhaustedError",
    "TMP_SUFFIX",
    "decorrelated_jitter",
    "retry",
    "atomic_open",
    "atomic_save_array",
    "atomic_write_bytes",
    "atomic_write_json",
    "fit_state_digest",
    "fsync_directory",
    "fsync_file",
    "is_tmp_path",
    "resume_state",
    "sha256_file",
    "tmp_path_for",
]
