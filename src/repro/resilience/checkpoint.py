"""Crash-safe, versioned fit checkpoints: save, validate, resume.

A long P-Tucker fit over a billion-entry shard store runs for hours; a
SIGKILL at iteration 37 of 50 must not throw the trajectory away.  The
:class:`CheckpointManager` writes one directory per checkpointed
iteration::

    <dir>/iter0000007/
        factor0.npy ... factorN.npy   # factor matrices entering iter 8
        core.npy                      # core tensor entering iter 8
        trace.json                    # convergence records + verdict
        manifest.json                 # written LAST; sha256 per file

Every data file is written through the atomic rename helpers of
:mod:`repro.resilience.atomic` and checksummed; the manifest — which
names every file with its SHA-256 and byte size — is written last, so a
crash mid-checkpoint leaves a directory *without* a manifest, which the
loader simply ignores.  A checkpoint is therefore either complete and
verifiable or invisible; there is no torn state to misread.

Resuming restores the factor matrices, core and convergence trace and
re-enters the ALS loop at ``iteration + 1``.  The per-iteration update is
deterministic given that state (the RNG only seeds the *initial* factors,
which the checkpoint supersedes), so a resumed fit continues the
trajectory **bitwise-identically** to an uninterrupted one — the chaos
tests kill fits at random iterations and assert exact equality of the
final model.  A ``config_digest`` recorded in the manifest pins the
trajectory-critical hyper-parameters (ranks, regularization, seed,
backend, block size, orthogonalization) plus the data fingerprint, so
resuming against different data or maths fails loudly instead of
continuing a different fit; stopping-only knobs (``max_iterations``,
``tolerance``, ``min_iterations``) are deliberately excluded so a resume
may extend or shorten training.

With ``diff=True`` the manager stores successive factor states as
**low-rank R@C diffs** (:mod:`repro.updates.lowrank`): after one full
base checkpoint, each save writes only the rows that changed since the
previous save (``factorN.rows.npy`` + ``factorN.diff.npy``) plus the
full core and trace, and records ``base_iteration`` in its manifest.
Loading resolves the chain recursively — every link verified — and
reconstructs factors **bitwise-equal** to what a full checkpoint would
have held, so ``fit --resume`` works identically on chains.  ALS rewrites
most rows every sweep, but targeted incremental updates touch a handful,
which is where the inferred rank (and the saved bytes) collapse.

Corruption is diagnosed, never silently repaired: loading a checkpoint
whose file fails its checksum (bit flip) or size (truncation) raises
:class:`~repro.exceptions.DataFormatError` naming the offending file
*and* the newest earlier checkpoint that still validates, so the caller
knows exactly what to fall back to.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.trace import ConvergenceTrace, IterationRecord
from ..exceptions import DataFormatError
from .atomic import atomic_save_array, atomic_write_json, sha256_file

#: ``format`` field value identifying a checkpoint manifest.
CHECKPOINT_FORMAT = "repro-checkpoint"

#: Current checkpoint schema version.
CHECKPOINT_VERSION = 1

#: Manifest file name inside one checkpoint directory (written last).
MANIFEST_NAME = "manifest.json"

#: Checkpoint directory name pattern (``iter0000007``).
_ITER_DIR_RE = re.compile(r"^iter(\d{7})$")


def _iter_dir_name(iteration: int) -> str:
    return f"iter{int(iteration):07d}"


def fit_state_digest(
    shape: Sequence[int],
    nnz: int,
    ranks: Sequence[int],
    regularization: float,
    seed: Optional[int],
    orthogonalize: bool,
    backend: object,
    block_size: int,
    entries_sha256: Optional[str] = None,
) -> str:
    """Digest of everything that fixes a fit's numerical trajectory.

    Two fits with equal digests walk bit-for-bit the same factor/core
    sequence, so a checkpoint of one may seed the other.  Stopping-only
    knobs (``max_iterations``/``tolerance``/``min_iterations``) are
    excluded on purpose: resuming with a higher iteration cap *extends*
    the same trajectory, which is a feature, not a mismatch.  ``backend``
    accepts a name or a backend instance (its ``name`` is digested);
    every registered backend is bitwise-equal anyway, so this is a
    belt-and-braces pin, not a numerical necessity.
    """
    payload = {
        "format": CHECKPOINT_FORMAT,
        "shape": [int(s) for s in shape],
        "nnz": int(nnz),
        "ranks": [int(r) for r in ranks],
        "regularization": float(regularization),
        "seed": None if seed is None else int(seed),
        "orthogonalize": bool(orthogonalize),
        "backend": getattr(backend, "name", None) or str(backend),
        "block_size": int(block_size),
        "entries_sha256": entries_sha256,
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _trace_to_json(trace: ConvergenceTrace) -> Dict[str, object]:
    return {
        "records": [
            {
                "iteration": r.iteration,
                "reconstruction_error": r.reconstruction_error,
                "loss": r.loss,
                "seconds": r.seconds,
                "core_nnz": r.core_nnz,
            }
            for r in trace.records
        ],
        "converged": trace.converged,
        "stop_reason": trace.stop_reason,
    }


def _trace_from_json(payload: Dict[str, object]) -> ConvergenceTrace:
    trace = ConvergenceTrace()
    for record in payload["records"]:
        trace.add(
            IterationRecord(
                iteration=int(record["iteration"]),
                reconstruction_error=float(record["reconstruction_error"]),
                loss=float(record["loss"]),
                seconds=float(record["seconds"]),
                core_nnz=(
                    None
                    if record.get("core_nnz") is None
                    else int(record["core_nnz"])
                ),
            )
        )
    trace.converged = bool(payload["converged"])
    trace.stop_reason = str(payload["stop_reason"])
    return trace


@dataclass
class CheckpointState:
    """Everything a fit loop needs to continue from iteration ``iteration + 1``."""

    iteration: int
    factors: List[np.ndarray]
    core: np.ndarray
    trace: ConvergenceTrace
    config_digest: str


class CheckpointManager:
    """Versioned per-iteration fit checkpoints under one directory.

    Parameters
    ----------
    directory:
        Root of the checkpoint tree (created on first save).
    every:
        Save every ``every``-th iteration (the fit loop also forces a
        save on its final iteration, so the last state is always
        recoverable regardless of the cadence).
    diff:
        Store factor states as low-rank row diffs against the previous
        save of this manager instance.  The first save of a run (and the
        first after a resume) is always a full checkpoint, so every chain
        is anchored within the process that wrote it.
    """

    def __init__(self, directory: str, every: int = 1, diff: bool = False) -> None:
        if every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self.directory = os.fspath(directory)
        self.every = int(every)
        self.diff = bool(diff)
        self._diff_base: Optional[tuple] = None

    # ------------------------------------------------------------------
    def due(self, iteration: int, final: bool = False) -> bool:
        """True when ``iteration`` should be checkpointed under the cadence."""
        return final or iteration % self.every == 0

    def iter_dir(self, iteration: int) -> str:
        """Absolute path of one iteration's checkpoint directory."""
        return os.path.join(self.directory, _iter_dir_name(iteration))

    def iterations(self) -> List[int]:
        """Iterations with a *complete* checkpoint (manifest present), sorted.

        A directory whose manifest never landed — the signature of a
        crash mid-save — is not listed: it is invisible to resume and
        overwritten by the next save of that iteration.
        """
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        found: List[int] = []
        for name in names:
            match = _ITER_DIR_RE.match(name)
            if match and os.path.exists(
                os.path.join(self.directory, name, MANIFEST_NAME)
            ):
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_iteration(self) -> Optional[int]:
        """The newest complete checkpoint's iteration (None when empty)."""
        found = self.iterations()
        return found[-1] if found else None

    # ------------------------------------------------------------------
    def save(
        self,
        iteration: int,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        trace: ConvergenceTrace,
        config_digest: str,
    ) -> str:
        """Write one checkpoint; returns its directory.

        Data files first (each atomically renamed into place and
        checksummed), the manifest last — the commit point.  A leftover
        directory from a crashed save of the same iteration is replaced.

        In diff mode, a save with a previous save to anchor to writes
        per-factor changed-row diffs instead of full factor files and
        records the anchor as ``base_iteration``.
        """
        iter_dir = self.iter_dir(iteration)
        if os.path.isdir(iter_dir):
            shutil.rmtree(iter_dir)
        os.makedirs(iter_dir)

        files: Dict[str, Dict[str, object]] = {}

        def _put_array(name: str, array: np.ndarray) -> None:
            path = os.path.join(iter_dir, name)
            atomic_save_array(path, np.ascontiguousarray(array))
            files[name] = {
                "sha256": sha256_file(path),
                "bytes": os.path.getsize(path),
            }

        base_iteration: Optional[int] = None
        if self.diff and self._diff_base is not None:
            from ..updates.lowrank import factor_diff

            base_iteration, base_factors = self._diff_base
            for mode, factor in enumerate(factors):
                diff = factor_diff(base_factors[mode], factor)
                _put_array(f"factor{mode}.rows.npy", diff.rows)
                _put_array(f"factor{mode}.diff.npy", diff.values)
        else:
            for mode, factor in enumerate(factors):
                _put_array(f"factor{mode}.npy", factor)
        _put_array("core.npy", core)

        trace_path = os.path.join(iter_dir, "trace.json")
        atomic_write_json(trace_path, _trace_to_json(trace))
        files["trace.json"] = {
            "sha256": sha256_file(trace_path),
            "bytes": os.path.getsize(trace_path),
        }

        manifest: Dict[str, object] = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "iteration": int(iteration),
            "order": len(factors),
            "config_digest": config_digest,
            "files": files,
        }
        if base_iteration is not None:
            manifest["base_iteration"] = int(base_iteration)
        atomic_write_json(os.path.join(iter_dir, MANIFEST_NAME), manifest)
        if self.diff:
            self._diff_base = (
                int(iteration),
                [np.array(f, dtype=np.float64, copy=True) for f in factors],
            )
        return iter_dir

    # ------------------------------------------------------------------
    def _read_manifest(self, iteration: int) -> Dict[str, object]:
        path = os.path.join(self.iter_dir(iteration), MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise DataFormatError(
                f"{self.iter_dir(iteration)}: no checkpoint manifest "
                f"({MANIFEST_NAME} missing)"
            ) from None
        except ValueError as exc:
            self._raise_corrupt(path, f"invalid JSON: {exc}", iteration)
        if manifest.get("format") != CHECKPOINT_FORMAT:
            self._raise_corrupt(
                path,
                f"not a checkpoint manifest (format="
                f"{manifest.get('format')!r})",
                iteration,
            )
        if int(manifest.get("version", -1)) != CHECKPOINT_VERSION:
            raise DataFormatError(
                f"{path}: unsupported checkpoint version "
                f"{manifest.get('version')} (this build reads version "
                f"{CHECKPOINT_VERSION})"
            )
        return manifest

    def _check_files(self, iteration: int, manifest: Dict[str, object]) -> None:
        iter_dir = self.iter_dir(iteration)
        for name, info in manifest["files"].items():
            path = os.path.join(iter_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                self._raise_corrupt(path, "checkpoint file is missing", iteration)
            if size != int(info["bytes"]):
                self._raise_corrupt(
                    path,
                    f"checkpoint file is truncated or padded ({size} bytes, "
                    f"manifest says {info['bytes']})",
                    iteration,
                )
            if sha256_file(path) != info["sha256"]:
                self._raise_corrupt(
                    path,
                    "checkpoint file is corrupt (sha256 mismatch)",
                    iteration,
                )

    def _base_iteration(
        self, iteration: int, manifest: Dict[str, object]
    ) -> Optional[int]:
        """The diff chain's anchor for this checkpoint (None when full)."""
        if "base_iteration" not in manifest:
            return None
        base = int(manifest["base_iteration"])
        if base >= int(iteration):
            self._raise_corrupt(
                os.path.join(self.iter_dir(iteration), MANIFEST_NAME),
                f"diff checkpoint claims base iteration {base} >= its own "
                f"iteration {iteration} — the chain cannot resolve",
                iteration,
            )
        return base

    def validate(self, iteration: int) -> None:
        """Fully verify one checkpoint (manifest, sizes, checksums).

        A diff checkpoint is only as good as its chain: validation
        follows ``base_iteration`` links all the way to the anchoring
        full checkpoint.
        """
        manifest = self._read_manifest(iteration)
        self._check_files(iteration, manifest)
        base = self._base_iteration(iteration, manifest)
        if base is not None:
            self.validate(base)

    def _raise_corrupt(self, path: str, reason: str, iteration: int) -> None:
        """Raise a :class:`DataFormatError` naming the file and the fall-back."""
        fallback: Optional[int] = None
        for earlier in sorted(self.iterations(), reverse=True):
            if earlier >= iteration:
                continue
            try:
                self.validate(earlier)
            except DataFormatError:
                continue
            fallback = earlier
            break
        message = f"{path}: {reason}"
        if fallback is not None:
            message += (
                f"; last valid checkpoint is iteration {fallback} at "
                f"{self.iter_dir(fallback)} — remove "
                f"{self.iter_dir(iteration)} to resume from it"
            )
        else:
            message += (
                "; no earlier valid checkpoint exists — remove the "
                f"checkpoint directory {self.directory} and restart the fit"
            )
        raise DataFormatError(message)

    # ------------------------------------------------------------------
    def load(self, iteration: int) -> CheckpointState:
        """Load and verify one checkpoint.

        Every file's size and SHA-256 are checked against the manifest
        *before* any array is parsed, so corruption surfaces as a
        :class:`DataFormatError` naming the file and the checkpoint to
        fall back to — never as a wrong answer or a NumPy parse crash.
        """
        manifest = self._read_manifest(iteration)
        self._check_files(iteration, manifest)
        iter_dir = self.iter_dir(iteration)
        order = int(manifest["order"])
        base = self._base_iteration(iteration, manifest)
        if base is None:
            factors = [
                np.load(
                    os.path.join(iter_dir, f"factor{mode}.npy"),
                    allow_pickle=False,
                )
                for mode in range(order)
            ]
        else:
            from ..updates.lowrank import LowRankDiff, apply_factor_diff

            base_state = self.load(base)
            factors = []
            for mode in range(order):
                rows = np.load(
                    os.path.join(iter_dir, f"factor{mode}.rows.npy"),
                    allow_pickle=False,
                )
                values = np.load(
                    os.path.join(iter_dir, f"factor{mode}.diff.npy"),
                    allow_pickle=False,
                )
                old = base_state.factors[mode]
                factors.append(
                    apply_factor_diff(
                        old,
                        LowRankDiff(
                            rows=rows, values=values, n_rows=int(old.shape[0])
                        ),
                    )
                )
        core = np.load(os.path.join(iter_dir, "core.npy"), allow_pickle=False)
        with open(
            os.path.join(iter_dir, "trace.json"), "r", encoding="utf-8"
        ) as handle:
            trace = _trace_from_json(json.load(handle))
        return CheckpointState(
            iteration=int(manifest["iteration"]),
            factors=factors,
            core=core,
            trace=trace,
            config_digest=str(manifest.get("config_digest", "")),
        )

    def load_latest(self) -> Optional[CheckpointState]:
        """Load the newest complete checkpoint (None when the tree is empty)."""
        latest = self.latest_iteration()
        if latest is None:
            return None
        return self.load(latest)


def resume_state(
    manager: Optional[CheckpointManager], resume: bool, config_digest: str
) -> Optional[CheckpointState]:
    """The checkpoint a resuming fit should continue from, verified.

    Returns ``None`` when resume is off, no manager is configured, or the
    tree holds no checkpoint yet (a first run with ``--resume`` simply
    starts fresh).  A digest mismatch — different data, ranks, seed,
    backend or regularization than the run that wrote the checkpoint —
    raises :class:`DataFormatError` instead of silently continuing a
    different trajectory.
    """
    if manager is None or not resume:
        return None
    state = manager.load_latest()
    if state is None:
        return None
    if state.config_digest and state.config_digest != config_digest:
        raise DataFormatError(
            f"{manager.iter_dir(state.iteration)}: checkpoint was written by "
            "a run with different data or hyper-parameters (config digest "
            f"{state.config_digest[:12]}… != {config_digest[:12]}…); "
            "resuming would not continue the same trajectory — point "
            "--checkpoint-dir at a fresh directory or rerun with the "
            "original configuration"
        )
    return state
