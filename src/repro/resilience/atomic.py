"""Atomic on-disk writes: the write-tmp, fsync, rename discipline.

Every durable artifact the library produces — shard-store manifests and
column files, ``.rcoo`` containers, fitted ``.npz`` models, checkpoint
files — goes through the helpers in this module, so a crash (SIGKILL,
power loss, full disk) at any instant leaves either the *complete old*
file or the *complete new* file at the final path, never a torn one.

The contract is the classic three-step dance:

1. write the payload to a sibling temporary file (same directory, so the
   final :func:`os.replace` is a same-filesystem rename — atomic on
   POSIX);
2. flush and ``fsync`` the temporary file, so its bytes are on stable
   storage *before* the name flip;
3. ``os.replace`` it onto the final path and ``fsync`` the containing
   directory, so the rename itself survives a crash.

Temporary files carry the :data:`TMP_SUFFIX` suffix plus the writer's
pid; readers never look at them, and interrupted leftovers are harmless
(and matched by :func:`is_tmp_path` for cleanup sweeps).

``fsync`` can be disabled for throughput experiments with
``REPRO_NO_FSYNC=1`` — rename-atomicity (no torn files after a process
crash) is preserved, only power-loss durability is traded away.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Dict, Iterator, Union

import numpy as np

PathLike = Union[str, "os.PathLike[str]"]

#: Infix marking in-flight temporary files (``<final>.<TMP_SUFFIX><pid>``).
TMP_SUFFIX = ".part"


def _fsync_enabled() -> bool:
    """False when ``REPRO_NO_FSYNC=1`` trades durability for speed."""
    return os.environ.get("REPRO_NO_FSYNC", "").strip() not in ("1", "true")


def tmp_path_for(path: PathLike) -> str:
    """The sibling temporary name used while ``path`` is being written."""
    return f"{os.fspath(path)}{TMP_SUFFIX}{os.getpid()}"


def is_tmp_path(name: str) -> bool:
    """True when ``name`` is an in-flight temporary of some atomic write."""
    stem, sep, pid = name.rpartition(TMP_SUFFIX)
    return bool(sep) and bool(stem) and pid.isdigit()


def fsync_file(handle) -> None:
    """Flush a writable handle's bytes to stable storage (honours the toggle)."""
    handle.flush()
    if _fsync_enabled():
        os.fsync(handle.fileno())


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory entry table to stable storage (best effort).

    Needed after :func:`os.replace` so the *rename* survives a power
    loss, not just the file bytes.  Platforms that cannot open
    directories (or filesystems that reject the fsync) are skipped
    silently — rename-atomicity still holds there.
    """
    if not _fsync_enabled():
        return
    try:
        fd = os.open(os.fspath(directory) or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_open(path: PathLike) -> Iterator["os.PathLike[str]"]:
    """Open ``path`` for atomic binary writing.

    Yields a writable binary file handle backed by a sibling temporary
    file.  On normal exit the handle is flushed, fsynced, closed and
    renamed onto ``path`` (then the directory is fsynced); on any
    exception the temporary is removed and ``path`` is left untouched —
    whatever was there before, old version or nothing, is still there.
    """
    path = os.fspath(path)
    tmp = tmp_path_for(path)
    handle = open(tmp, "w+b")
    try:
        yield handle
        handle.flush()
        if _fsync_enabled():
            os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, path)
        fsync_directory(os.path.dirname(path))
    except BaseException:
        with contextlib.suppress(OSError):
            handle.close()
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise


def atomic_write_bytes(path: PathLike, payload: bytes) -> None:
    """Atomically replace ``path`` with ``payload``."""
    with atomic_open(path) as handle:
        handle.write(payload)


def atomic_write_json(path: PathLike, payload: Dict[str, object]) -> None:
    """Atomically write ``payload`` as canonical JSON (sorted keys, newline).

    The byte layout matches the historical ``json.dump(..., indent=2,
    sort_keys=True)`` + trailing newline of the shard-store manifest
    writer, so migrating callers changes durability, not content.
    """
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_save_array(path: PathLike, array: np.ndarray) -> None:
    """Atomically write one ``.npy`` file (byte-identical to ``numpy.save``)."""
    with atomic_open(path) as handle:
        np.save(handle, array)


def sha256_file(path: PathLike, block_bytes: int = 1 << 20) -> str:
    """Streaming SHA-256 of a file's bytes (bounded memory)."""
    import hashlib

    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            piece = handle.read(block_bytes)
            if not piece:
                break
            digest.update(piece)
    return digest.hexdigest()
