"""Command-line interface: factorize a tensor file and inspect the result.

Usage::

    python -m repro factorize ratings.tns --ranks 10 10 5 5 --output model
    python -m repro fit ratings.tns --ranks 10 --shards /data/shards
    python -m repro fit ratings.tns --ranks 10 --from-text --output model
    python -m repro fit ratings.tns --ranks 10 --checkpoint-dir ckpt
    python -m repro fit ratings.tns --ranks 10 --checkpoint-dir ckpt --resume
    python -m repro ingest ratings.tns --out /data/shards
    python -m repro ingest ratings.tns --format rcoo --out ratings.rcoo
    python -m repro shards-migrate /data/shards-v1 --out /data/shards
    python -m repro shards-verify /data/shards
    python -m repro update /data/shards new-entries.rcoo
    python -m repro update /data/shards new-entries.rcoo --model model --output model
    python -m repro compact /data/shards
    python -m repro predict model.npz --index 3 17 2 14
    python -m repro serve model.npz --port 8763
    python -m repro query model.npz --topk 10 --mode 1 --context 3 7
    python -m repro query http://127.0.0.1:8763 --index 3 17 2 14
    python -m repro info ratings.tns

(``fit`` is an alias of ``factorize``; ``--shards DIR`` streams the sweeps
from an on-disk shard store instead of RAM, ``--from-text`` additionally
streams the *input file* through the external-memory shard build so the
tensor never exists in RAM, and ``ingest`` runs that build on its own —
``--format rcoo`` writes the chunked binary COO container of
:mod:`repro.tensor.io` instead of a store.  ``shards-migrate`` rewrites a
retired version-1 shard directory into the current narrow columnar
format v2 in bounded memory — see :mod:`repro.shards`.  ``shards-verify``
checks an existing store's files against its manifest and exits 0/2.
``--checkpoint-dir`` writes crash-safe per-iteration checkpoints and
``--resume`` continues an interrupted fit bitwise-identically — see
:mod:`repro.resilience`; ``--checkpoint-diff`` stores later checkpoints
as low-rank row diffs against their predecessor, and ``--resume``
reconstructs the chain bitwise-identically.  ``update`` appends an
``.rcoo`` delta file to a store's pending delta log (atomically — a
crash leaves the log unchanged) and, with ``--model``, re-solves only
the factor rows the delta touches; ``compact`` folds pending deltas
into the store, producing files identical to a fresh build of the
union tensor — see :mod:`repro.updates`.  ``shards-verify`` also
validates any pending deltas against their logged digests.)

``factorize`` reads a whitespace-separated ``i_1 ... i_N value`` file (the
format of the paper's released datasets), runs the chosen algorithm, reports
the convergence trace, and optionally stores the fitted model as ``.npz``
files.  ``predict`` loads a stored model and evaluates Eq. (4) at the given
index.  ``serve`` keeps a fitted model resident behind the low-latency
query layer of :mod:`repro.serve` (HTTP and/or stdin JSON-lines,
micro-batched, with a ``/stats`` endpoint); ``query`` issues one point or
top-K query against a local model file or a running ``serve`` URL.
``info`` prints basic statistics of a tensor file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from .baselines import CpAls, SHot, TuckerAls, TuckerCsf, TuckerWopt
from .columns import INDEX_DTYPE_POLICIES
from .core import PTucker, PTuckerApprox, PTuckerCache, PTuckerConfig, TuckerResult
from .core.sampled import PTuckerSampled
from .kernels.backends import backend_names_for_cli
from .model_io import load_model, load_result, save_model
from .tensor import SparseTensor, load_text
from .tensor.io import DEFAULT_CHUNK_NNZ, open_entry_reader

ALGORITHMS = {
    "ptucker": PTucker,
    "ptucker-cache": PTuckerCache,
    "ptucker-approx": PTuckerApprox,
    "ptucker-sampled": PTuckerSampled,
    "tucker-als": TuckerAls,
    "tucker-wopt": TuckerWopt,
    "tucker-csf": TuckerCsf,
    "s-hot": SHot,
    "cp-als": CpAls,
}


# save_model / load_model live in repro.model_io (shared with the serving
# layer); re-exported here because the CLI is their historical home.


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="P-Tucker: sparse Tucker factorization from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    factorize = subparsers.add_parser(
        "factorize", aliases=["fit"], help="factorize a tensor file"
    )
    factorize.add_argument("tensor", help="path to a 'i_1 ... i_N value' text file")
    factorize.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="ptucker",
        help="factorization method (default: ptucker)",
    )
    factorize.add_argument(
        "--ranks", type=int, nargs="+", required=True, help="Tucker ranks, one per mode"
    )
    factorize.add_argument(
        "--backend",
        choices=backend_names_for_cli(),
        default="numpy",
        help="kernel execution strategy ('auto' picks the measured-fastest "
        "per block; 'numba' needs the optional JIT extra and otherwise "
        "falls back to numpy)",
    )
    factorize.add_argument(
        "--shards",
        metavar="DIR",
        default="",
        help="run the sweeps out of core: shard the tensor into mode-sorted "
        "memory-mapped COO blocks at DIR (reused when DIR already shards "
        "this tensor) and stream them instead of holding sorted copies in "
        "RAM; P-Tucker only, every mode update bitwise-equal to the "
        "in-core sweep (see repro.shards for the convergence-metric "
        "caveat at nonzero --tolerance)",
    )
    factorize.add_argument(
        "--shard-nnz",
        type=int,
        default=1_000_000,
        help="entries per shard when --shards builds a store (default: 1e6)",
    )
    factorize.add_argument(
        "--from-text",
        action="store_true",
        help="stream the input file through the external-memory shard "
        "build instead of loading it into RAM (ptucker only; the store "
        "lands at --shards DIR when given, else in a temporary "
        "directory), so the whole fit runs with bounded memory",
    )
    factorize.add_argument(
        "--chunk-nnz",
        type=int,
        default=DEFAULT_CHUNK_NNZ,
        help="entries read per chunk during --from-text ingest "
        "(default: 5e5; bounds ingest peak memory)",
    )
    factorize.add_argument(
        "--index-dtype",
        choices=INDEX_DTYPE_POLICIES,
        default="auto",
        help="index storage: 'auto' (default) keeps every index column in "
        "the narrowest dtype its mode dimension admits (uint8/16/32, "
        "int64 fallback) in RAM and on disk; 'wide' forces int64. "
        "Results are bitwise-identical either way",
    )
    factorize.add_argument("--regularization", type=float, default=0.01)
    factorize.add_argument("--max-iterations", type=int, default=20)
    factorize.add_argument("--tolerance", type=float, default=1e-4)
    factorize.add_argument("--seed", type=int, default=0)
    factorize.add_argument(
        "--test-fraction",
        type=float,
        default=0.0,
        help="hold out this fraction of entries and report their RMSE",
    )
    factorize.add_argument(
        "--zero-based",
        action="store_true",
        help="indices in the file start at 0 instead of 1",
    )
    factorize.add_argument(
        "--output", default="", help="prefix for the stored model (.npz)"
    )
    factorize.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default="",
        help="write a crash-safe checkpoint (factors + core + trace, "
        "checksummed, manifest last) into DIR during the fit; ptucker "
        "only.  An interrupted run restarts with --resume",
    )
    factorize.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=1,
        help="checkpoint every N iterations (default: 1; the final "
        "iteration is always checkpointed)",
    )
    factorize.add_argument(
        "--checkpoint-diff",
        action="store_true",
        help="store each checkpoint after the first as a low-rank row diff "
        "against its predecessor (only changed factor rows are written); "
        "--resume reconstructs the chain bitwise-identically",
    )
    factorize.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir "
        "and continue bitwise-identically to an uninterrupted fit; "
        "corrupt checkpoints are diagnosed with the file name and the "
        "last valid checkpoint to fall back to (exit 2)",
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="stream a tensor file into an on-disk shard store or an "
        ".rcoo container (bounded RAM)",
    )
    ingest.add_argument(
        "input",
        help="tensor input: a 'i_1 ... i_N value' text file, a .npz "
        "archive, an .rcoo container, or an existing shard-store "
        "directory (any version) to re-shard",
    )
    ingest.add_argument(
        "--out",
        "--shards",
        dest="out",
        metavar="PATH",
        required=True,
        help="target of the build: a directory for the shard store "
        "(--format store), or a file path for --format rcoo "
        "(--shards is an accepted alias)",
    )
    ingest.add_argument(
        "--format",
        choices=("store", "rcoo"),
        default="store",
        help="output format: 'store' (default) builds the sharded "
        "mode-sorted store; 'rcoo' writes the chunked binary COO "
        "container (entry order preserved, bounded-RAM re-read)",
    )
    ingest.add_argument(
        "--shard-nnz",
        type=int,
        default=1_000_000,
        help="entries per shard in the built store (default: 1e6)",
    )
    ingest.add_argument(
        "--chunk-nnz",
        type=int,
        default=DEFAULT_CHUNK_NNZ,
        help="entries read per chunk (default: 5e5; bounds peak memory)",
    )
    ingest.add_argument(
        "--index-dtype",
        choices=INDEX_DTYPE_POLICIES,
        default="auto",
        help="index column dtypes of the output: 'auto' (default) "
        "narrowest per mode dimension, 'wide' int64",
    )
    ingest.add_argument(
        "--zero-based",
        action="store_true",
        help="indices in a text input start at 0 instead of 1",
    )

    migrate = subparsers.add_parser(
        "shards-migrate",
        help="rewrite a version-1 shard store as format v2 (bounded RAM)",
    )
    migrate.add_argument(
        "store", help="path of the version-1 shard-store directory"
    )
    migrate.add_argument(
        "--out",
        metavar="DIR",
        required=True,
        help="target directory for the rewritten v2 store (must differ "
        "from the source)",
    )
    migrate.add_argument(
        "--index-dtype",
        choices=INDEX_DTYPE_POLICIES,
        default="auto",
        help="index column dtypes of the rewritten store (default: auto)",
    )

    verify = subparsers.add_parser(
        "shards-verify",
        help="check a shard store's files against its manifest (exit 0/2)",
    )
    verify.add_argument("store", help="path of the shard-store directory")
    verify.add_argument(
        "--quick",
        action="store_true",
        help="header/size checks only (O(files)); skip the full data-level "
        "validation that re-reads every shard",
    )

    update = subparsers.add_parser(
        "update",
        help="append an .rcoo delta file to a store's pending delta log "
        "(optionally re-solving only the touched factor rows of a model)",
    )
    update.add_argument("store", help="path of the shard-store directory")
    update.add_argument(
        "delta",
        help="new observed entries as an .rcoo container (same order and "
        "within-bounds indices as the store)",
    )
    update.add_argument(
        "--model",
        default="",
        metavar="PREFIX",
        help="model .npz written by 'factorize': re-solve only the factor "
        "rows the delta touches, over the union of old and new entries",
    )
    update.add_argument(
        "--output",
        default="",
        metavar="PREFIX",
        help="prefix for the updated model (.npz); defaults to --model "
        "(updated in place)",
    )
    update.add_argument("--regularization", type=float, default=0.01)
    update.add_argument(
        "--backend",
        choices=backend_names_for_cli(),
        default="numpy",
        help="kernel execution strategy for the targeted re-solves",
    )
    update.add_argument(
        "--block-size",
        type=int,
        default=200_000,
        help="entries per streamed block during the re-solves; matching "
        "the fit's block size makes the touched rows bitwise-equal to a "
        "full sweep's (default 200000)",
    )

    compact = subparsers.add_parser(
        "compact",
        help="fold a store's pending deltas into its shards (files "
        "identical to a fresh build of the union tensor)",
    )
    compact.add_argument("store", help="path of the shard-store directory")
    compact.add_argument(
        "--shard-nnz",
        type=int,
        default=None,
        help="entries per shard of the compacted store (default: keep the "
        "store's current setting)",
    )

    predict = subparsers.add_parser("predict", help="predict one cell of a stored model")
    predict.add_argument("model", help="path to a model .npz written by 'factorize'")
    predict.add_argument(
        "--index", type=int, nargs="+", required=True, help="0-based cell index"
    )

    info = subparsers.add_parser("info", help="print statistics of a tensor file")
    info.add_argument("tensor", help="path to a 'i_1 ... i_N value' text file")
    info.add_argument("--zero-based", action="store_true")

    serve = subparsers.add_parser(
        "serve", help="serve a fitted model over HTTP and/or stdin JSON-lines"
    )
    serve.add_argument(
        "model", help="model .npz written by 'factorize' or a checkpoint directory"
    )
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    serve.add_argument("--port", type=int, default=8763, help="HTTP port")
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="additionally answer JSON-lines requests on stdin",
    )
    serve.add_argument(
        "--no-http",
        action="store_true",
        help="disable the HTTP listener (stdin-only serving)",
    )
    serve.add_argument(
        "--shards",
        metavar="DIR",
        help="attach the fit's shard store so top-K queries can "
        "exclude observed entries",
    )
    serve.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map checkpoint factor matrices instead of loading "
        "them into RAM (checkpoint directories only)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="most requests coalesced into one kernel call (default 256)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="longest a request waits for batch companions (default 2.0)",
    )
    serve.add_argument(
        "--cache-rows",
        type=int,
        default=4096,
        help="projected-vector LRU capacity; 0 disables caching "
        "(default 4096)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="supervised query worker processes; queries are item-sharded "
        "across them with bitwise-identical answers, and serving degrades "
        "to in-loop execution if workers die (default 0 = in-loop)",
    )

    query = subparsers.add_parser(
        "query", help="query a model file or a running serve endpoint"
    )
    query.add_argument(
        "model",
        help="model .npz, checkpoint directory, or http://HOST:PORT of a "
        "running 'serve'",
    )
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--index",
        type=int,
        nargs="+",
        help="0-based cell index for a point prediction",
    )
    group.add_argument(
        "--topk",
        type=int,
        metavar="K",
        help="return the K best items of --mode for --context",
    )
    query.add_argument(
        "--mode", type=int, default=None, help="item mode ranked by --topk"
    )
    query.add_argument(
        "--context",
        type=int,
        nargs="+",
        default=None,
        help="query context indices: all modes except --mode (or all modes "
        "with the --mode position ignored)",
    )
    query.add_argument(
        "--exclude-observed",
        action="store_true",
        help="drop items the context has observed entries for "
        "(needs --shards locally or a server started with --shards)",
    )
    query.add_argument(
        "--shards",
        metavar="DIR",
        help="shard store for --exclude-observed when querying a local model",
    )

    return parser


def _command_factorize(args: argparse.Namespace) -> int:
    if (args.shards or args.from_text) and args.algorithm != "ptucker":
        flag = "--shards" if args.shards else "--from-text"
        print(
            f"error: {flag} supports the base 'ptucker' algorithm only "
            f"(got --algorithm {args.algorithm})",
            file=sys.stderr,
        )
        return 2
    if args.from_text and args.test_fraction > 0.0:
        print(
            "error: --from-text streams the input and cannot hold out a "
            "test split; drop --test-fraction or load in RAM",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_dir and args.algorithm != "ptucker":
        print(
            "error: --checkpoint-dir supports the base 'ptucker' algorithm "
            f"only (got --algorithm {args.algorithm})",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print(
            "error: --resume needs --checkpoint-dir DIR to know where the "
            "checkpoints live",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_diff and not args.checkpoint_dir:
        print(
            "error: --checkpoint-diff needs --checkpoint-dir DIR to know "
            "where the checkpoints live",
            file=sys.stderr,
        )
        return 2

    config = PTuckerConfig(
        ranks=tuple(args.ranks),
        regularization=args.regularization,
        max_iterations=args.max_iterations,
        tolerance=args.tolerance,
        seed=args.seed,
        backend=args.backend,
        shard_dir=args.shards or None,
        shard_nnz=args.shard_nnz,
        ingest_chunk_nnz=args.chunk_nnz,
        index_dtype=args.index_dtype,
        checkpoint_dir=args.checkpoint_dir or None,
        checkpoint_every=args.checkpoint_every,
        checkpoint_diff=args.checkpoint_diff,
        resume=args.resume,
    )
    solver = ALGORITHMS[args.algorithm](config)

    test: Optional[SparseTensor] = None
    if args.from_text:
        from .tensor import NpzEntryReader

        reader = open_entry_reader(args.tensor, one_based=not args.zero_based)
        if isinstance(reader, NpzEntryReader):
            print(
                f"streaming ingest of {args.tensor} (.npz arrays decompress "
                "in RAM; the shard build itself stays chunked)"
            )
        else:
            print(f"streaming ingest of {args.tensor} (tensor never held in RAM)")
        result = solver.fit_streaming(reader)
    else:
        tensor = load_text(args.tensor, one_based=not args.zero_based)
        print(f"loaded {tensor}")
        train = tensor
        if args.test_fraction > 0.0:
            train, test = tensor.split(
                1.0 - args.test_fraction, rng=np.random.default_rng(args.seed)
            )
            print(f"holding out {test.nnz} entries for testing")
        if args.shards:
            print(f"streaming sweeps from shard store at {args.shards}")
        result = solver.fit(train)

    print(result.summary())
    for record in result.trace.records:
        print(
            f"  iter {record.iteration:3d}: error={record.reconstruction_error:.6g} "
            f"({record.seconds:.3f}s)"
        )
    if test is not None:
        print(f"test RMSE: {result.test_rmse(test):.6g}")
    if args.output:
        path = save_model(result, args.output)
        print(f"model written to {path}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from .tensor.io import RcooEntryReader, save_shards, write_rcoo

    reader = open_entry_reader(args.input, one_based=not args.zero_based)
    if args.format == "rcoo":
        shape = write_rcoo(
            reader,
            args.out,
            block_nnz=args.chunk_nnz,
            index_dtype=args.index_dtype,
        )
        written = RcooEntryReader(args.out)
        print(f"ingested {args.input} into rcoo container at {args.out}")
        print(f"shape: {shape}")
        print(f"observed entries: {written.nnz}")
        print(
            f"blocks: {-(-written.nnz // written.block_nnz)} "
            f"({written.block_nnz} entries per block, index dtypes "
            f"{[str(d) for d in written.index_dtypes]})"
        )
        return 0
    store = save_shards(
        None,
        args.out,
        shard_nnz=args.shard_nnz,
        source=reader,
        chunk_nnz=args.chunk_nnz,
        index_dtype=args.index_dtype,
    )
    n_shards = sum(len(store.mode_shards(mode)) for mode in range(store.order))
    print(f"ingested {args.input} into shard store at {store.directory}")
    print(f"shape: {store.shape}")
    print(f"observed entries: {store.nnz}")
    print(f"shards: {n_shards} ({store.shard_nnz} entries per shard)")
    print(
        f"index bytes per entry: {store.index_bytes_per_entry} "
        f"({[str(d) for d in store.index_dtypes]})"
    )
    return 0


def _command_shards_migrate(args: argparse.Namespace) -> int:
    from .shards import migrate_v1_store

    store = migrate_v1_store(args.store, args.out, index_dtype=args.index_dtype)
    print(f"migrated v1 store {args.store} to v2 at {store.directory}")
    print(f"shape: {store.shape}")
    print(f"observed entries: {store.nnz}")
    print(
        f"index bytes per entry: {store.index_bytes_per_entry} "
        f"({[str(d) for d in store.index_dtypes]})"
    )
    return 0


def _command_shards_verify(args: argparse.Namespace) -> int:
    from .shards import ShardStore
    from .updates import DeltaLog

    store = ShardStore.open(args.store)
    store.verify_files()
    log = DeltaLog.open(store.directory)
    if len(log):
        # Pending deltas are part of the store's logical content; a digest
        # mismatch raises a DataFormatError naming the file (exit 2).
        log.verify()
    if args.quick:
        print(f"shard store at {store.directory}: file headers OK")
    else:
        store.validate()
        print(f"shard store at {store.directory}: OK")
    n_shards = sum(len(store.mode_shards(mode)) for mode in range(store.order))
    print(f"shape: {store.shape}")
    print(f"observed entries: {store.nnz}")
    print(f"shards: {n_shards} ({store.shard_nnz} entries per shard)")
    if len(log):
        print(
            f"pending deltas: {len(log)} ({log.pending_nnz} entries, "
            "digests OK)"
        )
    return 0


def _command_update(args: argparse.Namespace) -> int:
    from .shards import ShardStore
    from .updates import DeltaLog, apply_delta

    store = ShardStore.open(args.store)
    log = DeltaLog.open(store.directory)
    # Load the model before touching the log: an unreadable model path
    # must not leave the delta appended (a retry would append it twice).
    result = load_result(args.model) if args.model else None
    record = log.append(args.delta, store.shape)
    print(f"appended {args.delta} to the delta log at {log.log_path()}")
    print(f"delta entries: {record.nnz}")
    print(f"pending deltas: {len(log)} ({log.pending_nnz} entries)")
    if result is None:
        return 0
    output = args.output or args.model
    if output.endswith(".npz"):
        output = output[: -len(".npz")]
    factors = [
        np.ascontiguousarray(f, dtype=np.float64) for f in result.factors
    ]
    core = np.ascontiguousarray(result.core, dtype=np.float64)
    updates = apply_delta(
        store,
        factors,
        core,
        regularization=args.regularization,
        block_size=args.block_size,
        backend=args.backend,
        log=log,
    )
    for mode in range(store.order):
        rows = updates[mode][0].shape[0] if mode in updates else 0
        print(f"mode {mode}: {rows} factor rows re-solved")
    result.factors = factors
    result.core = core
    path = save_model(result, output)
    print(f"updated model written to {path}")
    return 0


def _command_compact(args: argparse.Namespace) -> int:
    from .shards import ShardStore
    from .updates import DeltaLog, compact

    store = ShardStore.open(args.store)
    log = DeltaLog.open(store.directory)
    if not log.records:
        print(f"shard store at {store.directory}: no pending deltas")
        return 0
    pending, pending_nnz = len(log), log.pending_nnz
    before = store.nnz
    store = compact(store, shard_nnz=args.shard_nnz)
    print(
        f"compacted {pending} pending deltas ({pending_nnz} entries) "
        f"into {store.directory}"
    )
    print(f"observed entries: {before} -> {store.nnz}")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    result = load_model(args.model)
    index = np.asarray(args.index, dtype=np.int64)
    if index.shape[0] != result.order:
        print(
            f"error: model has {result.order} modes but {index.shape[0]} indices given",
            file=sys.stderr,
        )
        return 2
    value = float(result.predict(index)[0])
    print(f"{value:.6g}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serve import ServingModel
    from .serve.server import serve_model

    model = ServingModel.load(
        args.model, mmap=args.mmap, query_cache=args.cache_rows
    )
    if args.shards:
        model.attach_store(args.shards)
    host = None if args.no_http else args.host
    if host is None and not args.stdio:
        print(
            "error: --no-http without --stdio leaves no way to reach the "
            "server",
            file=sys.stderr,
        )
        return 2
    engine = None
    if args.workers > 0:
        from .serve.workers import ServingWorkerEngine

        engine = ServingWorkerEngine(
            args.model,
            local_model=model,
            n_workers=args.workers,
            mmap=args.mmap,
            store_path=args.shards or None,
        )
    serve_model(
        model,
        host=host,
        port=args.port,
        stdio=args.stdio,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        engine=engine,
    )
    return 0


def _query_remote(args: argparse.Namespace) -> int:
    import json
    from urllib import error, request as urlrequest

    base = args.model.rstrip("/")
    if args.index is not None:
        path, payload = "/predict", {"index": list(args.index)}
    else:
        payload = {
            "context": list(args.context),
            "mode": args.mode,
            "k": args.topk,
            "exclude_observed": args.exclude_observed,
        }
        path = "/topk"
    body = json.dumps(payload).encode("utf-8")
    req = urlrequest.Request(
        base + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urlrequest.urlopen(req, timeout=30) as response:
            reply = json.loads(response.read())
    except error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        print(f"error: server rejected the query: {detail}", file=sys.stderr)
        return 2
    except (error.URLError, OSError) as exc:
        print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
        return 2
    if args.index is not None:
        print(f"{reply['values'][0]:.6g}")
    else:
        for item, score in zip(reply["items"], reply["scores"]):
            print(f"{item}\t{score:.6g}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    if args.topk is not None and (args.mode is None or args.context is None):
        print(
            "error: --topk needs --mode and --context", file=sys.stderr
        )
        return 2
    if args.model.startswith(("http://", "https://")):
        return _query_remote(args)
    from .serve import ServingModel

    model = ServingModel.load(args.model)
    if args.shards:
        model.attach_store(args.shards)
    if args.index is not None:
        print(f"{float(model.predict(args.index)[0]):.6g}")
        return 0
    result = model.topk(
        args.context, args.mode, args.topk, args.exclude_observed
    )
    for item, score in zip(result.items, result.scores):
        print(f"{int(item)}\t{float(score):.6g}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    tensor = load_text(args.tensor, one_based=not args.zero_based)
    print(f"shape: {tensor.shape}")
    print(f"order: {tensor.order}")
    print(f"observed entries: {tensor.nnz}")
    print(f"density: {tensor.density:.3e}")
    print(f"value range: [{tensor.values.min():.6g}, {tensor.values.max():.6g}]")
    print(f"Frobenius norm (observed): {tensor.norm():.6g}")
    for mode in range(tensor.order):
        counts = tensor.counts_along_mode(mode)
        nonempty = int(np.count_nonzero(counts))
        print(
            f"mode {mode}: length {tensor.shape[mode]}, non-empty slices {nonempty}, "
            f"max entries per slice {int(counts.max())}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Data-format problems (a malformed input file, a retired v1 shard
    store under ``ingest`` or ``shards-migrate``, a store that fails
    ``shards-verify``, a pending delta whose digest mismatches its log
    record, a malformed or shape-mismatched delta under ``update``, a
    corrupt or mismatched checkpoint under ``--resume``) surface as an
    error message plus exit code 2 instead
    of a traceback — the v1 message includes the ``shards-migrate``
    recipe verbatim, and a corrupt-checkpoint message names the bad file
    and the last valid checkpoint to fall back to.  ``fit --shards``
    treats its directory as a cache, so a v1 store there is rebuilt as
    v2 from the input tensor rather than reported.
    """
    from .exceptions import DataFormatError, ShapeError

    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command in ("factorize", "fit"):
            return _command_factorize(args)
        if args.command == "ingest":
            return _command_ingest(args)
        if args.command == "shards-migrate":
            return _command_shards_migrate(args)
        if args.command == "shards-verify":
            return _command_shards_verify(args)
        if args.command == "update":
            return _command_update(args)
        if args.command == "compact":
            return _command_compact(args)
        if args.command == "predict":
            return _command_predict(args)
        if args.command == "info":
            return _command_info(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "query":
            return _command_query(args)
    except (DataFormatError, ShapeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
