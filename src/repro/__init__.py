"""repro — a reproduction of "Scalable Tucker Factorization for Sparse Tensors"
(P-Tucker, ICDE 2018).

The package provides:

* :mod:`repro.tensor` — sparse COO tensors, dense tensor algebra, CSF.
* :mod:`repro.kernels` — contraction-ordered δ/reduction kernels shared by
  every solver hot path (see its docstring for the complexity analysis).
* :mod:`repro.core` — P-Tucker, P-Tucker-Cache and P-Tucker-Approx.
* :mod:`repro.baselines` — Tucker-ALS (HOOI), Tucker-wOpt, Tucker-CSF,
  S-HOT and CP-ALS.
* :mod:`repro.metrics` — reconstruction error, test RMSE, memory accounting.
* :mod:`repro.parallel` — scheduling policies and the parallel cost simulator.
* :mod:`repro.shards` — out-of-core sharded sweeps: the mmap COO shard
  store and the streaming executor (bitwise-equal to in-core).
* :mod:`repro.discovery` — K-means, concept and relation discovery.
* :mod:`repro.data` — synthetic and MovieLens-style dataset generators.
* :mod:`repro.experiments` — the harness that regenerates every figure and
  table of the paper's evaluation.
"""

from .core import (
    PTucker,
    PTuckerApprox,
    PTuckerCache,
    PTuckerConfig,
    TuckerResult,
    fit_ptucker,
)
from .exceptions import (
    ConvergenceError,
    DataFormatError,
    OutOfMemoryError,
    ReproError,
    ShapeError,
)
from .shards import ShardedSweepExecutor, ShardStore
from .tensor import SparseTensor

__version__ = "1.0.0"

__all__ = [
    "SparseTensor",
    "ShardStore",
    "ShardedSweepExecutor",
    "PTucker",
    "PTuckerCache",
    "PTuckerApprox",
    "PTuckerConfig",
    "TuckerResult",
    "fit_ptucker",
    "ReproError",
    "ShapeError",
    "DataFormatError",
    "ConvergenceError",
    "OutOfMemoryError",
    "__version__",
]
