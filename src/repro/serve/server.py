"""Stdlib asyncio front end: HTTP and stdin JSON-lines serving.

No web framework is assumed (or available): the HTTP side is a minimal
``asyncio.start_server`` loop speaking enough HTTP/1.1 for JSON request /
response bodies, and the pipe side reads one JSON object per line from
stdin and writes one JSON object per line to stdout — the same operations
over both transports:

==============  =====================================================
HTTP            stdin JSON-lines
==============  =====================================================
``GET /health``  ``{"op": "health"}``
``GET /stats``   ``{"op": "stats"}``
``POST /predict``  ``{"op": "predict", "indices": [[...], ...]}``
``POST /topk``   ``{"op": "topk", "context": [...], "mode": m, "k": k}``
``POST /shutdown``  ``{"op": "shutdown"}`` (or EOF on stdin)
==============  =====================================================

Every query is submitted through the :class:`~repro.serve.batch.MicroBatcher`,
so concurrent requests coalesce into one kernel call; because the model's
kernels are batch-invariant this changes latency, never answers.  The
``/stats`` payload is assembled purely from the structured
:class:`~repro.metrics.Counters` / :class:`~repro.metrics.LatencyWindow`
snapshots of the model, caches, batcher and per-operation latency — there
is no separate serving-stats bookkeeping to drift out of sync.

Shutdown is graceful from every direction — ``POST /shutdown``, the
``shutdown`` op, EOF on stdin, SIGTERM or SIGINT: in-flight requests are
drained through the batcher before the loop exits.

With an ``engine`` (:class:`~repro.serve.workers.ServingWorkerEngine`,
``repro serve --workers N``), queries execute on supervised worker
processes instead of in-loop and the health surface becomes meaningful:
``GET /health`` reports ``ready`` plus per-worker liveness and answers
**503** until every worker is up and caught up on the setup log (also
before the first model is loaded — the server refuses traffic it would
serve degraded), and ``GET /stats`` carries a ``degraded`` flag while
any worker slot is down.  Requests keep succeeding throughout: the
engine falls back to the in-loop model whenever the pool cannot answer.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import ReproError
from ..metrics import Counters, LatencyWindow
from .batch import DEFAULT_MAX_BATCH, DEFAULT_MAX_WAIT_MS, MicroBatcher
from .model import ServingModel
from .workers import ServingWorkerEngine

#: Largest accepted HTTP request body (1 MB of JSON indices is ~50k queries).
MAX_BODY_BYTES = 1 << 20


class ServingError(ReproError, ValueError):
    """A malformed serving request (HTTP 400 / JSON-lines error reply)."""


class ModelServer:
    """One model behind a micro-batcher, HTTP and/or stdin JSON-lines.

    The server owns the batcher and the latency windows; the event loop,
    sockets and signal handlers are created inside :meth:`run` so a
    single instance can be driven either by ``asyncio.run(server.run())``
    or piecewise from tests via :meth:`handle_request`.
    """

    def __init__(
        self,
        model: ServingModel,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        engine: Optional[ServingWorkerEngine] = None,
    ) -> None:
        self.model = model
        self.engine = engine
        self.counters: Counters = model.counters
        self.batcher = MicroBatcher(
            self._execute_batch,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            counters=self.counters,
        )
        self.latency: Dict[str, LatencyWindow] = {
            "predict": LatencyWindow(),
            "topk": LatencyWindow(),
        }
        self.shutdown_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Batched execution (runs in the executor thread)
    # ------------------------------------------------------------------
    def _execute_batch(self, group: Tuple, payloads: List[Any]) -> List[Any]:
        # With an engine the kernels run on supervised worker processes
        # (item-sharded, canonical-merged — answers bitwise identical to
        # in-loop); the engine itself falls back to self.model when the
        # pool cannot answer, so this routing never fails requests.
        kind = group[0]
        if kind == "predict":
            lengths = [len(p) for p in payloads]
            flat = [row for payload in payloads for row in payload]
            if self.engine is not None:
                values = self.engine.predict(flat)
            else:
                values = self.model.predict(flat)
            out: List[Any] = []
            offset = 0
            for length in lengths:
                out.append([float(v) for v in values[offset : offset + length]])
                offset += length
            return out
        if kind == "topk":
            _, mode, k, exclude = group
            if self.engine is not None:
                results = self.engine.topk_batch(payloads, mode, k, exclude)
            else:
                results = self.model.topk_batch(payloads, mode, k, exclude)
            return [
                {
                    "items": [int(i) for i in r.items],
                    "scores": [float(s) for s in r.scores],
                }
                for r in results
            ]
        raise ServingError(f"unknown batch group {group!r}")

    # ------------------------------------------------------------------
    # Operations (shared by both transports)
    # ------------------------------------------------------------------
    async def op_predict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        indices = request.get("indices")
        if indices is None and "index" in request:
            indices = [request["index"]]
        if not isinstance(indices, list) or not indices:
            raise ServingError(
                "predict needs 'indices': [[i_1, ..., i_N], ...] "
                "(or a single 'index')"
            )
        with self.latency["predict"].measure():
            values = await self.batcher.submit(("predict",), indices)
        return {"values": values}

    async def op_topk(self, request: Dict[str, Any]) -> Dict[str, Any]:
        contexts = request.get("contexts")
        single = contexts is None
        if single:
            context = request.get("context")
            if context is None:
                raise ServingError(
                    "topk needs 'context': [i_1, ..., i_N] "
                    "(or 'contexts': [...])"
                )
            contexts = [context]
        if not isinstance(contexts, list) or not contexts:
            raise ServingError("'contexts' must be a non-empty list")
        try:
            mode = int(request["mode"])
            k = int(request["k"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServingError("topk needs integer 'mode' and 'k'") from exc
        exclude = bool(request.get("exclude_observed", False))
        group = ("topk", mode, k, exclude)
        with self.latency["topk"].measure():
            results = await asyncio.gather(
                *(self.batcher.submit(group, tuple(c)) for c in contexts)
            )
        if single:
            return dict(results[0])
        return {"results": results}

    def op_stats(self) -> Dict[str, Any]:
        payload = self.model.stats()
        payload["batcher"] = self.batcher.snapshot()
        payload["latency"] = {
            name: window.snapshot() for name, window in self.latency.items()
        }
        if self.engine is not None:
            serving = self.engine.stats()
            payload["serving"] = serving
            payload["degraded"] = serving["degraded"]
        else:
            payload["degraded"] = False
        return payload

    def ready(self) -> bool:
        """Readiness: the model is loaded and every serving worker is up.

        In-loop serving is ready as soon as the server exists (the
        constructor requires a loaded model); with an engine, readiness
        additionally requires every worker slot live and caught up on
        the setup log — ``/health`` answers 503 until then.
        """
        if self.model is None:
            return False
        if self.engine is not None:
            return self.engine.ready()
        return True

    def op_health(self) -> Dict[str, Any]:
        ready = self.ready()
        payload: Dict[str, Any] = {
            "status": "ok" if ready else "unavailable",
            "ready": ready,
        }
        if self.engine is not None:
            payload["workers"] = self.engine.liveness()
        return payload

    def request_shutdown(self) -> None:
        """Signal the run loop to drain and exit."""
        if self.shutdown_event is not None:
            self.shutdown_event.set()

    async def handle_request(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded request; raises :class:`ServingError` on bad input."""
        if op == "predict":
            return await self.op_predict(request)
        if op == "topk":
            return await self.op_topk(request)
        if op == "stats":
            return self.op_stats()
        if op == "health":
            return self.op_health()
        if op == "shutdown":
            self.request_shutdown()
            return {"status": "shutting down"}
        raise ServingError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    # HTTP transport
    # ------------------------------------------------------------------
    async def _http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._http_one(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        body = (json.dumps(payload) + "\n").encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            503: "Service Unavailable",
        }.get(status, "Error")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
        )
        writer.write(body)
        with contextlib.suppress(ConnectionError):
            await writer.drain()
        writer.close()

    async def _http_one(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if content_length > MAX_BODY_BYTES:
            return 400, {"error": "request body too large"}
        request: Dict[str, Any] = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                request = json.loads(raw)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            if not isinstance(request, dict):
                return 400, {"error": "JSON body must be an object"}
        route = {
            ("GET", "/health"): "health",
            ("GET", "/stats"): "stats",
            ("POST", "/predict"): "predict",
            ("POST", "/topk"): "topk",
            ("POST", "/shutdown"): "shutdown",
        }.get((method, path))
        if route is None:
            return 404, {"error": f"no route for {method} {path}"}
        try:
            payload = await self.handle_request(route, request)
        except (ServingError, ReproError, ValueError) as exc:
            return 400, {"error": str(exc)}
        if route == "health" and not payload.get("ready", True):
            return 503, payload
        return 200, payload

    # ------------------------------------------------------------------
    # stdin JSON-lines transport
    # ------------------------------------------------------------------
    async def _stdio_loop(self) -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        while not reader.at_eof():
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ServingError("each line must be a JSON object")
                op = str(request.get("op", ""))
                reply = await self.handle_request(op, request)
            except (ServingError, ReproError, ValueError) as exc:
                reply = {"error": str(exc)}
            sys.stdout.write(json.dumps(reply) + "\n")
            sys.stdout.flush()
            if self.shutdown_event is not None and self.shutdown_event.is_set():
                return
        # EOF on stdin: the driving process is gone, drain and leave.
        self.request_shutdown()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(
        self,
        host: Optional[str] = "127.0.0.1",
        port: int = 8763,
        stdio: bool = False,
    ) -> None:
        """Serve until shutdown is requested, then drain and return.

        ``host=None`` disables the HTTP listener (stdin-only serving);
        ``stdio=True`` additionally reads JSON-lines requests from stdin.
        A started server prints ``serving on http://HOST:PORT`` so
        callers (the CI smoke test, humans in a terminal) know the socket
        is live before the first request.
        """
        self.shutdown_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signame in ("SIGTERM", "SIGINT"):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(
                    getattr(signal, signame), self.request_shutdown
                )
        http_server = None
        if host is not None:
            http_server = await asyncio.start_server(
                self._http_connection, host=host, port=port
            )
            bound = http_server.sockets[0].getsockname()
            print(f"serving on http://{bound[0]}:{bound[1]}", flush=True)
        stdio_task = (
            asyncio.ensure_future(self._stdio_loop()) if stdio else None
        )
        poll_task = (
            asyncio.ensure_future(self._engine_poll_loop())
            if self.engine is not None
            else None
        )
        try:
            await self.shutdown_event.wait()
        finally:
            if http_server is not None:
                http_server.close()
                await http_server.wait_closed()
            if stdio_task is not None:
                stdio_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await stdio_task
            if poll_task is not None:
                poll_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await poll_task
            await self.batcher.close()

    async def _engine_poll_loop(self, interval: float = 0.25) -> None:
        """Drive worker respawns/heartbeat checks even with no traffic.

        Without this, a killed serving worker would only be detected and
        respawned when the next query touches the supervisor.
        """
        loop = asyncio.get_running_loop()
        while True:
            await loop.run_in_executor(None, self.engine.poll)
            await asyncio.sleep(interval)


def serve_model(
    model: ServingModel,
    host: Optional[str] = "127.0.0.1",
    port: int = 8763,
    stdio: bool = False,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    engine: Optional[ServingWorkerEngine] = None,
) -> None:
    """Blocking entry point: build a :class:`ModelServer` and run it.

    A passed ``engine`` is owned for the duration of the call: its worker
    pool is shut down when serving stops, however serving stops.
    """
    server = ModelServer(
        model, max_batch=max_batch, max_wait_ms=max_wait_ms, engine=engine
    )
    try:
        asyncio.run(server.run(host=host, port=port, stdio=stdio))
    finally:
        if engine is not None:
            engine.shutdown()
