"""Hot-row LRU cache with structured hit/miss counters.

Serving traffic is Zipf-shaped: a small set of hot users accounts for most
queries.  The expensive per-query step for those users is the rank-space
projection ``q = core ×_{k≠m} u_k`` (and, for memory-mapped models, the
factor-row gather itself touches disk).  :class:`LRUCache` keeps the most
recently used of these by key, so a repeat query skips straight to the
``q · U_m^T`` scoring.

Counting goes through :class:`repro.metrics.Counters` — the one structured
stats mechanism of the serving layer — so the cache's ``hit`` / ``miss`` /
``eviction`` numbers surface on the server's ``/stats`` endpoint with no
private bookkeeping.  A shared :class:`~repro.metrics.Counters` may be
passed in, in which case this cache's events are recorded under
``<name>.hit`` etc. in that registry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, TypeVar

from ..metrics import Counters

T = TypeVar("T")


class LRUCache:
    """A bounded least-recently-used mapping with event counters.

    ``capacity <= 0`` disables caching entirely (every lookup is a miss,
    nothing is stored) — the serving CLI maps ``--cache-rows 0`` to this,
    so cold-cache benchmarks measure the true uncached path rather than a
    cache that is merely small.
    """

    def __init__(
        self,
        capacity: int,
        name: str = "cache",
        counters: Optional[Counters] = None,
    ) -> None:
        self.capacity = int(capacity)
        self.name = name
        self.counters = counters if counters is not None else Counters()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _count(self, event: str) -> None:
        self.counters.add(f"{self.name}.{event}")

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (marked most recent), else None."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._count("hit")
            return self._entries[key]
        self._count("miss")
        return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``key``, evicting the least recently used beyond capacity."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._count("eviction")

    def get_or_compute(self, key: Hashable, compute: Callable[[], T]) -> T:
        """``get`` with a fallback compute-and-store on miss."""
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry if cached; counted under ``<name>.invalidation``."""
        if key in self._entries:
            del self._entries[key]
            self._count("invalidation")
            return True
        return False

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        This is the surgical half of a hot-swap: only the keys an update
        actually staled are evicted (each counted as an invalidation);
        everything else stays warm.  Returns the number dropped.
        """
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
            self._count("invalidation")
        return len(stale)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready stats: size, capacity, counters and hit rate."""
        hits = self.counters.get(f"{self.name}.hit")
        misses = self.counters.get(f"{self.name}.miss")
        total = hits + misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": hits,
            "misses": misses,
            "evictions": self.counters.get(f"{self.name}.eviction"),
            "invalidations": self.counters.get(f"{self.name}.invalidation"),
            "hit_rate": (hits / total) if total else 0.0,
        }
