"""Rank-space top-K: BLAS screening, deterministic rescoring, canonical ties.

The serving top-K for a query against item mode ``m`` is::

    q = core ×_{k≠m} u_k          # rank-space projection, shape (J_m,)
    scores = Q @ U_m^T            # (B, J_m) · (J_m, I_m) -> (B, I_m)
    topk(scores[b])               # exact K best items per query

The serving layer promises *batched == unbatched == single-query,
bitwise*.  A plain BLAS GEMM cannot deliver that on its own — BLAS
retiles with the batch shape, so ``(Q @ P)[i]`` and ``(Q[i:i+1] @ P)[0]``
can differ in the last ulp (measured on this container, not
hypothetical) — while a fully deterministic elementwise scorer cannot
deliver the throughput (its ``O(B·I·J)`` temporary traffic never
amortises across the batch).  :func:`topk_scores` therefore splits the
work so each half does what it is good at:

1. **Screen (fast, approximate).**  One BLAS GEMM scores the whole item
   axis.  These scores are *only* used to select candidates, never
   returned.
2. **Margin (rigorous).**  Any float summation of ``J`` products lies
   within ``γ_J · Σ_j |q_j p_ji|`` of the true value, whatever the
   accumulation order, so the GEMM score and the deterministic score of
   an item differ by at most ``Δ = 2 γ_J · ‖q‖_∞ · max_i Σ_j |p_ji|``
   (:func:`projection_margin`; γ_J ≈ J·ε, and the implementation doubles
   it for slack).  With τ a value at least ``k`` screening scores reach,
   every member of the exact top-K — and every exact boundary tie —
   screens at ``≥ τ - 2Δ``.  The candidate set ``{i : Ŝ_i ≥ τ - 2Δ}``
   is therefore a provable superset, typically barely larger than ``k``.
3. **Rescore (exact, deterministic).**  Candidates are rescored by
   :func:`score_block`, whose explicit per-``j`` elementwise loop fixes
   each element's accumulation order regardless of batch or block shape,
   and selected by the canonical rule.

The final answer is the canonical top-K of the *deterministic* scores —
a pure function of (q, projection, k) — so batch size, row/column
blocking, and even the screening GEMM's non-determinism cannot change a
returned item or score.  **Canonical rule** (:func:`canonical_topk`):
threshold = the K-th largest score; every item strictly above it is in;
remaining slots go to threshold-tied items in ascending item order;
final ordering is ``(-score, item)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Chunk width for the screening pass's per-chunk maxima (used to find τ
#: without a full argpartition per row when ``k`` is small).
DEFAULT_COL_BLOCK = 2048

#: Cap on screening-matrix size: rows per GEMM chunk is chosen so the
#: ``(rows, I_m)`` score block stays near 256 MB however large the batch.
SCREEN_BLOCK_CELLS = 32_000_000

#: Largest rows-per-chunk even for tiny item modes.
MAX_ROW_BLOCK = 1024


@dataclass(frozen=True)
class TopKResult:
    """Top-K items for one query, ordered by ``(-score, item)``."""

    items: np.ndarray  # (k,) int64 item indices
    scores: np.ndarray  # (k,) float64 scores


def score_block(q_rows: np.ndarray, projection_block: np.ndarray) -> np.ndarray:
    """``(rows, J) x (J, C) -> (rows, C)`` scores, batch-shape invariant.

    ``projection_block`` is (a column subset of) the precomputed item
    projection ``U_m^T`` — rank-major, so each ``projection_block[j]`` is
    a contiguous run of item coefficients.  The rank axis is accumulated
    with an explicit ``j`` loop of elementwise multiply-adds into a
    preallocated output: element ``[b, i]`` is always
    ``(((q[b,0]·p[0,i]) + q[b,1]·p[1,i]) + ...)`` no matter the number of
    rows, which columns were gathered, or the surrounding batch.  This is
    the scorer of record — every returned score comes from here.
    """
    rows = q_rows.shape[0]
    cols = projection_block.shape[1]
    out = np.zeros((rows, cols), dtype=np.float64)
    tmp = np.empty((rows, cols), dtype=np.float64)
    for j in range(q_rows.shape[1]):
        np.multiply(q_rows[:, j : j + 1], projection_block[j], out=tmp)
        out += tmp
    return out


def score_pairs(
    q_block: np.ndarray,
    item_projection: np.ndarray,
    row_map: np.ndarray,
    col_map: np.ndarray,
) -> np.ndarray:
    """Deterministic scores of ``(row, item)`` pairs, one per map entry.

    Computes ``out[t] = q_block[row_map[t]] · item_projection[:, col_map[t]]``
    with the same explicit per-``j`` sequential accumulation as
    :func:`score_block` — element ``t`` sees the identical IEEE operation
    sequence, so the result is bitwise equal to gathering
    ``score_block(q_block, item_projection)[row_map, col_map]`` while only
    touching the candidate pairs.  This is how the batched path rescores
    every row's candidates in one vectorized pass.
    """
    total = row_map.shape[0]
    out = np.zeros(total, dtype=np.float64)
    tmp = np.empty(total, dtype=np.float64)
    for j in range(q_block.shape[1]):
        np.multiply(q_block[row_map, j], item_projection[j, col_map], out=tmp)
        out += tmp
    return out


def projection_margin(item_projection: np.ndarray) -> float:
    """``max_i Σ_j |p_ji|`` — the screening error scale of a projection.

    Computed once per (model, mode); multiplied by ``‖q‖_∞`` and the
    summation constant it bounds how far any two float orderings of a
    score can disagree (step 2 of the module docstring).
    """
    if item_projection.size == 0:
        return 0.0
    return float(np.abs(item_projection).sum(axis=0).max())


def canonical_topk(
    scores: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
) -> TopKResult:
    """Exact top-K of one score vector under the canonical tie rule.

    ``exclude`` is an optional int array of item indices removed from
    consideration (observed entries).  ``k`` larger than the number of
    eligible items returns them all.  Ordering: descending score, ties by
    ascending item index — a pure function of the values, so every
    scoring/screening strategy must reproduce it exactly.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if exclude is not None and len(exclude):
        eligible = np.ones(scores.shape[0], dtype=bool)
        eligible[np.asarray(exclude, dtype=np.int64)] = False
        candidates = np.nonzero(eligible)[0]
    else:
        candidates = np.arange(scores.shape[0], dtype=np.int64)
    k = min(int(k), candidates.shape[0])
    if k <= 0:
        empty = np.zeros(0, dtype=np.int64)
        return TopKResult(items=empty, scores=np.zeros(0, dtype=np.float64))
    return _select_canonical(scores[candidates], candidates, k)


def _select_canonical(
    values: np.ndarray, items: np.ndarray, k: int
) -> TopKResult:
    """Canonical top-``k`` over candidate ``values`` labelled by ``items``.

    ``items`` must be ascending and ``k`` already clamped to
    ``len(values) >= k >= 1``.
    """
    if k < values.shape[0]:
        # Threshold = k-th largest value; selection is by value comparison
        # only, so argpartition's internal tie behaviour cannot leak.
        threshold = values[np.argpartition(values, -k)[-k]]
        above = items[values > threshold]
        need = k - above.shape[0]
        at = items[values == threshold]
        # Ties at the boundary: smallest item indices win.  ``items`` is
        # ascending, so ``at`` is already sorted.
        chosen = np.concatenate([above, at[:need]])
    else:
        chosen = items
    chosen_scores = values[np.searchsorted(items, chosen)]
    order = np.lexsort((chosen, -chosen_scores))
    return TopKResult(
        items=chosen[order].astype(np.int64, copy=False),
        scores=chosen_scores[order],
    )


def _exact_row(
    q_row: np.ndarray,
    item_projection: np.ndarray,
    k: int,
    exclude: Optional[np.ndarray],
) -> TopKResult:
    """Deterministic full-scan reference path (exclusion / degenerate rows)."""
    scores = score_block(q_row.reshape(1, -1), item_projection)[0]
    return canonical_topk(scores, k, exclude)


def topk_scores(
    q_block: np.ndarray,
    item_projection: np.ndarray,
    k: int,
    exclude: Optional[List[Optional[np.ndarray]]] = None,
    margin: Optional[float] = None,
    col_block: int = DEFAULT_COL_BLOCK,
    row_block: Optional[int] = None,
) -> List[TopKResult]:
    """Top-K per row of ``q_block`` against an item projection matrix.

    ``q_block`` is ``(B, J)``, ``item_projection`` the precomputed
    rank-major ``(J, I)`` transpose of the item factor; returns one
    :class:`TopKResult` per query.  ``exclude`` optionally carries one
    index array (or None) per query (those rows take the deterministic
    full-scan path).  ``margin`` is :func:`projection_margin` of the
    projection — pass the cached value to skip recomputation.

    Implements the screen → margin → rescore pipeline of the module
    docstring: results are bitwise identical to scoring every item with
    :func:`score_block` and calling :func:`canonical_topk` row by row —
    for any batch size and any block geometry.
    """
    q_block = np.ascontiguousarray(q_block, dtype=np.float64)
    rank = q_block.shape[1]
    items_total = item_projection.shape[1]
    k = min(int(k), items_total)
    if items_total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return [
            TopKResult(items=empty, scores=np.zeros(0, dtype=np.float64))
            for _ in range(q_block.shape[0])
        ]
    if k <= 0:
        return [
            TopKResult(
                items=np.zeros(0, dtype=np.int64),
                scores=np.zeros(0, dtype=np.float64),
            )
            for _ in range(q_block.shape[0])
        ]
    if margin is None:
        margin = projection_margin(item_projection)
    if row_block is None:
        row_block = max(
            1, min(MAX_ROW_BLOCK, SCREEN_BLOCK_CELLS // max(items_total, 1))
        )
    n_chunks = max(1, -(-items_total // col_block))
    chunk_starts = np.arange(0, items_total, col_block)
    eps = float(np.finfo(np.float64).eps)
    results: List[Optional[TopKResult]] = [None] * q_block.shape[0]

    for row_start in range(0, q_block.shape[0], row_block):
        row_stop = min(row_start + row_block, q_block.shape[0])
        rows = q_block[row_start:row_stop]
        n_rows = rows.shape[0]
        # Screening pass: one BLAS GEMM for the whole row chunk, plus
        # per-chunk maxima to find τ without a full per-row argpartition.
        screen = rows @ item_projection
        # Chunk maxima via a reshaped reduction (remainder chunk apart) —
        # same values as maximum.reduceat but a contiguous inner loop.
        main = (items_total // col_block) * col_block
        if main:
            chunk_max = screen[:, :main].reshape(n_rows, -1, col_block).max(
                axis=2
            )
            if main < items_total:
                tail = screen[:, main:].max(axis=1, keepdims=True)
                chunk_max = np.concatenate([chunk_max, tail], axis=1)
        else:
            chunk_max = screen.max(axis=1, keepdims=True)
        # τ per row: a value at least k screening scores reach.  Each chunk
        # maximum is a real screening score, so the k-th largest chunk
        # maximum qualifies when there are at least k chunks; otherwise
        # fall back to each row's k-th largest score.  Thresholds carry the
        # per-row float error margin (2Δ of the module docstring, doubled).
        if n_chunks > k:
            taus = np.partition(chunk_max, n_chunks - k, axis=1)[
                :, n_chunks - k
            ]
        else:
            taus = np.partition(screen, items_total - k, axis=1)[
                :, items_total - k
            ]
        q_max = np.abs(rows).max(axis=1) if rank else np.zeros(n_rows)
        thresholds = taus - 4.0 * rank * eps * q_max * margin
        # Rows without exclusions/degeneracy accumulate their candidates
        # here and are rescored together in one score_pairs pass.
        pending_rows: List[int] = []
        pending_cands: List[np.ndarray] = []
        for local, row in enumerate(range(row_start, row_stop)):
            row_exclude = exclude[row] if exclude is not None else None
            if row_exclude is not None and len(row_exclude):
                results[row] = _exact_row(
                    q_block[row], item_projection, k, row_exclude
                )
                continue
            threshold = thresholds[local]
            # Only chunks whose maximum clears the threshold can contain a
            # candidate — scan those instead of the whole row (the chunks
            # that establish τ always qualify, so ≥ k candidates survive).
            live = np.nonzero(chunk_max[local] >= threshold)[0]
            if live.shape[0] * col_block >= items_total:
                candidates = np.nonzero(screen[local] >= threshold)[0]
            else:
                parts = []
                for c in live:
                    start = int(chunk_starts[c])
                    stop = min(start + col_block, items_total)
                    hits = np.nonzero(screen[local, start:stop] >= threshold)[0]
                    parts.append(hits + start)
                candidates = (
                    np.concatenate(parts)
                    if parts
                    else np.zeros(0, dtype=np.int64)
                )
            if candidates.shape[0] >= items_total // 2:
                # Degenerate screen (massive ties, zero query): the exact
                # scan costs the same as rescoring everything.
                results[row] = _exact_row(
                    q_block[row], item_projection, k, None
                )
                continue
            pending_rows.append(row)
            pending_cands.append(candidates)
        if pending_rows:
            counts = [c.shape[0] for c in pending_cands]
            row_map = np.repeat(
                np.asarray(pending_rows, dtype=np.int64), counts
            )
            col_map = np.concatenate(pending_cands)
            exact = score_pairs(q_block, item_projection, row_map, col_map)
            offset = 0
            for row, candidates in zip(pending_rows, pending_cands):
                count = candidates.shape[0]
                results[row] = _select_canonical(
                    exact[offset : offset + count],
                    candidates,
                    min(k, count),
                )
                offset += count
    return [r for r in results if r is not None]
