"""Micro-batching: coalesce concurrent requests into one kernel call.

One top-K query pays the full read of the item projection matrix
``U_m`` (``I_m × J_m`` floats); a batch of B queries pays it once and
amortises it B ways — on the serving box that memory traffic, not FLOPs,
is the per-query cost.  :class:`MicroBatcher` therefore holds each
arriving request for at most ``max_wait_ms`` while more requests of the
same kind accumulate, then executes the whole group as one call to the
handler.

Correctness note: batching is *free* here — the model's kernels are
batch-invariant (see :mod:`repro.serve.topk` and the ``batch_invariant``
contraction flag), so a request's answer is bitwise identical whether it
rode alone or in a full batch.  The batcher only changes latency and
throughput, never results.

Requests are grouped by an opaque ``group`` key (query kind plus every
parameter that must match for requests to share a kernel call, e.g.
``("topk", mode, k)``).  Occupancy statistics go to a shared
:class:`repro.metrics.Counters`: ``batch.requests``, ``batch.batches``,
``batch.full_flushes`` and ``batch.max_occupancy`` feed the server's
``/stats`` endpoint, so mean occupancy is ``requests / batches`` with no
second counting mechanism.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..metrics import Counters

#: Default maximum requests coalesced into one kernel call.
DEFAULT_MAX_BATCH = 256

#: Default maximum milliseconds a request waits for companions.
DEFAULT_MAX_WAIT_MS = 2.0

#: ``handler(group, payloads) -> results`` — one result per payload, same
#: order.  Runs in an executor, so it may block on CPU work.
BatchHandler = Callable[[Hashable, List[Any]], List[Any]]


class MicroBatcher:
    """Coalesces awaited requests into bounded, time-limited batches.

    Each pending group flushes when it reaches ``max_batch`` requests or
    when its oldest request has waited ``max_wait_ms`` — whichever comes
    first; a lone request therefore never waits longer than the deadline.
    Handler execution happens in the event loop's default executor so the
    loop keeps accepting (and grouping) requests while a batch computes.
    """

    def __init__(
        self,
        handler: BatchHandler,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        counters: Optional[Counters] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.handler = handler
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.counters = counters if counters is not None else Counters()
        self._pending: Dict[
            Hashable, List[Tuple[Any, "asyncio.Future[Any]"]]
        ] = {}
        self._timers: Dict[Hashable, "asyncio.TimerHandle"] = {}
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._closed = False

    async def submit(self, group: Hashable, payload: Any) -> Any:
        """Enqueue one request and await its result.

        Raises whatever the handler raised for the batch the request
        landed in; raises ``RuntimeError`` after :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        bucket = self._pending.setdefault(group, [])
        bucket.append((payload, future))
        self.counters.add("batch.requests")
        if len(bucket) >= self.max_batch:
            self._flush(group, reason="full")
        elif group not in self._timers:
            self._timers[group] = loop.call_later(
                self.max_wait_ms / 1e3, self._flush, group
            )
        return await future

    def _flush(self, group: Hashable, reason: str = "deadline") -> None:
        timer = self._timers.pop(group, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(group, None)
        if not bucket:
            return
        self.counters.add("batch.batches")
        if reason == "full":
            self.counters.add("batch.full_flushes")
        occupancy = len(bucket)
        if occupancy > self.counters.get("batch.max_occupancy"):
            self.counters.values["batch.max_occupancy"] = occupancy
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._run_batch(group, bucket))
        # Keep a strong reference until done (asyncio only holds weakly).
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(
        self, group: Hashable, bucket: List[Tuple[Any, "asyncio.Future[Any]"]]
    ) -> None:
        payloads = [payload for payload, _ in bucket]
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None, self.handler, group, payloads
            )
            if len(results) != len(payloads):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(payloads)} requests"
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded to awaiters
            for _, future in bucket:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(bucket, results):
            if not future.done():
                future.set_result(result)

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight batches."""
        for group in list(self._pending):
            self._flush(group, reason="drain")
        inflight = list(self._inflight)
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)

    async def close(self) -> None:
        """Drain, then reject all future submissions."""
        self._closed = True
        await self.drain()

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready occupancy stats for ``/stats``."""
        requests = self.counters.get("batch.requests")
        batches = self.counters.get("batch.batches")
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "requests": requests,
            "batches": batches,
            "full_flushes": self.counters.get("batch.full_flushes"),
            "max_occupancy": self.counters.get("batch.max_occupancy"),
            "mean_occupancy": (requests / batches) if batches else 0.0,
        }
