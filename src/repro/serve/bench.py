"""Serving-layer benchmark: top-K/predict latency and throughput grids.

Times the serving hot paths on synthetic models at serving-scale item
counts:

* **Batched vs. unbatched top-K** — for each ``(items, rank)`` cell the
  same ``k=10`` workload runs through :meth:`ServingModel.topk` one query
  at a time (the unbatched per-query loop) and through
  :meth:`ServingModel.topk_batch` at each batch size.  Every row records
  request-level ``p50_ms``/``p99_ms``, per-query milliseconds and ``qps``;
  batched rows also record ``speedup_vs_unbatched`` and assert the batched
  results are **bitwise identical** to the unbatched ones
  (``matches_unbatched``) — the screening design of
  :mod:`repro.serve.topk` makes the speedup free of any result drift.
* **Naive per-entry loop** — the pre-serving way to rank a fibre: call
  :meth:`ServingModel.predict` once per item.  Measured over a slice of
  the item axis and extrapolated (``naive_extrapolated``), because at
  200k items a single query would take tens of seconds.
* **Cold vs. warm projection cache** — per-query rank-space projection
  latency on first sight of a context (cold, all misses) against the
  second pass over the same contexts (warm, all hits), with the measured
  hit rate.
* **Batched predict** — point predictions at batch 4096 against the
  per-entry loop.

Single-CPU honesty: the screening GEMM is the one serving stage that
scales with cores while the unbatched GEMV stays memory-bound, so the
batched/unbatched ratios recorded on a one-CPU container (see
``environment.single_cpu_caveat``) are a *floor* — multicore hardware
widens them.

``benchmarks/bench_serving.py`` wraps :func:`run_serving_bench` as a
script (writing ``BENCH_serving.json``) and as a ``slow``-marked pytest
benchmark; see ``docs/BENCHMARKS.md`` for the column glossary.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.environment import bench_environment
from ..metrics.timing import percentile
from .model import ServingModel

#: Full default grid.  The (items=200k, rank=256) cell is the acceptance
#: cell: batched top-K at batch 1024 against the unbatched per-query loop
#: is FLOP-bound GEMM vs. memory-bound GEMV there, which is where batching
#: pays an order of magnitude even on one core.
DEFAULT_GRID: Tuple[Dict[str, int], ...] = (
    {"items": 2_000, "rank": 16},
    {"items": 50_000, "rank": 64},
    {"items": 200_000, "rank": 64},
    {"items": 200_000, "rank": 256},
)

#: Reduced grid for smoke runs (pytest benchmark, ``--small`` flag).
SMALL_GRID: Tuple[Dict[str, int], ...] = (
    {"items": 2_000, "rank": 8},
    {"items": 10_000, "rank": 16},
)

#: Batch sizes timed per cell; 1 is the unbatched per-query loop and the
#: baseline every ``speedup_vs_unbatched`` column divides against.
DEFAULT_BATCH_SIZES: Tuple[int, ...] = (1, 64, 1024)

TOP_K = 10
ITEM_MODE = 1


def _build_model(
    items: int, rank: int, seed: int, users: int = 4096
) -> ServingModel:
    """A synthetic serving model with ``items`` rows on the item mode.

    The query cache is disabled so throughput rows time real projections
    on every pass (the cache has its own cold/warm measurement).
    """
    rng = np.random.default_rng(seed)
    shape = (users, items, 8)
    ranks = (8, rank, 4)
    factors = [rng.standard_normal((d, r)) for d, r in zip(shape, ranks)]
    core = rng.standard_normal(ranks)
    return ServingModel(factors, core, algorithm="ptucker", query_cache=0)


def _workload(model: ServingModel, n: int, seed: int) -> List[Tuple[int, ...]]:
    """``n`` random full-context queries for ``model``."""
    rng = np.random.default_rng(seed)
    return [
        tuple(int(rng.integers(d)) for d in model.shape) for _ in range(n)
    ]


def _latency_columns(samples: List[float], queries_per_sample: int) -> Dict[str, float]:
    """Request-level p50/p99 plus per-query mean and QPS for one pass."""
    window = sorted(samples)
    total = sum(samples)
    queries = len(samples) * queries_per_sample
    return {
        "n_requests": len(samples),
        "p50_ms": percentile(window, 0.50) * 1e3,
        "p99_ms": percentile(window, 0.99) * 1e3,
        "ms_per_query": total / queries * 1e3,
        "qps": queries / total if total > 0 else float("nan"),
    }


def _bench_topk_cell(
    model: ServingModel,
    contexts: Sequence[Tuple[int, ...]],
    batch_sizes: Sequence[int],
    unbatched_queries: int,
    repeats: int,
) -> List[Dict[str, object]]:
    """One (items, rank) cell: the unbatched loop and every batch size.

    The unbatched loop runs over a prefix of the workload (large item
    modes make per-query GEMVs expensive; the prefix keeps full-grid runs
    in minutes) and batched passes cover the whole workload.  Batched
    results for that prefix are compared bitwise against the unbatched
    ones.
    """
    items = model.shape[ITEM_MODE]
    rank = model.ranks[ITEM_MODE]
    prefix = list(contexts[:unbatched_queries])

    model.topk_batch(prefix[:8], ITEM_MODE, TOP_K)  # warm projections

    rows: List[Dict[str, object]] = []
    unbatched: List[object] = []
    unbatched_ms_per_query = None
    for batch in batch_sizes:
        samples: List[float] = []
        outputs: List[object] = []
        for _ in range(max(1, repeats)):
            outputs = []
            if batch == 1:
                for context in prefix:
                    start = perf_counter()
                    outputs.append(model.topk(context, ITEM_MODE, TOP_K))
                    samples.append(perf_counter() - start)
            else:
                for start_idx in range(0, len(contexts), batch):
                    chunk = list(contexts[start_idx : start_idx + batch])
                    start = perf_counter()
                    outputs.extend(model.topk_batch(chunk, ITEM_MODE, TOP_K))
                    samples.append(perf_counter() - start)
        row: Dict[str, object] = {
            "path": "topk",
            "items": int(items),
            "rank": int(rank),
            "k": TOP_K,
            "batch": int(batch),
        }
        if batch == 1:
            unbatched = outputs
            columns = _latency_columns(samples, queries_per_sample=1)
            unbatched_ms_per_query = columns["ms_per_query"]
            row.update(columns)
            row["speedup_vs_unbatched"] = 1.0
        else:
            # Request latency is per *batch*; ms_per_query/qps divide it out.
            window = sorted(samples)
            total = sum(samples)
            queries = len(contexts) * max(1, repeats)
            row.update(
                {
                    "n_requests": len(samples),
                    "p50_ms": percentile(window, 0.50) * 1e3,
                    "p99_ms": percentile(window, 0.99) * 1e3,
                    "ms_per_query": total / queries * 1e3,
                    "qps": queries / total if total > 0 else float("nan"),
                }
            )
            row["speedup_vs_unbatched"] = (
                unbatched_ms_per_query / row["ms_per_query"]
                if unbatched_ms_per_query
                else float("nan")
            )
            row["matches_unbatched"] = all(
                np.array_equal(b.items, s.items)
                and np.array_equal(b.scores, s.scores)
                for b, s in zip(outputs[: len(unbatched)], unbatched)
            )
        rows.append(row)
    return rows


def _bench_naive_loop(
    model: ServingModel, context: Tuple[int, ...], probe_items: int = 256
) -> Dict[str, object]:
    """The naive per-entry loop: one ``predict`` call per candidate item.

    Extrapolates a full-fibre scan from ``probe_items`` entries — at
    serving item counts the full loop takes tens of seconds per query,
    which is exactly why the serving layer exists.
    """
    items = model.shape[ITEM_MODE]
    probe = min(probe_items, items)
    entry = list(context)
    start = perf_counter()
    for item in range(probe):
        entry[ITEM_MODE] = item
        model.predict(tuple(entry))
    elapsed = perf_counter() - start
    per_query = elapsed / probe * items
    return {
        "naive_ms_per_query": per_query * 1e3,
        "naive_probe_items": int(probe),
        "naive_extrapolated": bool(probe < items),
    }


def _bench_projection_cache(
    items: int, rank: int, seed: int, n_contexts: int = 256
) -> Dict[str, object]:
    """Cold vs. warm per-query projection latency with the cache enabled."""
    rng = np.random.default_rng(seed)
    shape = (4096, items, 8)
    ranks = (8, rank, 4)
    factors = [rng.standard_normal((d, r)) for d, r in zip(shape, ranks)]
    core = rng.standard_normal(ranks)
    model = ServingModel(
        factors, core, algorithm="ptucker", query_cache=4 * n_contexts
    )
    contexts = _workload(model, n_contexts, seed + 1)
    model.project([contexts[0]], ITEM_MODE)  # warm the contraction plan

    def one_pass() -> List[float]:
        samples = []
        for context in contexts:
            start = perf_counter()
            model.project([context], ITEM_MODE)
            samples.append(perf_counter() - start)
        return sorted(samples)

    cold = one_pass()
    warm = one_pass()
    hits = model.counters.get("query_cache.hit")
    lookups = hits + model.counters.get("query_cache.miss")
    return {
        "items": int(items),
        "rank": int(rank),
        "project_cold_p50_ms": percentile(cold, 0.50) * 1e3,
        "project_cold_p99_ms": percentile(cold, 0.99) * 1e3,
        "project_warm_p50_ms": percentile(warm, 0.50) * 1e3,
        "project_warm_p99_ms": percentile(warm, 0.99) * 1e3,
        "warm_speedup": percentile(cold, 0.50) / max(percentile(warm, 0.50), 1e-12),
        "cache_hit_rate": hits / lookups if lookups else 0.0,
    }


def _bench_predict(
    model: ServingModel, seed: int, batch: int = 4096
) -> Dict[str, object]:
    """Batched point predictions against the per-entry loop."""
    rng = np.random.default_rng(seed)
    block = np.column_stack(
        [rng.integers(d, size=batch) for d in model.shape]
    )
    model.predict(block[:16])
    start = perf_counter()
    batched = model.predict(block)
    batched_seconds = perf_counter() - start

    probe = 256
    start = perf_counter()
    singles = [model.predict(block[i]) for i in range(probe)]
    loop_seconds = (perf_counter() - start) / probe * batch

    matches = all(
        batched[i] == singles[i][0] for i in range(probe)
    )
    return {
        "path": "predict",
        "items": int(model.shape[ITEM_MODE]),
        "rank": int(model.ranks[ITEM_MODE]),
        "batch": int(batch),
        "ms_per_query": batched_seconds / batch * 1e3,
        "qps": batch / batched_seconds,
        "naive_ms_per_query": loop_seconds / batch * 1e3,
        "speedup_vs_naive": loop_seconds / max(batched_seconds, 1e-12),
        "matches_unbatched": bool(matches),
        "naive_extrapolated": True,
    }


def run_serving_bench(
    grid: Optional[Sequence[Dict[str, int]]] = None,
    batch_sizes: Optional[Sequence[int]] = None,
    workload_queries: int = 1024,
    unbatched_queries: int = 64,
    repeats: int = 2,
    seed: int = 0,
) -> Dict[str, object]:
    """Run the serving grid and return a JSON-serialisable payload.

    ``workload_queries`` contexts flow through every batched pass;
    ``unbatched_queries`` of them also go through the per-query loop
    (its prefix results are the bitwise reference for the batched rows).
    """
    grid = tuple(DEFAULT_GRID if grid is None else grid)
    batch_sizes = tuple(DEFAULT_BATCH_SIZES if batch_sizes is None else batch_sizes)
    rows: List[Dict[str, object]] = []
    cache_rows: List[Dict[str, object]] = []
    for cell_seed, cell in enumerate(grid):
        items, rank = int(cell["items"]), int(cell["rank"])
        model = _build_model(items, rank, seed + cell_seed)
        contexts = _workload(model, workload_queries, seed + cell_seed + 100)
        cell_rows = _bench_topk_cell(
            model, contexts, batch_sizes, unbatched_queries, repeats
        )
        naive = _bench_naive_loop(model, contexts[0])
        for row in cell_rows:
            row.update(naive)
            row["speedup_vs_naive"] = (
                naive["naive_ms_per_query"] / row["ms_per_query"]
            )
        rows.extend(cell_rows)
        rows.append(_bench_predict(model, seed + cell_seed + 200))
        cache_rows.append(
            _bench_projection_cache(items, rank, seed + cell_seed + 300)
        )
    return {
        "benchmark": "serving",
        "k": TOP_K,
        "item_mode": ITEM_MODE,
        "workload_queries": int(workload_queries),
        "unbatched_queries": int(unbatched_queries),
        "repeats": int(repeats),
        "batch_sizes": [int(b) for b in batch_sizes],
        "rows": rows,
        "projection_cache": cache_rows,
        "environment": bench_environment(),
    }


def write_payload(payload: Dict[str, object], path: str) -> str:
    """Serialise a serving-bench payload to ``path`` and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
