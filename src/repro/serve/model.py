""":class:`ServingModel` — a fitted Tucker model held ready for queries.

Loading happens once (model ``.npz`` via :func:`repro.model_io.load_model`
or a checkpoint directory via :func:`repro.model_io.load_result`, the
latter optionally memory-mapped); every query after that touches only
precomputed state:

* **Point predictions** run through
  :func:`repro.kernels.contraction.make_value_contractor` with
  ``batch_invariant=True`` and a *fixed* ``plan_entries``, so the
  contraction plan — and therefore every answer, bit for bit — is
  independent of how many predictions share a call.
* **Top-K** queries never reconstruct anything dense.  The context rows
  are contracted into rank space (``q = core ×_{k≠m} u_k``, a length
  ``J_m`` vector, via the same batch-invariant δ kernel the solver uses
  with ``keep_mode = m``), and ``q`` is scored against the precomputed
  rank-major item projection ``U_m^T`` by the deterministic blocked
  scorer of :mod:`repro.serve.topk` — ``O(I_m · J_m)`` per query, with
  the projection read amortised across the batch.
* A hot-row :class:`~repro.serve.cache.LRUCache` keeps recent ``q``
  vectors per (mode, context), so repeat queries by the same user skip
  the core contraction entirely; a second cache keeps gathered factor
  rows when the model is memory-mapped.

Attaching the fit's shard store (:meth:`ServingModel.attach_store`)
enables ``exclude_observed``: the store's mode segmentation locates the
query context's observed entries and their item indices are masked out of
the ranking — "recommend something the user hasn't rated".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DataFormatError, ShapeError
from ..kernels.contraction import make_delta_contractor, make_value_contractor
from ..metrics import Counters
from ..model_io import load_result, validate_model
from .cache import LRUCache
from .topk import TopKResult, topk_scores

#: Contraction plans are built for this many entries regardless of actual
#: batch sizes — plan geometry must not vary with batching, or batched
#: and unbatched answers could differ.
PLAN_ENTRIES = 4096

#: Default capacity of the per-(mode, context) projected-vector cache.
DEFAULT_QUERY_CACHE = 4096

#: Default capacity of the gathered-factor-row cache (mmap-backed models).
DEFAULT_ROW_CACHE = 65536


class ServingModel:
    """Factors + core loaded once, answering point and top-K queries.

    ``factors`` may be plain arrays or read-only memory maps (checkpoint
    loading with ``mmap=True``); the core is always resident.  All public
    query methods are batch-invariant: a request's answer is bitwise
    identical whether it is evaluated alone, in a batch, or in a batch of
    different composition.
    """

    def __init__(
        self,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        algorithm: str = "",
        query_cache: int = DEFAULT_QUERY_CACHE,
        row_cache: int = DEFAULT_ROW_CACHE,
        counters: Optional[Counters] = None,
    ) -> None:
        core = np.asarray(core, dtype=np.float64)
        factors = [f for f in factors]
        validate_model(core, factors, "ServingModel")
        self.factors = factors
        self.core = core
        self.algorithm = algorithm
        self.shape = tuple(int(f.shape[0]) for f in factors)
        self.ranks = tuple(int(j) for j in core.shape)
        self.order = core.ndim
        self.counters = counters if counters is not None else Counters()
        self.query_cache = LRUCache(
            query_cache, name="query_cache", counters=self.counters
        )
        self.row_cache = LRUCache(
            row_cache, name="row_cache", counters=self.counters
        )
        self._store = None
        self.mmap_backed = any(isinstance(f, np.memmap) for f in factors)
        # Per-mode (projection, per-item abs-sums, margin) triples kept as
        # ONE tuple per mode: a top-K reader grabs the whole triple in a
        # single dict read, so a concurrent hot-swap can never pair a new
        # projection with a stale margin (which could mis-prune).
        self._projection_state: Dict[
            int, Tuple[np.ndarray, np.ndarray, float]
        ] = {}
        self._delta: Dict[int, object] = {}
        self._value = make_value_contractor(
            self.factors, self.core, PLAN_ENTRIES, batch_invariant=True
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str, mmap: bool = False, **kwargs) -> "ServingModel":
        """Load from a model ``.npz`` or a checkpoint directory.

        ``mmap=True`` (checkpoint directories only) maps the factor
        matrices read-only instead of copying them into RAM; hot rows are
        then staged through the row cache.
        """
        result = load_result(path, mmap=mmap)
        return cls(
            result.factors, result.core, algorithm=result.algorithm, **kwargs
        )

    def attach_store(self, store) -> None:
        """Attach the fit's shard store (object or directory path).

        Required only for ``exclude_observed`` top-K queries; the store's
        shape must match the model's.
        """
        if isinstance(store, str):
            from ..shards import ShardStore

            store = ShardStore.open(store)
        if tuple(store.shape) != self.shape:
            raise ShapeError(
                f"shard store shape {tuple(store.shape)} does not match "
                f"the model's {self.shape}"
            )
        self._store = store

    # ------------------------------------------------------------------
    # Precomputed per-mode state
    # ------------------------------------------------------------------
    def item_projection(self, mode: int) -> np.ndarray:
        """Rank-major ``(J_m, I_m)`` projection of mode ``m``'s factor.

        Built once per designated item mode on first use: the transpose
        is materialised C-contiguous so the blocked scorer streams
        contiguous item coefficients per rank component (and, for
        memory-mapped factors, so scoring never faults pages through a
        strided map).
        """
        return self._projection_entry(mode)[0]

    def _projection_entry(
        self, mode: int
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """``(projection, per-item abs-sums, margin)`` of an item mode.

        The abs-sum vector is retained so :meth:`apply_update` can patch
        the margin surgically (recompute only the swapped columns' sums
        and re-take the max) instead of rebuilding the projection — the
        ``model.projection_builds`` counter proves a swap never triggers
        a rebuild.
        """
        self._check_mode(mode)
        state = self._projection_state.get(mode)
        if state is None:
            projection = np.ascontiguousarray(
                np.asarray(self.factors[mode]).T, dtype=np.float64
            )
            if projection.size == 0:
                sums = np.zeros(projection.shape[1], dtype=np.float64)
                margin = 0.0
            else:
                sums = np.abs(projection).sum(axis=0)
                margin = float(sums.max()) if sums.size else 0.0
            state = (projection, sums, margin)
            self._projection_state[mode] = state
            self.counters.add("model.projection_builds")
        return state

    def _delta_contractor(self, mode: int):
        """The batch-invariant rank-space kernel for item mode ``m``."""
        if mode not in self._delta:
            self._delta[mode] = make_delta_contractor(
                self.factors,
                self.core,
                mode,
                PLAN_ENTRIES,
                batch_invariant=True,
            )
        return self._delta[mode]

    def _check_mode(self, mode: int) -> None:
        if not 0 <= mode < self.order:
            raise ShapeError(
                f"mode {mode} out of range for an order-{self.order} model"
            )

    # ------------------------------------------------------------------
    # Point predictions
    # ------------------------------------------------------------------
    def predict(self, indices) -> np.ndarray:
        """Model values at a block of full index tuples, shape ``(m,)``.

        ``indices`` is ``(m, N)`` (or a single length-``N`` tuple).  Each
        value is Eq. (4) of the paper, evaluated through the
        batch-invariant full contraction — identical no matter the batch.
        """
        block = np.asarray(indices, dtype=np.int64)
        if block.ndim == 1:
            block = block.reshape(1, -1)
        self._check_indices(block)
        self._stage_rows(block, range(self.order))
        values = self._value(block)
        self.counters.add("model.predictions", block.shape[0])
        return values

    def _stage_rows(self, block: np.ndarray, modes) -> None:
        """Stage hot factor rows through the row cache (mmap models only).

        Memory-mapped factors gather rows straight off disk inside the
        contraction kernel; for hot rows that read should never fault.
        A cache miss here copies the row into the LRU — faulting its
        pages in ahead of the kernel's own gather — while a hit skips
        the prefetch.  This is staging, not a second math path: the
        kernel always performs the same gather afterwards, so cached and
        uncached queries share one code path bit for bit, and the hit /
        miss counters report how hot the working set actually is.
        """
        if not self.mmap_backed:
            return
        for k in modes:
            factor = self.factors[k]
            if not isinstance(factor, np.memmap):
                continue
            for index in np.unique(block[:, k]):
                key = ("row", k, int(index))
                self.row_cache.get_or_compute(
                    key, lambda f=factor, i=int(index): np.array(f[i])
                )

    def _check_indices(self, block: np.ndarray) -> None:
        if block.ndim != 2 or block.shape[1] != self.order:
            raise ShapeError(
                f"index block must be (m, {self.order}), got {block.shape}"
            )
        for k, dim in enumerate(self.shape):
            column = block[:, k]
            if column.size and (column.min() < 0 or column.max() >= dim):
                raise ShapeError(
                    f"mode-{k} index out of range [0, {dim}) in query block"
                )

    # ------------------------------------------------------------------
    # Top-K
    # ------------------------------------------------------------------
    def _context_block(
        self, contexts: Sequence[Sequence[int]], mode: int
    ) -> np.ndarray:
        """Normalise query contexts to full-width index rows.

        Each context is either a full length-``N`` tuple (the item-mode
        position is ignored and zeroed — the δ kernel never reads the
        kept mode's column) or a length-``N-1`` tuple of the non-item
        modes in ascending mode order.
        """
        block = np.zeros((len(contexts), self.order), dtype=np.int64)
        other = [k for k in range(self.order) if k != mode]
        for row, context in enumerate(contexts):
            context = tuple(int(c) for c in context)
            if len(context) == self.order:
                for k in other:
                    block[row, k] = context[k]
            elif len(context) == self.order - 1:
                for k, value in zip(other, context):
                    block[row, k] = value
            else:
                raise ShapeError(
                    f"top-K context needs {self.order} (full) or "
                    f"{self.order - 1} (item mode omitted) indices, "
                    f"got {len(context)}"
                )
        for k in other:
            column = block[:, k]
            if column.size and (column.min() < 0 or column.max() >= self.shape[k]):
                raise ShapeError(
                    f"mode-{k} index out of range [0, {self.shape[k]}) "
                    "in top-K context"
                )
        return block

    def project(
        self, contexts: Sequence[Sequence[int]], mode: int
    ) -> np.ndarray:
        """Rank-space query vectors ``q``, shape ``(B, J_mode)``, cached.

        Cache hits skip the core contraction; misses are contracted in
        one batch-invariant kernel call and inserted.  Because the kernel
        is batch-invariant, mixing cached and fresh vectors can never
        change a value.
        """
        block = self._context_block(contexts, mode)
        keys = [
            (mode,) + tuple(int(v) for v in row) for row in block
        ]
        q_block = np.empty((block.shape[0], self.ranks[mode]), dtype=np.float64)
        missing: List[int] = []
        for row, key in enumerate(keys):
            cached = self.query_cache.get(key)
            if cached is None:
                missing.append(row)
            else:
                q_block[row] = cached
        if missing:
            self._stage_rows(
                block[missing], [k for k in range(self.order) if k != mode]
            )
            fresh = self._delta_contractor(mode)(block[missing])
            for position, row in enumerate(missing):
                q_block[row] = fresh[position]
                self.query_cache.put(keys[row], np.array(fresh[position]))
        return q_block

    def topk(
        self,
        context: Sequence[int],
        mode: int,
        k: int,
        exclude_observed: bool = False,
    ) -> TopKResult:
        """Top-``k`` items of mode ``m`` for one query context."""
        return self.topk_batch([context], mode, k, exclude_observed)[0]

    def topk_batch(
        self,
        contexts: Sequence[Sequence[int]],
        mode: int,
        k: int,
        exclude_observed: bool = False,
    ) -> List[TopKResult]:
        """Top-``k`` items of mode ``m`` for a batch of query contexts.

        One rank-space projection per context (cached), one pass over the
        precomputed item projection for the whole batch.  With
        ``exclude_observed`` the attached shard store's entries matching
        each context are removed from the ranking.  Results are bitwise
        identical to issuing each query alone.
        """
        self._check_mode(mode)
        if int(k) < 0:
            raise ShapeError(f"k must be >= 0, got {k}")
        if not len(contexts):
            return []
        q_block = self.project(contexts, mode)
        exclude: Optional[List[Optional[np.ndarray]]] = None
        if exclude_observed:
            block = self._context_block(contexts, mode)
            exclude = [self._observed_items(row, mode) for row in block]
        projection, _, margin = self._projection_entry(mode)
        results = topk_scores(q_block, projection, k, exclude, margin=margin)
        self.counters.add("model.topk_queries", len(results))
        return results

    def _observed_items(self, context_row: np.ndarray, mode: int) -> np.ndarray:
        """Item indices of observed entries matching one query context."""
        if self._store is None:
            raise DataFormatError(
                "exclude_observed requires an attached shard store "
                "(ServingModel.attach_store / --shards)"
            )
        other = [k for k in range(self.order) if k != mode]
        anchor = other[0]
        row_ids, row_starts, row_counts = self._store.mode_segmentation(anchor)
        position = int(np.searchsorted(row_ids, context_row[anchor]))
        if position >= len(row_ids) or row_ids[position] != context_row[anchor]:
            return np.zeros(0, dtype=np.int64)
        start = int(row_starts[position])
        stop = start + int(row_counts[position])
        indices, _ = self._store.read_mode_block(anchor, start, stop)
        keep = np.ones(len(indices), dtype=bool)
        for k in other[1:]:
            keep &= np.asarray(indices[:, k], dtype=np.int64) == context_row[k]
        return np.asarray(indices[:, mode], dtype=np.int64)[keep]

    # ------------------------------------------------------------------
    # Hot-swap updates
    # ------------------------------------------------------------------
    def apply_update(
        self, mode: int, rows: np.ndarray, new_rows: np.ndarray
    ) -> int:
        """Atomically swap factor rows of ``mode`` into the live model.

        ``rows`` are factor row indices and ``new_rows`` their
        replacement values, typically straight from a targeted re-solve
        (:func:`repro.updates.resolve.solve_touched_rows`).  The swap is
        built on the side and published by plain attribute rebinding, so
        a concurrent query observes either the fully-old or the fully-new
        model, never a blend:

        * a fresh factor list and fresh value/δ contractors are
          constructed over it — a contraction plan precontracts factor
          *contents* into its tables at build time, so rebuilding over
          the snapshot is what keeps every closure self-consistent;
        * the item projection of ``mode`` is patched **surgically** —
          swapped columns assigned, their abs-sums recomputed, the margin
          re-maxed — never rebuilt (see ``model.projection_builds``);
        * only the cache entries the swap staled are invalidated: ``q``
          vectors whose context touches a swapped row of ``mode`` and
          staged copies of the swapped rows.  Everything else stays warm,
          and the cache's ``invalidations`` counter reconciles with the
          evicted keys.

        Returns the number of rows swapped.
        """
        self._check_mode(mode)
        rows = np.asarray(rows, dtype=np.int64).ravel()
        new_rows = np.asarray(new_rows, dtype=np.float64)
        if new_rows.ndim == 1:
            new_rows = new_rows.reshape(1, -1)
        if new_rows.shape != (rows.shape[0], self.ranks[mode]):
            raise ShapeError(
                f"apply_update needs ({rows.shape[0]}, {self.ranks[mode]}) "
                f"replacement rows for mode {mode}, got {new_rows.shape}"
            )
        if rows.size and (
            rows.min() < 0 or rows.max() >= self.shape[mode]
        ):
            raise ShapeError(
                f"mode-{mode} row index out of range "
                f"[0, {self.shape[mode]}) in apply_update"
            )
        if rows.size == 0:
            return 0
        if np.unique(rows).shape[0] != rows.shape[0]:
            raise ShapeError("apply_update rows must be unique")
        factor = np.array(
            np.asarray(self.factors[mode]), dtype=np.float64, copy=True
        )
        factor[rows] = new_rows
        new_factors = list(self.factors)
        new_factors[mode] = factor
        new_value = make_value_contractor(
            new_factors, self.core, PLAN_ENTRIES, batch_invariant=True
        )
        new_delta = {
            m: make_delta_contractor(
                new_factors, self.core, m, PLAN_ENTRIES, batch_invariant=True
            )
            for m in self._delta
        }
        new_states = dict(self._projection_state)
        if mode in new_states:
            projection, sums, _ = new_states[mode]
            projection = np.array(projection, copy=True)
            projection[:, rows] = new_rows.T
            sums = np.array(sums, copy=True)
            sums[rows] = np.abs(new_rows).sum(axis=1)
            margin = float(sums.max()) if sums.size else 0.0
            new_states[mode] = (projection, sums, margin)
            self.counters.add("model.projection_row_updates", rows.shape[0])
        # Publish: each assignment swaps a whole self-consistent object,
        # so any reader sees a coherent snapshot.
        self.factors = new_factors
        self.mmap_backed = any(isinstance(f, np.memmap) for f in new_factors)
        self._value = new_value
        self._delta = new_delta
        self._projection_state = new_states
        swapped = {int(r) for r in rows}
        self.query_cache.invalidate_where(
            lambda key: key[0] != mode and int(key[1 + mode]) in swapped
        )
        self.row_cache.invalidate_where(
            lambda key: key[1] == mode and int(key[2]) in swapped
        )
        self.counters.add("model.updates")
        self.counters.add("model.rows_swapped", rows.shape[0])
        return int(rows.shape[0])

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-ready model/query/cache stats for ``/stats``."""
        return {
            "algorithm": self.algorithm,
            "shape": list(self.shape),
            "ranks": list(self.ranks),
            "counters": self.counters.snapshot(),
            "query_cache": self.query_cache.snapshot(),
            "row_cache": self.row_cache.snapshot(),
        }
