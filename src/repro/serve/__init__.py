"""Low-latency serving over a fitted Tucker model.

Training answers "what are the factors"; this package answers "what does
the model say, right now, for this user" without ever reconstructing the
dense tensor:

* :mod:`repro.serve.model` — :class:`ServingModel` loads factors + core
  once (model ``.npz`` or checkpoint directory), answers point
  predictions through the batch-invariant value contractor and top-K
  queries in *rank space*: the core contracted with the query's context
  rows is a single length-``J_m`` vector ``q``, and scores over all
  ``I_m`` items are one ``q · U_m^T`` product — ``O(I_m · J_m)`` per
  query instead of the ``O(Π I_k)`` dense reconstruction.
* :mod:`repro.serve.topk` — the deterministic blocked scorer and
  canonical top-K selection those queries share (exact ties, bitwise
  batch-size independence).
* :mod:`repro.serve.cache` — the LRU hot-row cache (gathered factor rows,
  per-user projected ``q`` vectors) with hit/miss counters.
* :mod:`repro.serve.batch` — the asyncio micro-batcher coalescing
  concurrent requests into one kernel call.
* :mod:`repro.serve.server` — the stdlib asyncio HTTP / stdin JSON-lines
  front end with ``/stats`` and graceful shutdown.
* :mod:`repro.serve.workers` — multi-worker serving on the supervised
  execution fabric (:mod:`repro.fabric`): every worker holds the full
  model, top-K queries are item-sharded and canonical-merged (answers
  bitwise identical to in-loop), ``/health`` reports per-worker liveness
  (503 until ready), and the engine degrades gracefully to the in-loop
  model when workers die.

Everything reports stats through :class:`repro.metrics.Counters` and
:class:`repro.metrics.LatencyWindow` — no private counter mechanisms.
"""

from .batch import MicroBatcher
from .cache import LRUCache
from .model import ServingModel
from .topk import TopKResult, topk_scores
from .workers import ServingWorkerEngine

__all__ = [
    "LRUCache",
    "MicroBatcher",
    "ServingModel",
    "ServingWorkerEngine",
    "TopKResult",
    "topk_scores",
]
