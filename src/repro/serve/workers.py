"""Multi-worker serving: item-sharded queries over the execution fabric.

:class:`ServingWorkerEngine` puts a :class:`~repro.fabric.TaskSupervisor`
pool of worker processes behind the server's query path.  Every worker
loads the **full model** (a ``SETUP`` broadcast replayed to respawned
workers, so a replacement always rejoins with identical state); top-K
queries are then sharded along the **item axis** — worker task ``i``
scores items ``[lo_i, hi_i)`` — and the shard results are merged by the
canonical ``(-score, item)`` rule.  The merge is exact, ties included:
the blocked scorer of :mod:`repro.serve.topk` fixes each ``(q, item)``
score's accumulation order over the full rank axis regardless of which
column range it is computed in, so a shard's scores are bitwise equal to
the unsharded scorer's, and any global top-K member necessarily ranks in
its own shard's top-K.  Sharded answers are therefore bitwise identical
to single-process answers — the multi-worker chaos tests assert this
under worker SIGKILL.

Because any worker holds the whole model, the engine keeps serving
through failures: a dead worker's shard task is re-dispatched to a
surviving worker by the fabric, and if the pool is entirely broken the
engine **degrades gracefully** to the in-loop local model (the
``serve.fallbacks`` counter counts these, ``/stats`` reports
``degraded``) instead of failing requests.  ``/health`` exposes per-slot
liveness and turns ready only when every worker has acknowledged the
full setup log.

Hot-swaps (:meth:`ServingWorkerEngine.apply_update`) are fanned out as
ordered setup broadcasts and applied to the local fallback model under
the same lock that serializes query waves, so every query wave sees the
fully-old or fully-new model on every worker — never a blend.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fabric import FabricError, Task, TaskSupervisor
from ..metrics import Counters
from .model import ServingModel
from .topk import TopKResult, topk_scores

#: Per-query-wave deadline: a healthy shard task answers in milliseconds,
#: so only a wedged worker ever hits this.
TASK_DEADLINE_S = 30.0


# ----------------------------------------------------------------------
# Worker-side callables (referenced by dotted path in fabric frames)
# ----------------------------------------------------------------------

def _setup_model(context, payload):
    """Load the full serving model (and optional shard store) in-worker."""
    model_path, mmap, store_path = payload
    model = ServingModel.load(model_path, mmap=mmap)
    if store_path:
        model.attach_store(store_path)
    return model


def _apply_update(context, payload):
    """Apply one hot-swap to this worker's model (ordered, replay-logged)."""
    mode, rows, new_rows = payload
    return context.setups["model"].apply_update(mode, rows, new_rows)


def _worker_predict(context, payload):
    """Point predictions for one batch (full model, no sharding needed)."""
    model: ServingModel = context.setups["model"]
    return model.predict(payload)


def _worker_topk(context, payload):
    """Top-K of one item shard ``[lo, hi)`` for a batch of contexts.

    Scores are computed against a column *view* of the full projection, so
    each ``(q, item)`` score sees the identical accumulation the unsharded
    scorer performs; returned item indices are shifted back to global ids.
    """
    lo, hi, contexts, mode, k, exclude_observed = payload
    model: ServingModel = context.setups["model"]
    model._check_mode(mode)
    q_block = model.project(contexts, mode)
    projection, _, margin = model._projection_entry(mode)
    shard = projection[:, lo:hi]
    exclude: Optional[List[Optional[np.ndarray]]] = None
    if exclude_observed:
        block = model._context_block(contexts, mode)
        exclude = []
        for row in block:
            observed = model._observed_items(row, mode)
            local = observed[(observed >= lo) & (observed < hi)] - lo
            exclude.append(local)
    results = topk_scores(q_block, shard, k, exclude, margin=margin)
    return [
        ((r.items + lo).astype(np.int64), np.asarray(r.scores))
        for r in results
    ]


# ----------------------------------------------------------------------

class ServingWorkerEngine:
    """Item-sharded query execution across supervised serving workers.

    ``local_model`` is the in-process model the server loaded anyway; it
    is the graceful-degradation fallback (and the hot-swap mirror, so the
    fallback never serves stale answers).  All supervisor interaction is
    serialized by one lock — the micro-batcher executes handlers on a
    thread pool, and the lock is also what makes an ``apply_update``
    atomic with respect to query waves (the no-blend guarantee).
    """

    def __init__(
        self,
        model_path: str,
        local_model: ServingModel,
        n_workers: int = 2,
        mmap: bool = False,
        store_path: Optional[str] = None,
        counters: Optional[Counters] = None,
        supervisor: Optional[TaskSupervisor] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.model_path = model_path
        self.local_model = local_model
        self.n_workers = int(n_workers)
        self.counters = (
            counters if counters is not None else local_model.counters
        )
        self._lock = threading.Lock()
        self._own_supervisor = supervisor is None
        self.supervisor = (
            supervisor
            if supervisor is not None
            else TaskSupervisor(
                self.n_workers,
                task_deadline=TASK_DEADLINE_S,
                counters=self.counters,
                name="serve",
            )
        )
        self.supervisor.broadcast_setup(
            "model",
            "repro.serve.workers:_setup_model",
            (model_path, bool(mmap), store_path),
        )
        self._update_seq = 0

    # ------------------------------------------------------------------
    # Liveness / readiness
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """Every worker is live and has applied the full setup log."""
        with self._lock:
            return self.supervisor.ready()

    def degraded(self) -> bool:
        """Some worker slot is dead or behind on setups right now."""
        with self._lock:
            self.supervisor.poll()
            return not self.supervisor.pool.all_acked()

    def liveness(self) -> List[Dict[str, Any]]:
        with self._lock:
            return self.supervisor.liveness()

    def poll(self) -> None:
        """Drive respawns/heartbeat checks between requests."""
        with self._lock:
            self.supervisor.poll()

    def wait_ready(self, timeout: float) -> bool:
        with self._lock:
            return self.supervisor.wait_ready(timeout)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict(self, indices) -> np.ndarray:
        """Point predictions on one worker (no item axis to shard)."""
        payload = [tuple(int(v) for v in row) for row in np.asarray(indices)]
        with self._lock:
            try:
                return self.supervisor.run_tasks(
                    [
                        Task(
                            key="predict",
                            fn="repro.serve.workers:_worker_predict",
                            payload=payload,
                        )
                    ]
                )[0]
            except FabricError:
                self.counters.add("serve.fallbacks")
        return self.local_model.predict(indices)

    def topk_batch(
        self,
        contexts: Sequence[Sequence[int]],
        mode: int,
        k: int,
        exclude_observed: bool = False,
    ) -> List[TopKResult]:
        """Item-sharded top-K across the pool, canonical-merged.

        Bitwise identical to ``local_model.topk_batch`` — sharding, the
        worker count, and mid-wave worker deaths are all invisible in the
        answer.
        """
        contexts = [tuple(int(v) for v in c) for c in contexts]
        if not contexts:
            return []
        self.local_model._check_mode(mode)
        items_total = self.local_model.shape[mode]
        edges = np.linspace(
            0, items_total, self.n_workers + 1, dtype=np.int64
        )
        tasks = []
        for shard, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
            if lo == hi:
                continue
            tasks.append(
                Task(
                    key=("topk", shard),
                    fn="repro.serve.workers:_worker_topk",
                    payload=(
                        int(lo), int(hi), contexts, int(mode), int(k),
                        bool(exclude_observed),
                    ),
                )
            )
        if not tasks:
            return self.local_model.topk_batch(
                contexts, mode, k, exclude_observed
            )
        with self._lock:
            try:
                shard_results = self.supervisor.run_tasks(tasks)
            except FabricError:
                self.counters.add("serve.fallbacks")
                return self.local_model.topk_batch(
                    contexts, mode, k, exclude_observed
                )
        return [
            _merge_topk([shard[query] for shard in shard_results], k)
            for query in range(len(contexts))
        ]

    # ------------------------------------------------------------------
    # Hot-swap
    # ------------------------------------------------------------------
    def apply_update(
        self, mode: int, rows: np.ndarray, new_rows: np.ndarray
    ) -> int:
        """Fan a hot-swap out to every worker and the local fallback.

        The broadcast is an ordered, replay-logged setup: live workers
        apply it before any query task sent after it (pipe ordering), a
        respawned worker replays it before taking work, and the engine
        lock keeps it atomic against query waves — no query wave can
        observe half-updated workers.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        new_rows = np.asarray(new_rows, dtype=np.float64)
        with self._lock:
            self._update_seq += 1
            self.supervisor.broadcast_setup(
                f"update:{self._update_seq}",
                "repro.serve.workers:_apply_update",
                (int(mode), rows, new_rows),
            )
            return self.local_model.apply_update(mode, rows, new_rows)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-ready serving-pool stats for ``/stats``."""
        with self._lock:
            self.supervisor.poll()
            return {
                "workers": self.supervisor.pool.liveness(),
                "degraded": not self.supervisor.pool.all_acked(),
                "n_workers": self.n_workers,
            }

    def shutdown(self) -> None:
        with self._lock:
            if self._own_supervisor:
                self.supervisor.shutdown()


def _merge_topk(parts: List[Tuple[np.ndarray, np.ndarray]], k: int) -> TopKResult:
    """Canonical top-K of the union of per-shard top-K lists.

    Every global top-K member ranks in its own shard's top-K (scores are
    shard-invariant), so the union is a superset of the answer; sorting
    it by ``(-score, item)`` and truncating reproduces the canonical rule
    exactly, boundary ties included.
    """
    items = np.concatenate([np.asarray(p[0], dtype=np.int64) for p in parts])
    scores = np.concatenate([np.asarray(p[1], dtype=np.float64) for p in parts])
    order = np.lexsort((items, -scores))[: int(k)]
    return TopKResult(items=items[order], scores=scores[order])
