"""Reading and writing sparse tensors: text, ``.npz`` and shard stores.

The P-Tucker release reads whitespace-separated text files where each line is
``i_1 i_2 ... i_N value`` (1-based indices).  This module reads and writes
that format, auto-detects the tensor shape when one is not given, supports a
simple ``.npz`` binary round-trip for faster test fixtures, and exports /
imports the out-of-core shard-store format of :mod:`repro.shards`
(:func:`save_shards` / :func:`load_shards`).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import DataFormatError
from .coo import SparseTensor

PathLike = Union[str, "os.PathLike[str]"]


def save_text(tensor: SparseTensor, path: PathLike, one_based: bool = True) -> None:
    """Write a sparse tensor as ``i_1 ... i_N value`` lines."""
    offset = 1 if one_based else 0
    with open(path, "w", encoding="ascii") as handle:
        for row, value in zip(tensor.indices, tensor.values):
            cols = " ".join(str(int(i) + offset) for i in row)
            handle.write(f"{cols} {value:.17g}\n")


def load_text(
    path: PathLike,
    shape: Optional[Sequence[int]] = None,
    one_based: bool = True,
) -> SparseTensor:
    """Read a sparse tensor from a ``i_1 ... i_N value`` text file.

    When ``shape`` is omitted it is inferred as the per-mode maximum index
    plus one.  Malformed lines raise :class:`~repro.exceptions.DataFormatError`
    with the offending line number.
    """
    indices = []
    values = []
    order: Optional[int] = None
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) < 2:
                raise DataFormatError(
                    f"{path}:{lineno}: expected at least one index and a value"
                )
            if order is None:
                order = len(parts) - 1
            elif len(parts) - 1 != order:
                raise DataFormatError(
                    f"{path}:{lineno}: expected {order} indices, got {len(parts) - 1}"
                )
            try:
                idx = [int(p) for p in parts[:-1]]
                val = float(parts[-1])
            except ValueError as exc:
                raise DataFormatError(f"{path}:{lineno}: {exc}") from exc
            if one_based:
                idx = [i - 1 for i in idx]
            if any(i < 0 for i in idx):
                raise DataFormatError(
                    f"{path}:{lineno}: negative index after applying base offset"
                )
            indices.append(idx)
            values.append(val)

    if order is None:
        raise DataFormatError(f"{path}: file contains no tensor entries")

    index_array = np.asarray(indices, dtype=np.int64)
    value_array = np.asarray(values, dtype=np.float64)
    if shape is None:
        shape = tuple(int(m) + 1 for m in index_array.max(axis=0))
    return SparseTensor(index_array, value_array, shape)


def save_npz(tensor: SparseTensor, path: PathLike) -> None:
    """Save a sparse tensor to NumPy ``.npz`` (indices, values, shape)."""
    np.savez_compressed(
        path,
        indices=tensor.indices,
        values=tensor.values,
        shape=np.asarray(tensor.shape, dtype=np.int64),
    )


def load_npz(path: PathLike) -> SparseTensor:
    """Load a sparse tensor previously written by :func:`save_npz`."""
    with np.load(path) as data:
        missing = {"indices", "values", "shape"} - set(data.files)
        if missing:
            raise DataFormatError(f"{path}: missing arrays {sorted(missing)}")
        return SparseTensor(data["indices"], data["values"], tuple(data["shape"]))


def save_shards(tensor: SparseTensor, directory: PathLike, shard_nnz: int = 1_000_000):
    """Export ``tensor`` as a mode-sorted shard store at ``directory``.

    Writes the memory-mapped COO shard layout of
    :class:`~repro.shards.store.ShardStore` (per-mode ``.npy`` index/value
    blocks plus a JSON manifest) and returns the built store, ready for
    out-of-core sweeps.
    """
    from ..shards import ShardStore

    return ShardStore.build(tensor, os.fspath(directory), shard_nnz=shard_nnz)


def load_shards(directory: PathLike) -> SparseTensor:
    """Import a shard store back into an in-RAM :class:`SparseTensor`.

    Entries come back in the store's canonical (mode-0 sorted) order; the
    entry set is identical to the exported tensor.  Raises
    :class:`~repro.exceptions.DataFormatError` when ``directory`` holds no
    valid manifest.
    """
    from ..shards import ShardStore

    return ShardStore.open(os.fspath(directory)).to_tensor()


def roundtrip_paths(base: PathLike) -> Tuple[str, str]:
    """Return the (text, npz) file names derived from a base path (test helper)."""
    base = os.fspath(base)
    return base + ".tns", base + ".npz"
