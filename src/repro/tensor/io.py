"""Reading and writing sparse tensors: text, ``.npz`` and shard stores.

The P-Tucker release reads whitespace-separated text files where each line is
``i_1 i_2 ... i_N value`` (1-based indices).  This module reads and writes
that format, auto-detects the tensor shape when one is not given, supports a
simple ``.npz`` binary round-trip for faster test fixtures, and exports /
imports the out-of-core shard-store format of :mod:`repro.shards`
(:func:`save_shards` / :func:`load_shards`).

Every input format is exposed through the chunked *entry reader* protocol:
an object with a ``shape`` attribute (``None`` when not yet known) and an
``iter_entry_chunks(chunk_nnz)`` method yielding ``(indices, values)`` array
pairs of at most ``chunk_nnz`` entries, in file order.  Readers exist for
text files (:class:`TextEntryReader` — vectorized parsing, bounded memory),
``.npz`` archives (:class:`NpzEntryReader`), in-RAM tensors
(:class:`TensorEntryReader`) and shard stores (:class:`ShardEntryReader`).
The streaming shard-store builder
(:meth:`repro.shards.ShardStore.build_streaming`) consumes any of them, so a
raw text file can become an on-disk store — and then a fitted model —
without the tensor ever existing in RAM.

Text parsing is tiered for speed: a fully vectorized parser
(:mod:`repro.tensor.textparse`) handles plain numeric blocks an order of
magnitude faster than per-line Python, ``numpy.loadtxt`` covers blocks with
comments or unusual formatting, and only a block that actually fails is
re-scanned line by line to raise :class:`~repro.exceptions.DataFormatError`
with the exact offending line number.  Files are read as UTF-8 (a leading
BOM is skipped, and non-ASCII bytes in comments are tolerated).
"""

from __future__ import annotations

import codecs
import os
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import DataFormatError, ShapeError
from .coo import SparseTensor
from .textparse import loadtxt_block, parse_numeric_block

PathLike = Union[str, "os.PathLike[str]"]

EntryChunk = Tuple[np.ndarray, np.ndarray]

#: Default entries per chunk yielded by ``iter_entry_chunks``.
DEFAULT_CHUNK_NNZ = 500_000

#: Default bytes per file read in :class:`TextEntryReader`.
DEFAULT_CHUNK_BYTES = 1 << 24

#: Entries per parsed block.  The vectorized parser keeps ~10 state
#: vectors per entry alive at once; above ~128k entries they fall out of
#: cache and the sweep turns memory-bound, so larger consumer chunks are
#: assembled from several parses of this size.
PARSE_BLOCK_NNZ = 131_072


def save_text(tensor: SparseTensor, path: PathLike, one_based: bool = True) -> None:
    """Write a sparse tensor as ``i_1 ... i_N value`` lines."""
    offset = 1 if one_based else 0
    with open(path, "w", encoding="utf-8") as handle:
        for row, value in zip(tensor.indices, tensor.values):
            cols = " ".join(str(int(i) + offset) for i in row)
            handle.write(f"{cols} {value:.17g}\n")


class TextEntryReader:
    """Chunked, vectorized reader of ``i_1 ... i_N value`` text files.

    Reads the file in fixed-size byte chunks (``chunk_bytes``), keeps the
    trailing partial line as carry-over for the next chunk, and parses each
    complete-line block through the tiers of :mod:`repro.tensor.textparse`.
    Peak memory is bounded by the byte chunk plus one parsed block — never
    by the file size.  Malformed input raises
    :class:`~repro.exceptions.DataFormatError` naming ``path:line`` exactly
    as the historical per-line parser did, including for lines that were
    split across byte-chunk boundaries.

    Parameters
    ----------
    path:
        Text file to read.
    shape:
        Optional mode lengths; indices are then bounds-checked per chunk.
        When omitted, ``shape`` stays ``None`` and consumers infer it.
    one_based:
        Subtract one from every index (the paper's file convention).
    chunk_bytes:
        Bytes per file read (floored at 16; the default is 16 MiB).
    """

    def __init__(
        self,
        path: PathLike,
        shape: Optional[Sequence[int]] = None,
        one_based: bool = True,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self.path = os.fspath(path)
        self.shape: Optional[Tuple[int, ...]] = (
            tuple(int(s) for s in shape) if shape is not None else None
        )
        self.one_based = bool(one_based)
        self.chunk_bytes = max(int(chunk_bytes), 16)
        self._order: Optional[int] = (
            len(self.shape) if self.shape is not None else None
        )

    @property
    def order(self) -> Optional[int]:
        """Number of index columns (None until the first entry is seen)."""
        return self._order

    # ------------------------------------------------------------------
    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        yield from _exact_chunks(self._iter_blocks(chunk_nnz), chunk_nnz)

    def _read_size(self, target_nnz: int, bytes_per_entry: float) -> int:
        """Bytes per file read: aims at ``target_nnz`` entries per block.

        Capped by ``chunk_bytes`` and the file size (``read(n)``
        preallocates an ``n``-byte buffer, which would charge every small
        file a full ``chunk_bytes`` of peak memory), so the parser's
        working set tracks the consumer's chunk size rather than the file.
        """
        size = int(min(target_nnz, PARSE_BLOCK_NNZ) * bytes_per_entry * 1.25)
        try:
            size = min(size, os.path.getsize(self.path))
        except OSError:
            pass
        return max(16, min(self.chunk_bytes, size))

    def _iter_blocks(self, target_nnz: int = 2**62) -> Iterator[EntryChunk]:
        """Parse the file one byte chunk at a time (complete lines only)."""
        carry = b""
        lineno = 0
        first = True
        read_size = self._read_size(target_nnz, 16.0)  # ~16 B/entry guess
        with open(self.path, "rb") as handle:
            while True:
                data = handle.read(read_size)
                if not data:
                    break
                if first:
                    data = data.removeprefix(codecs.BOM_UTF8)
                    first = False
                data = carry + data
                cut = data.rfind(b"\n")
                if cut < 0:
                    carry = data
                    continue
                block, carry = data[: cut + 1], data[cut + 1 :]
                parsed = self._parse_block(block, lineno)
                yield parsed
                lineno += block.count(b"\n")
                if parsed[0].shape[0]:
                    read_size = self._read_size(
                        target_nnz, len(block) / parsed[0].shape[0]
                    )
        if carry:
            yield self._parse_block(carry, lineno)

    # ------------------------------------------------------------------
    def _parse_block(self, block: bytes, lineno_base: int) -> EntryChunk:
        """One complete-line block as validated ``(indices, values)`` arrays."""
        if self._order is None:
            self._order = _detect_order(block)
            if self._order is None:  # no data lines in this block
                return _empty_chunk(0)
        ncols = self._order + 1
        got = parse_numeric_block(block, ncols) if ncols >= 2 else None
        if got is not None:
            indices, values = got
        else:
            table = loadtxt_block(block)
            if table is None:
                return self._rescan(block, lineno_base)
            if table.shape[0] == 0:
                return _empty_chunk(self._order)
            if table.shape[1] != ncols:
                return self._rescan(block, lineno_base)
            raw = table[:, :-1]
            with np.errstate(invalid="ignore"):  # out-of-int64 floats
                indices = raw.astype(np.int64)
            if not np.array_equal(indices, raw):
                return self._rescan(block, lineno_base)
            values = np.ascontiguousarray(table[:, -1])
        return self._finalize(indices, values, block, lineno_base)

    def _finalize(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        block: bytes,
        lineno_base: int,
    ) -> EntryChunk:
        """Apply the index base and bounds checks (re-scan on violation)."""
        if self.one_based:
            indices -= 1  # the parse tiers hand over a fresh array
        if indices.size and int(indices.min()) < 0:
            return self._rescan(block, lineno_base)
        if self.shape is not None and indices.size:
            bound = np.asarray(self.shape, dtype=np.int64)
            if (indices >= bound[None, :]).any():
                return self._rescan(block, lineno_base)
        return indices, values

    def _rescan(self, block: bytes, lineno_base: int) -> EntryChunk:
        """Reference per-line parse of a failing block, for exact diagnostics.

        Raises :class:`~repro.exceptions.DataFormatError` naming the first
        offending line; if everything parses after all (e.g. the fast tiers
        only stumbled over encoding), its result is used as-is.
        """
        text = block.decode("utf-8", errors="replace")
        rows: List[List[int]] = []
        values: List[float] = []
        for offset, raw in enumerate(text.split("\n")):
            lineno = lineno_base + offset + 1
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DataFormatError(
                    f"{self.path}:{lineno}: expected at least one index and "
                    "a value"
                )
            if self._order is None:
                self._order = len(parts) - 1
            elif len(parts) - 1 != self._order:
                raise DataFormatError(
                    f"{self.path}:{lineno}: expected {self._order} indices, "
                    f"got {len(parts) - 1}"
                )
            try:
                idx = [_parse_index_token(p) for p in parts[:-1]]
                val = float(parts[-1])
            except ValueError as exc:
                raise DataFormatError(f"{self.path}:{lineno}: {exc}") from exc
            if self.one_based:
                idx = [i - 1 for i in idx]
            if any(i < 0 for i in idx):
                raise DataFormatError(
                    f"{self.path}:{lineno}: negative index after applying "
                    "base offset"
                )
            if self.shape is not None and any(
                i >= s for i, s in zip(idx, self.shape)
            ):
                raise DataFormatError(
                    f"{self.path}:{lineno}: index exceeds shape {self.shape}"
                )
            rows.append(idx)
            values.append(val)
        if not rows:
            return _empty_chunk(self._order or 0)
        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )


def _parse_index_token(token: str) -> int:
    """An index field as int64; integral floats ('3', '3.0', '3e2') accepted.

    Raises ``ValueError`` (which callers wrap into a ``path:line``
    :class:`~repro.exceptions.DataFormatError`) for non-integral and
    out-of-int64-range tokens alike — a bare Python int would otherwise
    surface later as an uninformative ``OverflowError`` from NumPy.
    """
    try:
        result = int(token)
    except ValueError:
        value = float(token)  # ValueError propagates to the caller's wrapper
        result = int(value)
        if result != value:
            raise ValueError(f"index {token!r} is not an integer") from None
    if not -(2 ** 63) <= result < 2 ** 63:
        raise ValueError(f"index {token!r} overflows 64-bit integers")
    return result


def _detect_order(block: bytes) -> Optional[int]:
    """Index-column count of the first data line in ``block`` (None if none)."""
    position = 0
    while position < len(block):
        newline = block.find(b"\n", position)
        if newline < 0:
            newline = len(block)
        line = block[position:newline].split(b"#", 1)[0].strip()
        if line:
            return max(len(line.split()) - 1, 1)
        position = newline + 1
    return None


def _empty_chunk(order: int) -> EntryChunk:
    return (
        np.empty((0, order), dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )


def _exact_chunks(
    blocks: Iterator[EntryChunk], chunk_nnz: int
) -> Iterator[EntryChunk]:
    """Regroup variable-size parsed blocks into exact ``chunk_nnz`` chunks.

    The final chunk carries the remainder; empty blocks are dropped.  The
    regrouping is deterministic, so a fixed ``chunk_nnz`` always produces
    the same chunk boundaries for the same input.
    """
    pending: List[EntryChunk] = []
    count = 0
    for indices, values in blocks:
        if indices.shape[0] == 0:
            continue
        pending.append((indices, values))
        count += indices.shape[0]
        if count < chunk_nnz:
            continue
        whole_idx = (
            np.concatenate([i for i, _ in pending])
            if len(pending) > 1
            else pending[0][0]
        )
        whole_val = (
            np.concatenate([v for _, v in pending])
            if len(pending) > 1
            else pending[0][1]
        )
        full = (count // chunk_nnz) * chunk_nnz
        for start in range(0, full, chunk_nnz):
            yield (
                whole_idx[start : start + chunk_nnz],
                whole_val[start : start + chunk_nnz],
            )
        pending = []
        count -= full
        if count:
            pending = [(whole_idx[full:], whole_val[full:])]
    if count:
        yield (
            np.concatenate([i for i, _ in pending])
            if len(pending) > 1
            else pending[0][0],
            np.concatenate([v for _, v in pending])
            if len(pending) > 1
            else pending[0][1],
        )


class NpzEntryReader:
    """Chunked reader over a ``.npz`` archive written by :func:`save_npz`.

    The archive's arrays are decompressed whole (that is how ``.npz``
    works), so this reader bounds the *downstream* working set — the
    chunks handed to a streaming consumer — rather than the decompression
    buffer itself.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        with np.load(self.path) as data:
            missing = {"indices", "values", "shape"} - set(data.files)
            if missing:
                raise DataFormatError(
                    f"{self.path}: missing arrays {sorted(missing)}"
                )
            self.shape: Tuple[int, ...] = tuple(
                int(s) for s in data["shape"]
            )

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return len(self.shape)

    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        with np.load(self.path) as data:
            indices = np.asarray(data["indices"], dtype=np.int64)
            values = np.asarray(data["values"], dtype=np.float64)
            if indices.ndim != 2 or values.shape != (indices.shape[0],):
                raise DataFormatError(
                    f"{self.path}: indices/values arrays are inconsistent"
                )
            for start in range(0, indices.shape[0], chunk_nnz):
                stop = start + chunk_nnz
                yield indices[start:stop], values[start:stop]


class TensorEntryReader:
    """Chunked reader over an in-RAM :class:`SparseTensor` (entry order)."""

    def __init__(self, tensor: SparseTensor) -> None:
        self.tensor = tensor
        self.shape: Tuple[int, ...] = tensor.shape

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return self.tensor.order

    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        tensor = self.tensor
        for start in range(0, tensor.nnz, chunk_nnz):
            stop = start + chunk_nnz
            yield (
                np.ascontiguousarray(tensor.indices[start:stop], dtype=np.int64),
                np.ascontiguousarray(tensor.values[start:stop], dtype=np.float64),
            )


class ShardEntryReader:
    """Chunked reader over an existing shard store (canonical entry order).

    Streams the store's mode-0 sorted sequence through the entry-chunk
    protocol, so a store can be re-sharded (different ``shard_nnz``) or
    re-exported without materialising the tensor.
    """

    def __init__(self, directory: PathLike) -> None:
        from ..shards import ShardStore

        self._store = ShardStore.open(os.fspath(directory))
        self.shape: Tuple[int, ...] = self._store.shape

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return len(self.shape)

    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        for start in range(0, self._store.nnz, chunk_nnz):
            stop = min(start + chunk_nnz, self._store.nnz)
            yield self._store.read_mode_block(0, start, stop)


def open_entry_reader(
    path: PathLike,
    shape: Optional[Sequence[int]] = None,
    one_based: bool = True,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Union[TextEntryReader, NpzEntryReader, ShardEntryReader]:
    """Open ``path`` with the matching chunked reader.

    A directory is opened as a shard store, a ``.npz`` file as an archive,
    anything else as text.  ``shape``/``one_based``/``chunk_bytes`` apply
    to the text reader only (the binary formats carry their own shape and
    base).
    """
    fs_path = os.fspath(path)
    if os.path.isdir(fs_path):
        return ShardEntryReader(fs_path)
    if fs_path.endswith(".npz"):
        return NpzEntryReader(fs_path)
    return TextEntryReader(
        fs_path, shape=shape, one_based=one_based, chunk_bytes=chunk_bytes
    )


def load_text(
    path: PathLike,
    shape: Optional[Sequence[int]] = None,
    one_based: bool = True,
) -> SparseTensor:
    """Read a sparse tensor from a ``i_1 ... i_N value`` text file.

    When ``shape`` is omitted it is inferred as the per-mode maximum index
    plus one.  Malformed lines raise :class:`~repro.exceptions.DataFormatError`
    with the offending line number.  Parsing is vectorized (see
    :class:`TextEntryReader`); the loaded entries are identical to the
    historical per-line parser's, bit for bit.
    """
    reader = TextEntryReader(path, shape=shape, one_based=one_based)
    chunks = list(reader.iter_entry_chunks(DEFAULT_CHUNK_NNZ))
    if not chunks:
        raise DataFormatError(f"{path}: file contains no tensor entries")
    indices = (
        np.concatenate([i for i, _ in chunks]) if len(chunks) > 1 else chunks[0][0]
    )
    values = (
        np.concatenate([v for _, v in chunks]) if len(chunks) > 1 else chunks[0][1]
    )
    if shape is None:
        # Per-column maxes beat one axis-0 reduction by ~7x on (nnz, N).
        shape = tuple(
            int(indices[:, mode].max()) + 1 for mode in range(indices.shape[1])
        )
    return SparseTensor(indices, values, shape)


def save_npz(tensor: SparseTensor, path: PathLike) -> None:
    """Save a sparse tensor to NumPy ``.npz`` (indices, values, shape)."""
    np.savez_compressed(
        path,
        indices=tensor.indices,
        values=tensor.values,
        shape=np.asarray(tensor.shape, dtype=np.int64),
    )


def load_npz(path: PathLike) -> SparseTensor:
    """Load a sparse tensor previously written by :func:`save_npz`."""
    with np.load(path) as data:
        missing = {"indices", "values", "shape"} - set(data.files)
        if missing:
            raise DataFormatError(f"{path}: missing arrays {sorted(missing)}")
        return SparseTensor(data["indices"], data["values"], tuple(data["shape"]))


def save_shards(
    tensor: Optional[SparseTensor],
    directory: PathLike,
    shard_nnz: int = 1_000_000,
    *,
    source=None,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
):
    """Export a tensor (or a streamed entry source) as a shard store.

    Writes the memory-mapped COO shard layout of
    :class:`~repro.shards.store.ShardStore` (per-mode ``.npy`` index/value
    blocks plus a JSON manifest) at ``directory`` and returns the built
    store, ready for out-of-core sweeps.  Exactly one input must be given:
    ``tensor`` (in-RAM build) or ``source`` (a chunked entry reader — the
    store is then built with the external-memory merge of
    :mod:`repro.shards.merge`, reading at most ``chunk_nnz`` entries at a
    time, and is bitwise-identical to the in-RAM build of the same
    entries).
    """
    from ..shards import ShardStore

    if (tensor is None) == (source is None):
        raise ShapeError("pass exactly one of tensor or source to save_shards")
    if source is not None:
        return ShardStore.build_streaming(
            source, os.fspath(directory), shard_nnz=shard_nnz, chunk_nnz=chunk_nnz
        )
    return ShardStore.build(tensor, os.fspath(directory), shard_nnz=shard_nnz)


def load_shards(directory: PathLike) -> SparseTensor:
    """Import a shard store back into an in-RAM :class:`SparseTensor`.

    Entries come back in the store's canonical (mode-0 sorted) order; the
    entry set is identical to the exported tensor.  Raises
    :class:`~repro.exceptions.DataFormatError` when ``directory`` holds no
    valid manifest.
    """
    from ..shards import ShardStore

    return ShardStore.open(os.fspath(directory)).to_tensor()


def roundtrip_paths(base: PathLike) -> Tuple[str, str]:
    """Return the (text, npz) file names derived from a base path (test helper)."""
    base = os.fspath(base)
    return base + ".tns", base + ".npz"
