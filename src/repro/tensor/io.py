"""Reading and writing sparse tensors: text, ``.npz``, ``.rcoo`` and shards.

The P-Tucker release reads whitespace-separated text files where each line is
``i_1 i_2 ... i_N value`` (1-based indices).  This module reads and writes
that format, auto-detects the tensor shape when one is not given, supports a
simple ``.npz`` binary round-trip for faster test fixtures, implements the
chunked binary **rcoo** COO container (:func:`save_rcoo` /
:func:`write_rcoo` / :class:`RcooEntryReader` — magic + fixed header +
fixed-size blocks with narrow per-column index dtypes, so huge files stream
in bounded memory instead of decompressing whole ``.npz`` arrays), and
exports / imports the out-of-core shard-store format of :mod:`repro.shards`
(:func:`save_shards` / :func:`load_shards`).

Every input format is exposed through the chunked *entry reader* protocol:
an object with a ``shape`` attribute (``None`` when not yet known) and an
``iter_entry_chunks(chunk_nnz)`` method yielding ``(indices, values)`` array
pairs of at most ``chunk_nnz`` entries, in file order.  Readers exist for
text files (:class:`TextEntryReader` — vectorized parsing, bounded memory),
``.npz`` archives (:class:`NpzEntryReader`), rcoo containers
(:class:`RcooEntryReader`), in-RAM tensors (:class:`TensorEntryReader`) and
shard stores (:class:`ShardEntryReader`).  The streaming shard-store
builder (:meth:`repro.shards.ShardStore.build_streaming`) consumes any of
them, so a raw text file can become an on-disk store — and then a fitted
model — without the tensor ever existing in RAM.

Text parsing is tiered for speed: a fully vectorized parser
(:mod:`repro.tensor.textparse`) handles plain numeric blocks an order of
magnitude faster than per-line Python, ``numpy.loadtxt`` covers blocks with
comments or unusual formatting, and only a block that actually fails is
re-scanned line by line to raise :class:`~repro.exceptions.DataFormatError`
with the exact offending line number.  Files are read as UTF-8 (a leading
BOM is skipped, and non-ASCII bytes in comments are tolerated).
"""

from __future__ import annotations

import codecs
import os
import struct
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..columns import check_index_dtype_policy, index_dtypes_for_shape
from ..exceptions import DataFormatError, ShapeError
from ..resilience.atomic import atomic_open
from .coo import SparseTensor
from .textparse import loadtxt_block, parse_numeric_block

PathLike = Union[str, "os.PathLike[str]"]

EntryChunk = Tuple[np.ndarray, np.ndarray]

#: Default entries per chunk yielded by ``iter_entry_chunks``.
DEFAULT_CHUNK_NNZ = 500_000

#: Default bytes per file read in :class:`TextEntryReader`.
DEFAULT_CHUNK_BYTES = 1 << 24

#: Entries per parsed block.  The vectorized parser keeps ~10 state
#: vectors per entry alive at once; above ~128k entries they fall out of
#: cache and the sweep turns memory-bound, so larger consumer chunks are
#: assembled from several parses of this size.
PARSE_BLOCK_NNZ = 131_072


def save_text(tensor: SparseTensor, path: PathLike, one_based: bool = True) -> None:
    """Write a sparse tensor as ``i_1 ... i_N value`` lines."""
    offset = 1 if one_based else 0
    with open(path, "w", encoding="utf-8") as handle:
        for row, value in zip(tensor.indices, tensor.values):
            cols = " ".join(str(int(i) + offset) for i in row)
            handle.write(f"{cols} {value:.17g}\n")


class TextEntryReader:
    """Chunked, vectorized reader of ``i_1 ... i_N value`` text files.

    Reads the file in fixed-size byte chunks (``chunk_bytes``), keeps the
    trailing partial line as carry-over for the next chunk, and parses each
    complete-line block through the tiers of :mod:`repro.tensor.textparse`.
    Peak memory is bounded by the byte chunk plus one parsed block — never
    by the file size.  Malformed input raises
    :class:`~repro.exceptions.DataFormatError` naming ``path:line`` exactly
    as the historical per-line parser did, including for lines that were
    split across byte-chunk boundaries.

    Parameters
    ----------
    path:
        Text file to read.
    shape:
        Optional mode lengths; indices are then bounds-checked per chunk.
        When omitted, ``shape`` stays ``None`` and consumers infer it.
    one_based:
        Subtract one from every index (the paper's file convention).
    chunk_bytes:
        Bytes per file read (floored at 16; the default is 16 MiB).
    """

    def __init__(
        self,
        path: PathLike,
        shape: Optional[Sequence[int]] = None,
        one_based: bool = True,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self.path = os.fspath(path)
        self.shape: Optional[Tuple[int, ...]] = (
            tuple(int(s) for s in shape) if shape is not None else None
        )
        self.one_based = bool(one_based)
        self.chunk_bytes = max(int(chunk_bytes), 16)
        self._order: Optional[int] = (
            len(self.shape) if self.shape is not None else None
        )

    @property
    def order(self) -> Optional[int]:
        """Number of index columns (None until the first entry is seen)."""
        return self._order

    # ------------------------------------------------------------------
    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        yield from _exact_chunks(self._iter_blocks(chunk_nnz), chunk_nnz)

    def _read_size(self, target_nnz: int, bytes_per_entry: float) -> int:
        """Bytes per file read: aims at ``target_nnz`` entries per block.

        Capped by ``chunk_bytes`` and the file size (``read(n)``
        preallocates an ``n``-byte buffer, which would charge every small
        file a full ``chunk_bytes`` of peak memory), so the parser's
        working set tracks the consumer's chunk size rather than the file.
        """
        size = int(min(target_nnz, PARSE_BLOCK_NNZ) * bytes_per_entry * 1.25)
        try:
            size = min(size, os.path.getsize(self.path))
        except OSError:
            pass
        return max(16, min(self.chunk_bytes, size))

    def _iter_blocks(self, target_nnz: int = 2**62) -> Iterator[EntryChunk]:
        """Parse the file one byte chunk at a time (complete lines only)."""
        carry = b""
        lineno = 0
        first = True
        read_size = self._read_size(target_nnz, 16.0)  # ~16 B/entry guess
        with open(self.path, "rb") as handle:
            while True:
                data = handle.read(read_size)
                if not data:
                    break
                if first:
                    data = data.removeprefix(codecs.BOM_UTF8)
                    first = False
                data = carry + data
                cut = data.rfind(b"\n")
                if cut < 0:
                    carry = data
                    continue
                block, carry = data[: cut + 1], data[cut + 1 :]
                parsed = self._parse_block(block, lineno)
                yield parsed
                lineno += block.count(b"\n")
                if parsed[0].shape[0]:
                    read_size = self._read_size(
                        target_nnz, len(block) / parsed[0].shape[0]
                    )
        if carry:
            yield self._parse_block(carry, lineno)

    # ------------------------------------------------------------------
    def _parse_block(self, block: bytes, lineno_base: int) -> EntryChunk:
        """One complete-line block as validated ``(indices, values)`` arrays."""
        if self._order is None:
            self._order = _detect_order(block)
            if self._order is None:  # no data lines in this block
                return _empty_chunk(0)
        ncols = self._order + 1
        got = parse_numeric_block(block, ncols) if ncols >= 2 else None
        if got is not None:
            indices, values = got
        else:
            table = loadtxt_block(block)
            if table is None:
                return self._rescan(block, lineno_base)
            if table.shape[0] == 0:
                return _empty_chunk(self._order)
            if table.shape[1] != ncols:
                return self._rescan(block, lineno_base)
            raw = table[:, :-1]
            with np.errstate(invalid="ignore"):  # out-of-int64 floats
                indices = raw.astype(np.int64)
            if not np.array_equal(indices, raw):
                return self._rescan(block, lineno_base)
            values = np.ascontiguousarray(table[:, -1])
        return self._finalize(indices, values, block, lineno_base)

    def _finalize(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        block: bytes,
        lineno_base: int,
    ) -> EntryChunk:
        """Apply the index base and bounds checks (re-scan on violation)."""
        if self.one_based:
            indices -= 1  # the parse tiers hand over a fresh array
        if indices.size and int(indices.min()) < 0:
            return self._rescan(block, lineno_base)
        if self.shape is not None and indices.size:
            bound = np.asarray(self.shape, dtype=np.int64)
            if (indices >= bound[None, :]).any():
                return self._rescan(block, lineno_base)
        return indices, values

    def _rescan(self, block: bytes, lineno_base: int) -> EntryChunk:
        """Reference per-line parse of a failing block, for exact diagnostics.

        Raises :class:`~repro.exceptions.DataFormatError` naming the first
        offending line; if everything parses after all (e.g. the fast tiers
        only stumbled over encoding), its result is used as-is.
        """
        text = block.decode("utf-8", errors="replace")
        rows: List[List[int]] = []
        values: List[float] = []
        for offset, raw in enumerate(text.split("\n")):
            lineno = lineno_base + offset + 1
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DataFormatError(
                    f"{self.path}:{lineno}: expected at least one index and "
                    "a value"
                )
            if self._order is None:
                self._order = len(parts) - 1
            elif len(parts) - 1 != self._order:
                raise DataFormatError(
                    f"{self.path}:{lineno}: expected {self._order} indices, "
                    f"got {len(parts) - 1}"
                )
            try:
                idx = [_parse_index_token(p) for p in parts[:-1]]
                val = float(parts[-1])
            except ValueError as exc:
                raise DataFormatError(f"{self.path}:{lineno}: {exc}") from exc
            if self.one_based:
                idx = [i - 1 for i in idx]
            if any(i < 0 for i in idx):
                raise DataFormatError(
                    f"{self.path}:{lineno}: negative index after applying "
                    "base offset"
                )
            if self.shape is not None and any(
                i >= s for i, s in zip(idx, self.shape)
            ):
                raise DataFormatError(
                    f"{self.path}:{lineno}: index exceeds shape {self.shape}"
                )
            rows.append(idx)
            values.append(val)
        if not rows:
            return _empty_chunk(self._order or 0)
        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )


def _parse_index_token(token: str) -> int:
    """An index field as int64; integral floats ('3', '3.0', '3e2') accepted.

    Raises ``ValueError`` (which callers wrap into a ``path:line``
    :class:`~repro.exceptions.DataFormatError`) for non-integral and
    out-of-int64-range tokens alike — a bare Python int would otherwise
    surface later as an uninformative ``OverflowError`` from NumPy.
    """
    try:
        result = int(token)
    except ValueError:
        value = float(token)  # ValueError propagates to the caller's wrapper
        result = int(value)
        if result != value:
            raise ValueError(f"index {token!r} is not an integer") from None
    if not -(2 ** 63) <= result < 2 ** 63:
        raise ValueError(f"index {token!r} overflows 64-bit integers")
    return result


def _detect_order(block: bytes) -> Optional[int]:
    """Index-column count of the first data line in ``block`` (None if none)."""
    position = 0
    while position < len(block):
        newline = block.find(b"\n", position)
        if newline < 0:
            newline = len(block)
        line = block[position:newline].split(b"#", 1)[0].strip()
        if line:
            return max(len(line.split()) - 1, 1)
        position = newline + 1
    return None


def _empty_chunk(order: int) -> EntryChunk:
    return (
        np.empty((0, order), dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )


def _exact_chunks(
    blocks: Iterator[EntryChunk], chunk_nnz: int
) -> Iterator[EntryChunk]:
    """Regroup variable-size parsed blocks into exact ``chunk_nnz`` chunks.

    The final chunk carries the remainder; empty blocks are dropped.  The
    regrouping is deterministic, so a fixed ``chunk_nnz`` always produces
    the same chunk boundaries for the same input.
    """
    pending: List[EntryChunk] = []
    count = 0
    for indices, values in blocks:
        if indices.shape[0] == 0:
            continue
        pending.append((indices, values))
        count += indices.shape[0]
        if count < chunk_nnz:
            continue
        whole_idx = (
            np.concatenate([i for i, _ in pending])
            if len(pending) > 1
            else pending[0][0]
        )
        whole_val = (
            np.concatenate([v for _, v in pending])
            if len(pending) > 1
            else pending[0][1]
        )
        full = (count // chunk_nnz) * chunk_nnz
        for start in range(0, full, chunk_nnz):
            yield (
                whole_idx[start : start + chunk_nnz],
                whole_val[start : start + chunk_nnz],
            )
        pending = []
        count -= full
        if count:
            pending = [(whole_idx[full:], whole_val[full:])]
    if count:
        yield (
            np.concatenate([i for i, _ in pending])
            if len(pending) > 1
            else pending[0][0],
            np.concatenate([v for _, v in pending])
            if len(pending) > 1
            else pending[0][1],
        )


class NpzEntryReader:
    """Chunked reader over a ``.npz`` archive written by :func:`save_npz`.

    The archive's arrays are decompressed whole (that is how ``.npz``
    works), so this reader bounds the *downstream* working set — the
    chunks handed to a streaming consumer — rather than the decompression
    buffer itself.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        with np.load(self.path) as data:
            missing = {"indices", "values", "shape"} - set(data.files)
            if missing:
                raise DataFormatError(
                    f"{self.path}: missing arrays {sorted(missing)}"
                )
            self.shape: Tuple[int, ...] = tuple(
                int(s) for s in data["shape"]
            )

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return len(self.shape)

    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        with np.load(self.path) as data:
            indices = np.asarray(data["indices"], dtype=np.int64)
            values = np.asarray(data["values"], dtype=np.float64)
            if indices.ndim != 2 or values.shape != (indices.shape[0],):
                raise DataFormatError(
                    f"{self.path}: indices/values arrays are inconsistent"
                )
            for start in range(0, indices.shape[0], chunk_nnz):
                stop = start + chunk_nnz
                yield indices[start:stop], values[start:stop]


# ----------------------------------------------------------------------
# The rcoo chunked binary COO container
# ----------------------------------------------------------------------

#: First bytes of every rcoo container.
RCOO_MAGIC = b"RCOO"

#: Current container version.
RCOO_VERSION = 1

#: Default entries per rcoo block (~1-3 MB per block at typical orders).
DEFAULT_RCOO_BLOCK_NNZ = 262_144

#: On-disk dtype codes (1 byte per column in the header).
_RCOO_DTYPE_CODES = {
    np.dtype(np.uint8): 1,
    np.dtype(np.uint16): 2,
    np.dtype(np.uint32): 3,
    np.dtype(np.int64): 4,
    np.dtype(np.float64): 5,
}
_RCOO_CODE_DTYPES = {code: dtype for dtype, code in _RCOO_DTYPE_CODES.items()}

#: Fixed-size header prefix: magic, version (u1), order (u1), reserved
#: (u2), block_nnz (u4), nnz (u8) — all little-endian.  ``order`` u8
#: shape dims and ``order + 1`` dtype-code bytes follow.
_RCOO_PREFIX = struct.Struct("<4sBBHIQ")

#: Byte offset of the nnz field (patched after a streamed write).
_RCOO_NNZ_OFFSET = 12


def _rcoo_header_bytes(
    shape: Sequence[int],
    nnz: int,
    block_nnz: int,
    index_dtypes: Sequence[np.dtype],
) -> bytes:
    order = len(shape)
    if not 1 <= order <= 255:
        raise ShapeError("rcoo supports orders 1..255")
    prefix = _RCOO_PREFIX.pack(
        RCOO_MAGIC, RCOO_VERSION, order, 0, int(block_nnz), int(nnz)
    )
    dims = struct.pack(f"<{order}Q", *(int(s) for s in shape))
    codes = bytes(
        [_RCOO_DTYPE_CODES[np.dtype(d)] for d in index_dtypes]
        + [_RCOO_DTYPE_CODES[np.dtype(np.float64)]]
    )
    return prefix + dims + codes


def _write_rcoo_block(
    handle, indices: np.ndarray, values: np.ndarray, index_dtypes
) -> None:
    """One block: each index column in its narrow dtype, then the values."""
    for k, dtype in enumerate(index_dtypes):
        handle.write(
            np.ascontiguousarray(indices[:, k], dtype=dtype).tobytes()
        )
    handle.write(np.ascontiguousarray(values, dtype=np.float64).tobytes())


def save_rcoo(
    tensor: SparseTensor,
    path: PathLike,
    block_nnz: int = DEFAULT_RCOO_BLOCK_NNZ,
    index_dtype: str = "auto",
) -> None:
    """Write a sparse tensor as a chunked binary rcoo container.

    Layout: the :data:`RCOO_MAGIC` magic, a fixed header (version, order,
    block size, nnz, shape, per-column dtype codes), then
    ``ceil(nnz / block_nnz)`` fixed-size blocks, each holding the block's
    index columns — every column in the narrowest dtype its mode dimension
    admits (``index_dtype="wide"`` keeps int64) — followed by its float64
    values.  Unlike ``.npz``, the format has no compression layer to
    inflate whole arrays through: :class:`RcooEntryReader` streams it back
    one block at a time in bounded memory.
    """
    if block_nnz < 1:
        raise ShapeError("block_nnz must be positive")
    dtypes = index_dtypes_for_shape(tensor.shape, index_dtype)
    # Atomic write: the container appears at ``path`` only once complete,
    # so a crash mid-save never leaves a truncated rcoo behind.
    with atomic_open(path) as handle:
        handle.write(
            _rcoo_header_bytes(tensor.shape, tensor.nnz, block_nnz, dtypes)
        )
        for start in range(0, tensor.nnz, block_nnz):
            stop = min(start + block_nnz, tensor.nnz)
            _write_rcoo_block(
                handle,
                tensor.indices[start:stop],
                tensor.values[start:stop],
                dtypes,
            )


def write_rcoo(
    source,
    path: PathLike,
    block_nnz: int = DEFAULT_RCOO_BLOCK_NNZ,
    index_dtype: str = "auto",
    shape: Optional[Sequence[int]] = None,
) -> Tuple[int, ...]:
    """Stream any chunked entry source into an rcoo container; return its shape.

    The shape comes from ``shape``, the source's own ``shape`` attribute,
    or — when neither exists (a shapeless text reader) — one extra
    bounded-memory pass over the source that records per-mode maxima.
    That inference pass re-reads the input, roughly doubling ingest wall
    time on big text files; it is unavoidable here because the block
    *encoding* (the narrow per-column dtypes) is fixed by the shape
    before the first block is written, so the shape cannot simply be
    back-patched later the way nnz is.  Sources that know their shape
    (``.npz``, shard stores, rcoo, text with an explicit ``shape=``)
    stream in a single pass.  The entry count is never needed up front:
    blocks are written as chunks arrive and the header's nnz field is
    patched afterwards (the :data:`_RCOO_NNZ_OFFSET` field exists for
    exactly this).  Peak memory is one ``block_nnz`` chunk either way.
    """
    if block_nnz < 1:
        raise ShapeError("block_nnz must be positive")
    check_index_dtype_policy(index_dtype)
    if shape is None:
        shape = getattr(source, "shape", None)
    if shape is None:
        order = None
        maxima = None
        for indices, _ in source.iter_entry_chunks(block_nnz):
            indices = np.asarray(indices)
            if indices.shape[0] == 0:
                continue
            if maxima is None:
                order = indices.shape[1]
                maxima = np.zeros(order, dtype=np.int64)
            np.maximum(maxima, indices.max(axis=0), out=maxima)
        if maxima is None:
            raise DataFormatError(
                "entry source produced no entries and no shape; an empty "
                "rcoo container needs an explicit shape"
            )
        shape = tuple(int(m) + 1 for m in maxima)
    shape = tuple(int(s) for s in shape)
    dtypes = index_dtypes_for_shape(shape, index_dtype)
    bound = np.asarray(shape, dtype=np.int64)
    nnz = 0
    # Atomic write; the nnz back-patch below happens on the temporary
    # before the rename, so readers only ever see a complete container.
    with atomic_open(path) as handle:
        handle.write(_rcoo_header_bytes(shape, 0, block_nnz, dtypes))
        for indices, values in _exact_chunks(
            source.iter_entry_chunks(block_nnz), block_nnz
        ):
            indices = np.ascontiguousarray(indices, dtype=np.int64)
            values = np.ascontiguousarray(values, dtype=np.float64)
            if indices.ndim != 2 or indices.shape[1] != len(shape):
                raise DataFormatError(
                    f"entry source yielded order-{indices.shape[-1]} chunks "
                    f"for an order-{len(shape)} shape"
                )
            if indices.shape[0] and (
                int(indices.min()) < 0 or (indices >= bound[None, :]).any()
            ):
                raise ShapeError("an index exceeds the tensor shape")
            if not np.isfinite(values).all():
                raise ShapeError("tensor values must be finite")
            _write_rcoo_block(handle, indices, values, dtypes)
            nnz += indices.shape[0]
        handle.seek(_RCOO_NNZ_OFFSET)
        handle.write(struct.pack("<Q", nnz))
    return shape


class RcooEntryReader:
    """Chunked reader over an rcoo container written by :func:`save_rcoo`.

    Parses the fixed header eagerly (raising
    :class:`~repro.exceptions.DataFormatError` on a bad magic, an unknown
    version/dtype code, or a truncated header) and streams the fixed-size
    blocks on demand: one block of narrow index columns plus values is
    resident at a time, re-grouped to the consumer's ``chunk_nnz`` — this
    is the bounded-RAM binary ingest path that ``.npz`` (whole-archive
    decompression) cannot provide.  A file that ends mid-block raises a
    :class:`~repro.exceptions.DataFormatError` naming the missing bytes.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as handle:
            prefix = handle.read(_RCOO_PREFIX.size)
            if len(prefix) < 4 or prefix[:4] != RCOO_MAGIC:
                raise DataFormatError(
                    f"{self.path}: not an rcoo container (bad magic "
                    f"{prefix[:4]!r}, expected {RCOO_MAGIC!r})"
                )
            if len(prefix) < _RCOO_PREFIX.size:
                raise DataFormatError(
                    f"{self.path}: truncated rcoo header "
                    f"({len(prefix)} of {_RCOO_PREFIX.size} prefix bytes)"
                )
            _, version, order, _, block_nnz, nnz = _RCOO_PREFIX.unpack(prefix)
            if version != RCOO_VERSION:
                raise DataFormatError(
                    f"{self.path}: unsupported rcoo version {version} "
                    f"(this build reads version {RCOO_VERSION})"
                )
            if order < 1 or block_nnz < 1:
                raise DataFormatError(
                    f"{self.path}: malformed rcoo header "
                    f"(order={order}, block_nnz={block_nnz})"
                )
            rest = handle.read(8 * order + order + 1)
            if len(rest) < 8 * order + order + 1:
                raise DataFormatError(
                    f"{self.path}: truncated rcoo header (missing shape or "
                    f"dtype table)"
                )
            self.shape: Tuple[int, ...] = tuple(
                struct.unpack(f"<{order}Q", rest[: 8 * order])
            )
            codes = rest[8 * order :]
            try:
                dtypes = tuple(_RCOO_CODE_DTYPES[c] for c in codes)
            except KeyError as exc:
                raise DataFormatError(
                    f"{self.path}: unknown rcoo dtype code {exc}"
                ) from exc
            if dtypes[-1] != np.dtype(np.float64):
                raise DataFormatError(
                    f"{self.path}: rcoo value column must be float64, "
                    f"header says {dtypes[-1]}"
                )
            self.index_dtypes: Tuple[np.dtype, ...] = dtypes[:-1]
            self.nnz = int(nnz)
            self.block_nnz = int(block_nnz)
            self._data_offset = _RCOO_PREFIX.size + len(rest)

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return len(self.shape)

    def _iter_blocks(self) -> Iterator[EntryChunk]:
        order = self.order
        with open(self.path, "rb") as handle:
            handle.seek(self._data_offset)
            for block, start in enumerate(range(0, self.nnz, self.block_nnz)):
                count = min(self.block_nnz, self.nnz - start)
                indices = np.empty((count, order), dtype=np.int64)
                for k, dtype in enumerate(self.index_dtypes):
                    expected = count * dtype.itemsize
                    raw = handle.read(expected)
                    if len(raw) < expected:
                        raise DataFormatError(
                            f"{self.path}: truncated rcoo container (block "
                            f"{block}, column {k}: expected {expected} "
                            f"bytes, got {len(raw)})"
                        )
                    indices[:, k] = np.frombuffer(raw, dtype=dtype)
                expected = count * 8
                raw = handle.read(expected)
                if len(raw) < expected:
                    raise DataFormatError(
                        f"{self.path}: truncated rcoo container (block "
                        f"{block} values: expected {expected} bytes, got "
                        f"{len(raw)})"
                    )
                values = np.frombuffer(raw, dtype=np.float64)
                yield indices, values

    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        yield from _exact_chunks(self._iter_blocks(), chunk_nnz)


def load_rcoo(path: PathLike) -> SparseTensor:
    """Load an rcoo container into an in-RAM :class:`SparseTensor`."""
    reader = RcooEntryReader(path)
    chunks = list(reader.iter_entry_chunks(DEFAULT_CHUNK_NNZ))
    if not chunks:
        return SparseTensor(
            np.empty((0, reader.order), dtype=np.int64),
            np.empty(0, dtype=np.float64),
            reader.shape,
        )
    indices = (
        np.concatenate([i for i, _ in chunks]) if len(chunks) > 1 else chunks[0][0]
    )
    values = (
        np.concatenate([v for _, v in chunks]) if len(chunks) > 1 else chunks[0][1]
    )
    return SparseTensor(indices, values, reader.shape)


class TensorEntryReader:
    """Chunked reader over an in-RAM :class:`SparseTensor` (entry order)."""

    def __init__(self, tensor: SparseTensor) -> None:
        self.tensor = tensor
        self.shape: Tuple[int, ...] = tensor.shape

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return self.tensor.order

    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        tensor = self.tensor
        for start in range(0, tensor.nnz, chunk_nnz):
            stop = start + chunk_nnz
            yield (
                np.ascontiguousarray(tensor.indices[start:stop], dtype=np.int64),
                np.ascontiguousarray(tensor.values[start:stop], dtype=np.float64),
            )


class ShardEntryReader:
    """Chunked reader over an existing shard store (canonical entry order).

    Streams the store's mode-0 sorted sequence through the entry-chunk
    protocol, so a store can be re-sharded (different ``shard_nnz`` or
    ``index_dtype``) or re-exported without materialising the tensor.
    A retired version-1 directory is read through
    :class:`repro.shards.legacy.V1StoreReader`, so
    ``ingest <v1-dir> --out <new>`` — the recipe
    :meth:`~repro.shards.store.ShardStore.open` quotes — works as
    advertised.
    """

    def __init__(self, directory: PathLike) -> None:
        from ..exceptions import DataFormatError as _DataFormatError
        from ..shards import ShardStore, V1StoreReader, is_v1_store

        directory = os.fspath(directory)
        try:
            self._store = ShardStore.open(directory)
        except _DataFormatError:
            if not is_v1_store(directory):
                raise
            self._store = V1StoreReader(directory)
        self.shape: Tuple[int, ...] = self._store.shape

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return len(self.shape)

    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[EntryChunk]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        if not hasattr(self._store, "read_mode_block"):  # v1 fallback reader
            yield from self._store.iter_entry_chunks(chunk_nnz)
            return
        for start in range(0, self._store.nnz, chunk_nnz):
            stop = min(start + chunk_nnz, self._store.nnz)
            block, values = self._store.read_mode_block(0, start, stop)
            yield np.asarray(block), values


def _sniff_rcoo(path: str) -> bool:
    """True when ``path`` starts with the rcoo magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(RCOO_MAGIC)) == RCOO_MAGIC
    except OSError:
        return False


def open_entry_reader(
    path: PathLike,
    shape: Optional[Sequence[int]] = None,
    one_based: bool = True,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Union[TextEntryReader, NpzEntryReader, RcooEntryReader, ShardEntryReader]:
    """Open ``path`` with the matching chunked reader.

    A directory is opened as a shard store, a ``.npz`` file as an archive,
    a file starting with the :data:`RCOO_MAGIC` bytes (or named
    ``*.rcoo``) as an rcoo container, anything else as text.
    ``shape``/``one_based``/``chunk_bytes`` apply to the text reader only
    (the binary formats carry their own shape and base).
    """
    fs_path = os.fspath(path)
    if os.path.isdir(fs_path):
        return ShardEntryReader(fs_path)
    if fs_path.endswith(".npz"):
        return NpzEntryReader(fs_path)
    if fs_path.endswith(".rcoo") or _sniff_rcoo(fs_path):
        return RcooEntryReader(fs_path)
    return TextEntryReader(
        fs_path, shape=shape, one_based=one_based, chunk_bytes=chunk_bytes
    )


def load_text(
    path: PathLike,
    shape: Optional[Sequence[int]] = None,
    one_based: bool = True,
) -> SparseTensor:
    """Read a sparse tensor from a ``i_1 ... i_N value`` text file.

    When ``shape`` is omitted it is inferred as the per-mode maximum index
    plus one.  Malformed lines raise :class:`~repro.exceptions.DataFormatError`
    with the offending line number.  Parsing is vectorized (see
    :class:`TextEntryReader`); the loaded entries are identical to the
    historical per-line parser's, bit for bit.
    """
    reader = TextEntryReader(path, shape=shape, one_based=one_based)
    chunks = list(reader.iter_entry_chunks(DEFAULT_CHUNK_NNZ))
    if not chunks:
        raise DataFormatError(f"{path}: file contains no tensor entries")
    indices = (
        np.concatenate([i for i, _ in chunks]) if len(chunks) > 1 else chunks[0][0]
    )
    values = (
        np.concatenate([v for _, v in chunks]) if len(chunks) > 1 else chunks[0][1]
    )
    if shape is None:
        # Per-column maxes beat one axis-0 reduction by ~7x on (nnz, N).
        shape = tuple(
            int(indices[:, mode].max()) + 1 for mode in range(indices.shape[1])
        )
    return SparseTensor(indices, values, shape)


def save_npz(tensor: SparseTensor, path: PathLike) -> None:
    """Save a sparse tensor to NumPy ``.npz`` (indices, values, shape)."""
    np.savez_compressed(
        path,
        indices=tensor.indices,
        values=tensor.values,
        shape=np.asarray(tensor.shape, dtype=np.int64),
    )


def load_npz(path: PathLike) -> SparseTensor:
    """Load a sparse tensor previously written by :func:`save_npz`."""
    with np.load(path) as data:
        missing = {"indices", "values", "shape"} - set(data.files)
        if missing:
            raise DataFormatError(f"{path}: missing arrays {sorted(missing)}")
        return SparseTensor(data["indices"], data["values"], tuple(data["shape"]))


def save_shards(
    tensor: Optional[SparseTensor],
    directory: PathLike,
    shard_nnz: int = 1_000_000,
    *,
    source=None,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
    index_dtype: str = "auto",
):
    """Export a tensor (or a streamed entry source) as a shard store.

    Writes the memory-mapped columnar COO shard layout of
    :class:`~repro.shards.store.ShardStore` (per-mode, per-column narrow
    ``.npy`` index files plus float64 values and a JSON manifest) at
    ``directory`` and returns the built store, ready for out-of-core
    sweeps.  ``index_dtype`` selects the column-dtype policy (``"auto"``
    narrow / ``"wide"`` int64).  Exactly one input must be given:
    ``tensor`` (in-RAM build) or ``source`` (a chunked entry reader — the
    store is then built with the external-memory merge of
    :mod:`repro.shards.merge`, reading at most ``chunk_nnz`` entries at a
    time, and is bitwise-identical to the in-RAM build of the same
    entries).
    """
    from ..shards import ShardStore

    if (tensor is None) == (source is None):
        raise ShapeError("pass exactly one of tensor or source to save_shards")
    if source is not None:
        return ShardStore.build_streaming(
            source,
            os.fspath(directory),
            shard_nnz=shard_nnz,
            chunk_nnz=chunk_nnz,
            index_dtype=index_dtype,
        )
    return ShardStore.build(
        tensor, os.fspath(directory), shard_nnz=shard_nnz, index_dtype=index_dtype
    )


def load_shards(directory: PathLike) -> SparseTensor:
    """Import a shard store back into an in-RAM :class:`SparseTensor`.

    Entries come back in the store's canonical (mode-0 sorted) order; the
    entry set is identical to the exported tensor.  Raises
    :class:`~repro.exceptions.DataFormatError` when ``directory`` holds no
    valid manifest.
    """
    from ..shards import ShardStore

    return ShardStore.open(os.fspath(directory)).to_tensor()


def roundtrip_paths(base: PathLike) -> Tuple[str, str]:
    """Return the (text, npz) file names derived from a base path (test helper)."""
    base = os.fspath(base)
    return base + ".tns", base + ".npz"
