"""Coordinate-format (COO) sparse tensors.

:class:`SparseTensor` is the central data structure of the library: every
solver in :mod:`repro.core` and :mod:`repro.baselines` consumes a sparse
tensor whose observed entries are stored as an ``(nnz, order)`` index array
plus an ``(nnz,)`` value array — exactly the (index, value) list the paper's
C implementation reads from disk.

Only *observed* entries are stored.  Missing entries are not zeros; they are
unknown, and the whole point of P-Tucker is to fit the model to the observed
set Ω only.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from .validation import check_indices, check_shape, check_values


class SparseTensor:
    """A sparse N-way tensor holding only its observed entries.

    Parameters
    ----------
    indices:
        Integer array of shape ``(nnz, order)``; row ``k`` holds the mode
        indices of the ``k``-th observed entry.
    values:
        Float array of shape ``(nnz,)`` with the observed values.
    shape:
        Mode lengths ``(I_1, ..., I_N)``.

    Notes
    -----
    Duplicate indices are allowed at construction but can be merged with
    :meth:`deduplicate`.  Entries are stored in the order given; sorting by a
    mode is available through :meth:`sort_by_mode` and is used by the
    row-update kernel to build per-row segments Ω_in.
    """

    __slots__ = ("indices", "values", "shape", "_mode_sorted_cache")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int],
    ) -> None:
        self.shape: Tuple[int, ...] = check_shape(shape)
        self.indices = check_indices(indices, self.shape)
        self.values = check_values(values, self.indices.shape[0])
        self._mode_sorted_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of modes N."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of observed entries |Ω|."""
        return int(self.values.shape[0])

    @property
    def density(self) -> float:
        """Fraction of cells that are observed."""
        total = float(np.prod(np.asarray(self.shape, dtype=np.float64)))
        return self.nnz / total if total > 0 else 0.0

    def norm(self) -> float:
        """Frobenius norm over the observed entries (Definition 1 restricted to Ω)."""
        return float(np.linalg.norm(self.values))

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"SparseTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.2e})"
        )

    def __iter__(self) -> Iterator[Tuple[Tuple[int, ...], float]]:
        for row, val in zip(self.indices, self.values):
            yield tuple(int(i) for i in row), float(val)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(
        cls,
        entries: Sequence[Tuple[Sequence[int], float]],
        shape: Sequence[int],
    ) -> "SparseTensor":
        """Build a tensor from an iterable of ``(index_tuple, value)`` pairs."""
        entries = list(entries)
        if entries:
            indices = np.asarray([list(idx) for idx, _ in entries], dtype=np.int64)
            values = np.asarray([val for _, val in entries], dtype=np.float64)
        else:
            indices = np.empty((0, len(shape)), dtype=np.int64)
            values = np.empty((0,), dtype=np.float64)
        return cls(indices, values, shape)

    @classmethod
    def from_dense(
        cls, array: np.ndarray, keep_zeros: bool = False
    ) -> "SparseTensor":
        """Build a sparse tensor from a dense array.

        By default only non-zero cells become observed entries; with
        ``keep_zeros=True`` every cell is treated as observed.
        """
        arr = np.asarray(array, dtype=np.float64)
        if keep_zeros:
            grid = np.indices(arr.shape).reshape(arr.ndim, -1).T
            return cls(grid, arr.reshape(-1), arr.shape)
        mask = arr != 0
        idx = np.argwhere(mask)
        return cls(idx, arr[mask], arr.shape)

    def copy(self) -> "SparseTensor":
        """Return a deep copy of this tensor."""
        return SparseTensor(self.indices.copy(), self.values.copy(), self.shape)

    def with_values(self, values: np.ndarray) -> "SparseTensor":
        """Return a tensor with the same index pattern but new values."""
        return SparseTensor(self.indices.copy(), values, self.shape)

    # ------------------------------------------------------------------
    # Dense conversion and element access
    # ------------------------------------------------------------------
    def to_dense(self, fill_value: float = 0.0) -> np.ndarray:
        """Materialise the tensor as a dense array (missing cells = ``fill_value``).

        Intended for small tensors (tests and the dense baselines); the number
        of cells is checked to avoid accidental huge allocations.
        """
        n_cells = int(np.prod(np.asarray(self.shape, dtype=np.float64)))
        if n_cells > 50_000_000:
            raise ShapeError(
                f"refusing to densify a tensor with {n_cells} cells; "
                "use the sparse interfaces instead"
            )
        dense = np.full(self.shape, fill_value, dtype=np.float64)
        if self.nnz:
            dense[tuple(self.indices.T)] = self.values
        return dense

    def get(self, index: Sequence[int], default: float = 0.0) -> float:
        """Return the value at ``index`` or ``default`` if it is not observed."""
        target = np.asarray(index, dtype=np.int64)
        if target.shape != (self.order,):
            raise ShapeError(
                f"index must have {self.order} components, got {len(index)}"
            )
        mask = np.all(self.indices == target[None, :], axis=1)
        hits = np.nonzero(mask)[0]
        if hits.size == 0:
            return default
        return float(self.values[hits[-1]])

    # ------------------------------------------------------------------
    # Reorganisation
    # ------------------------------------------------------------------
    def deduplicate(self, how: str = "last") -> "SparseTensor":
        """Merge duplicate indices.

        ``how`` may be ``"last"`` (keep the last occurrence, matching
        dict-like overwrite semantics), ``"first"``, ``"sum"`` or ``"mean"``.
        """
        if self.nnz == 0:
            return self.copy()
        keys = self.linear_indices()
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        unique_keys, first_pos, counts = np.unique(
            sorted_keys, return_index=True, return_counts=True
        )
        if how == "sum" or how == "mean":
            sums = np.add.reduceat(self.values[order], first_pos)
            vals = sums / counts if how == "mean" else sums
            rows = order[first_pos]
        elif how == "first":
            rows = order[first_pos]
            vals = self.values[rows]
        elif how == "last":
            last_pos = first_pos + counts - 1
            rows = order[last_pos]
            vals = self.values[rows]
        else:
            raise ValueError(f"unknown deduplication mode {how!r}")
        return SparseTensor(self.indices[rows], vals, self.shape)

    def linear_indices(self) -> np.ndarray:
        """Row-major linear index of each observed entry (useful as a dict key)."""
        if self.nnz == 0:
            return np.empty((0,), dtype=np.int64)
        return np.ravel_multi_index(tuple(self.indices.T), self.shape).astype(np.int64)

    def sort_by_mode(self, mode: int) -> np.ndarray:
        """Return a permutation sorting entries by their ``mode`` index.

        The permutation is cached per mode; the row-update kernel calls this
        once per mode per iteration.
        """
        if mode not in self._mode_sorted_cache:
            self._mode_sorted_cache[mode] = np.argsort(
                self.indices[:, mode], kind="stable"
            )
        return self._mode_sorted_cache[mode]

    def clear_caches(self) -> None:
        """Drop derived caches (the per-mode sort permutations).

        A fully warmed cache holds one int64 permutation per mode —
        O(order · nnz) bytes on top of the entries themselves.  Callers
        that are done sorting, or that must keep peak memory bounded while
        touching every mode in turn (:meth:`repro.shards.ShardStore.build`
        clears between modes), can release it explicitly; the permutations
        are recomputed on demand, bit-identically, by :meth:`sort_by_mode`.
        """
        self._mode_sorted_cache.clear()

    def mode_slice(self, mode: int, index: int) -> "SparseTensor":
        """Return the sub-tensor of entries whose ``mode`` index equals ``index``.

        This is Ω_in^{(n)} from the paper, kept as a sparse tensor with the
        original shape.
        """
        mask = self.indices[:, mode] == int(index)
        return SparseTensor(self.indices[mask], self.values[mask], self.shape)

    def counts_along_mode(self, mode: int) -> np.ndarray:
        """Number of observed entries per slice of ``mode`` (|Ω_in| for every in)."""
        return np.bincount(self.indices[:, mode], minlength=self.shape[mode]).astype(
            np.int64
        )

    def permute_modes(self, perm: Sequence[int]) -> "SparseTensor":
        """Return a tensor with modes reordered according to ``perm``."""
        perm = list(perm)
        if sorted(perm) != list(range(self.order)):
            raise ShapeError(f"{perm} is not a permutation of modes 0..{self.order - 1}")
        new_shape = tuple(self.shape[p] for p in perm)
        return SparseTensor(self.indices[:, perm], self.values.copy(), new_shape)

    # ------------------------------------------------------------------
    # Splitting and transformation
    # ------------------------------------------------------------------
    def split(
        self,
        train_fraction: float = 0.9,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple["SparseTensor", "SparseTensor"]:
        """Randomly split observed entries into train and test tensors.

        The paper uses 90 % of observed entries for training and 10 % for
        measuring test RMSE (Section IV-A1).
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be strictly between 0 and 1")
        rng = np.random.default_rng() if rng is None else rng
        perm = rng.permutation(self.nnz)
        cut = int(round(train_fraction * self.nnz))
        cut = min(max(cut, 1), self.nnz - 1) if self.nnz >= 2 else self.nnz
        train_rows, test_rows = perm[:cut], perm[cut:]
        train = SparseTensor(self.indices[train_rows], self.values[train_rows], self.shape)
        test = SparseTensor(self.indices[test_rows], self.values[test_rows], self.shape)
        return train, test

    def normalize_values(self) -> Tuple["SparseTensor", float, float]:
        """Scale values into [0, 1] as the paper does for real-world tensors.

        Returns the normalised tensor together with the original minimum and
        range so predictions can be mapped back.
        """
        if self.nnz == 0:
            return self.copy(), 0.0, 1.0
        lo = float(self.values.min())
        span = float(self.values.max() - lo)
        if span == 0.0:
            return self.with_values(np.zeros_like(self.values)), lo, 1.0
        return self.with_values((self.values - lo) / span), lo, span

    def sample(
        self, fraction: float, rng: Optional[np.random.Generator] = None
    ) -> "SparseTensor":
        """Return a tensor with a random ``fraction`` of the observed entries."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng() if rng is None else rng
        keep = max(1, int(round(fraction * self.nnz))) if self.nnz else 0
        rows = rng.choice(self.nnz, size=keep, replace=False) if keep else []
        return SparseTensor(self.indices[rows], self.values[rows], self.shape)

    # ------------------------------------------------------------------
    # Equality (mainly for tests)
    # ------------------------------------------------------------------
    def allclose(self, other: "SparseTensor", atol: float = 1e-10) -> bool:
        """True when both tensors store the same entries with close values."""
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        mine = {tuple(i): v for i, v in zip(map(tuple, self.indices), self.values)}
        theirs = {tuple(i): v for i, v in zip(map(tuple, other.indices), other.values)}
        if mine.keys() != theirs.keys():
            return False
        return all(abs(mine[k] - theirs[k]) <= atol for k in mine)
