"""Shared validation helpers for tensor construction and solver inputs."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError


def check_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    """Validate a tensor shape and return it as a tuple of positive ints."""
    if len(shape) == 0:
        raise ShapeError("tensor shape must have at least one mode")
    out = []
    for dim in shape:
        d = int(dim)
        if d <= 0:
            raise ShapeError(f"every mode length must be positive, got {shape}")
        out.append(d)
    return tuple(out)


def check_mode(mode: int, order: int) -> int:
    """Validate that ``mode`` is a valid mode index for an ``order``-way tensor."""
    m = int(mode)
    if not 0 <= m < order:
        raise ShapeError(f"mode {mode} out of range for an order-{order} tensor")
    return m


def check_ranks(ranks: Sequence[int], shape: Sequence[int]) -> Tuple[int, ...]:
    """Validate Tucker ranks against a tensor shape.

    Ranks must be positive; a rank larger than the corresponding mode length
    is allowed mathematically but almost always a mistake, so it is rejected.
    """
    if len(ranks) != len(shape):
        raise ShapeError(
            f"expected {len(shape)} ranks (one per mode), got {len(ranks)}"
        )
    out = []
    for rank, dim in zip(ranks, shape):
        r = int(rank)
        if r <= 0:
            raise ShapeError(f"ranks must be positive, got {ranks}")
        if r > dim:
            raise ShapeError(
                f"rank {r} exceeds mode length {dim}; Tucker ranks must not "
                "exceed the corresponding dimensionality"
            )
        out.append(r)
    return tuple(out)


def check_indices(indices: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate a COO index array of shape (nnz, order) against ``shape``."""
    idx = np.asarray(indices)
    if idx.ndim != 2:
        raise ShapeError(
            f"indices must be a 2-D array of shape (nnz, order), got ndim={idx.ndim}"
        )
    if idx.shape[1] != len(shape):
        raise ShapeError(
            f"indices have {idx.shape[1]} columns but the tensor has "
            f"{len(shape)} modes"
        )
    if idx.size and not np.issubdtype(idx.dtype, np.integer):
        if not np.all(np.equal(np.mod(idx, 1), 0)):
            raise ShapeError("indices must be integers")
    idx = idx.astype(np.int64, copy=False)
    if idx.size:
        if idx.min() < 0:
            raise ShapeError("indices must be non-negative")
        upper = np.asarray(shape, dtype=np.int64)
        if np.any(idx >= upper[None, :]):
            raise ShapeError("an index exceeds the tensor shape")
    return idx


def check_values(values: np.ndarray, nnz: int) -> np.ndarray:
    """Validate a COO value array against the number of stored entries."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.ndim != 1:
        raise ShapeError("values must be a 1-D array")
    if vals.shape[0] != nnz:
        raise ShapeError(
            f"got {vals.shape[0]} values for {nnz} index rows; they must match"
        )
    if vals.size and not np.all(np.isfinite(vals)):
        raise ShapeError("tensor values must be finite")
    return vals
