"""Tensor substrate: sparse COO tensors, dense tensor algebra, CSF, and I/O."""

from .coo import SparseTensor
from .csf import CsfTensor
from .dense import (
    fold,
    frobenius_norm,
    kron_rows,
    mode_product,
    multi_mode_product,
    tucker_reconstruct,
    unfold,
)
from ..columns import (
    IndexColumns,
    index_dtype_for_dim,
    index_dtypes_for_shape,
)
from .io import (
    NpzEntryReader,
    RcooEntryReader,
    ShardEntryReader,
    TensorEntryReader,
    TextEntryReader,
    load_npz,
    load_rcoo,
    load_shards,
    load_text,
    open_entry_reader,
    save_npz,
    save_rcoo,
    save_shards,
    save_text,
    write_rcoo,
)
from .operations import (
    factor_rows_product,
    sparse_gram_chain,
    sparse_reconstruct,
    sparse_ttm_chain,
    sparse_unfold_columns,
)

__all__ = [
    "SparseTensor",
    "CsfTensor",
    "unfold",
    "fold",
    "mode_product",
    "multi_mode_product",
    "tucker_reconstruct",
    "frobenius_norm",
    "kron_rows",
    "factor_rows_product",
    "sparse_reconstruct",
    "sparse_ttm_chain",
    "sparse_gram_chain",
    "sparse_unfold_columns",
    "load_text",
    "save_text",
    "load_npz",
    "save_npz",
    "load_rcoo",
    "save_rcoo",
    "write_rcoo",
    "load_shards",
    "save_shards",
    "open_entry_reader",
    "TextEntryReader",
    "NpzEntryReader",
    "RcooEntryReader",
    "TensorEntryReader",
    "ShardEntryReader",
    "IndexColumns",
    "index_dtype_for_dim",
    "index_dtypes_for_shape",
]
