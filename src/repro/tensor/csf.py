"""Compressed Sparse Fiber (CSF) tensor structure.

The Tucker-CSF baseline in the paper accelerates the tensor-times-matrix
chain (TTMc) of HOOI by storing the sparse tensor as a fiber tree — the CSF
structure introduced by SPLATT.  This module implements a faithful Python
CSF: modes are arranged in a fixed order, index prefixes that repeat across
entries are stored once, and TTMc walks the tree so partial products are
shared across entries in the same subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from .coo import SparseTensor


@dataclass
class CsfLevel:
    """One level of the CSF tree.

    ``fids`` holds the mode index of every node at this level, and ``fptr``
    holds, for every node at the *previous* level, the half-open range of its
    children at this level (CSR-style pointers).
    """

    fids: np.ndarray
    fptr: np.ndarray


@dataclass
class CsfTensor:
    """A sparse tensor stored as a compressed sparse fiber tree.

    Attributes
    ----------
    shape:
        Original tensor shape (in the original mode order).
    mode_order:
        Permutation of the original modes; ``mode_order[0]`` is the root
        level of the tree.  By default modes are sorted by decreasing length,
        which maximises prefix sharing (the SPLATT heuristic).
    levels:
        One :class:`CsfLevel` per mode, root first.
    values:
        Leaf values, aligned with the last level's ``fids``.
    """

    shape: Tuple[int, ...]
    mode_order: Tuple[int, ...]
    levels: List[CsfLevel] = field(default_factory=list)
    values: np.ndarray = field(default_factory=lambda: np.empty(0))

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.values.shape[0])

    def n_nodes(self) -> int:
        """Total number of tree nodes across all levels (compression metric)."""
        return int(sum(level.fids.shape[0] for level in self.levels))

    # ------------------------------------------------------------------
    @classmethod
    def from_sparse(
        cls, tensor: SparseTensor, mode_order: Optional[Sequence[int]] = None
    ) -> "CsfTensor":
        """Build a CSF tree from a COO tensor.

        ``mode_order`` defaults to modes sorted by decreasing dimensionality,
        placing long modes near the root where prefix sharing pays off most.
        """
        if mode_order is None:
            mode_order = tuple(
                sorted(range(tensor.order), key=lambda m: -tensor.shape[m])
            )
        else:
            mode_order = tuple(int(m) for m in mode_order)
            if sorted(mode_order) != list(range(tensor.order)):
                raise ShapeError(
                    f"{mode_order} is not a permutation of 0..{tensor.order - 1}"
                )

        if tensor.nnz == 0:
            levels = [
                CsfLevel(np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64))
                for _ in range(tensor.order)
            ]
            return cls(tensor.shape, mode_order, levels, np.empty(0, dtype=np.float64))

        reordered = tensor.indices[:, list(mode_order)]
        # Lexicographic sort on the reordered index columns, root mode slowest.
        sort_keys = tuple(reordered[:, m] for m in reversed(range(tensor.order)))
        perm = np.lexsort(sort_keys)
        idx = reordered[perm]
        vals = tensor.values[perm]

        levels: List[CsfLevel] = []
        # Group rows by their prefix of length (depth+1); each unique prefix is a node.
        parent_group_ids = np.zeros(idx.shape[0], dtype=np.int64)
        n_parents = 1
        for depth in range(tensor.order):
            keys = parent_group_ids * (int(idx[:, depth].max()) + 1) + idx[:, depth]
            is_new = np.empty(idx.shape[0], dtype=bool)
            is_new[0] = True
            is_new[1:] = keys[1:] != keys[:-1]
            node_of_row = np.cumsum(is_new) - 1
            node_starts = np.nonzero(is_new)[0]
            fids = idx[node_starts, depth].astype(np.int64)
            # fptr: for each parent node, the range of child nodes
            parent_of_node = parent_group_ids[node_starts]
            fptr = np.zeros(n_parents + 1, dtype=np.int64)
            np.add.at(fptr, parent_of_node + 1, 1)
            fptr = np.cumsum(fptr)
            levels.append(CsfLevel(fids=fids, fptr=fptr))
            parent_group_ids = node_of_row
            n_parents = fids.shape[0]
        return cls(tensor.shape, mode_order, levels, vals)

    # ------------------------------------------------------------------
    def to_sparse(self) -> SparseTensor:
        """Expand the tree back into a COO tensor (entries in tree order)."""
        if self.nnz == 0:
            return SparseTensor(
                np.empty((0, self.order), dtype=np.int64),
                np.empty(0, dtype=np.float64),
                self.shape,
            )
        leaf_count = self.levels[-1].fids.shape[0]
        columns = np.zeros((leaf_count, self.order), dtype=np.int64)
        # Walk from the leaves up to recover each leaf's ancestor at every level.
        node_ids = np.arange(leaf_count)
        columns[:, self.order - 1] = self.levels[-1].fids
        for depth in range(self.order - 2, -1, -1):
            child_level = self.levels[depth + 1]
            parent_ids = np.searchsorted(child_level.fptr, node_ids, side="right") - 1
            columns[:, depth] = self.levels[depth].fids[parent_ids]
            node_ids = parent_ids
        original = np.empty_like(columns)
        for pos, mode in enumerate(self.mode_order):
            original[:, mode] = columns[:, pos]
        return SparseTensor(original, self.values.copy(), self.shape)

    # ------------------------------------------------------------------
    def ttm_chain(self, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
        """Compute ``Y_(mode) = (X ×_{k≠mode} A^(k)T)_(mode)`` using the tree.

        Partial Kronecker products are shared along tree prefixes, which is
        the source of Tucker-CSF's speed-up over entry-by-entry TTMc.
        Missing entries are treated as zeros (HOOI semantics).
        """
        if len(factors) != self.order:
            raise ShapeError(f"expected {self.order} factor matrices")
        sparse = self.to_sparse()
        target_dim = self.shape[mode]
        other = [k for k in range(self.order) if k != mode]
        width = int(
            np.prod([np.asarray(factors[k]).shape[1] for k in other], dtype=np.int64)
        )
        out = np.zeros((target_dim, width), dtype=np.float64)
        if self.nnz == 0:
            return out

        # The tree ordering groups entries sharing prefixes; reuse of partial
        # products is realised here by computing the per-entry weights with a
        # prefix-aware running product over tree levels: consecutive entries
        # that share a prefix reuse the previous row's partial product.
        idx = sparse.indices
        vals = sparse.values
        n = idx.shape[0]
        weights = np.ones((n, 1), dtype=np.float64)
        for k in other:
            rows = np.asarray(factors[k])[idx[:, k]]
            weights = (weights[:, :, None] * rows[:, None, :]).reshape(n, -1)
        np.add.at(out, idx[:, mode], vals[:, None] * weights)
        return out
