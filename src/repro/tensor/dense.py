"""Dense tensor algebra used by the HOOI-style baselines and the tests.

The paper's baselines (Tucker-ALS / HOOI, Tucker-wOpt) manipulate dense
intermediates; this module provides the classic dense tensor operations —
mode-n matricization (unfolding), folding, n-mode products and full Tucker
reconstruction — implemented on top of NumPy arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ShapeError
from .validation import check_mode


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` matricization of a dense tensor (Definition 2).

    Row ``i`` of the result is the mode-``mode`` fiber collection for index
    ``i``; columns are ordered with the remaining modes varying fastest in
    ascending mode order, which matches the index map of Eq. (1) in the paper
    (0-based here).
    """
    arr = np.asarray(tensor)
    mode = check_mode(mode, arr.ndim)
    other = [m for m in range(arr.ndim) if m != mode]
    return np.transpose(arr, [mode] + other).reshape(arr.shape[mode], -1, order="F")


def fold(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold`: rebuild the dense tensor from its unfolding."""
    shape = tuple(int(s) for s in shape)
    mode = check_mode(mode, len(shape))
    other = [m for m in range(len(shape)) if m != mode]
    inter_shape = (shape[mode],) + tuple(shape[m] for m in other)
    mat = np.asarray(matrix)
    if mat.shape != (shape[mode], int(np.prod([shape[m] for m in other], dtype=np.int64))):
        raise ShapeError(
            f"matrix of shape {mat.shape} cannot be folded to tensor shape {shape} "
            f"along mode {mode}"
        )
    tensor = mat.reshape(inter_shape, order="F")
    inverse_perm = np.argsort([mode] + other)
    return np.transpose(tensor, inverse_perm)


def mode_product(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """n-mode product ``tensor ×_mode matrix`` (Definition 3).

    ``matrix`` must have shape ``(J, I_mode)``; the result replaces the
    ``mode``-th dimension by ``J``.
    """
    arr = np.asarray(tensor)
    mat = np.asarray(matrix)
    mode = check_mode(mode, arr.ndim)
    if mat.ndim != 2:
        raise ShapeError("the n-mode product requires a 2-D matrix")
    if mat.shape[1] != arr.shape[mode]:
        raise ShapeError(
            f"matrix has {mat.shape[1]} columns but mode {mode} has length "
            f"{arr.shape[mode]}"
        )
    unfolded = unfold(arr, mode)
    result = mat @ unfolded
    new_shape = list(arr.shape)
    new_shape[mode] = mat.shape[0]
    return fold(result, mode, new_shape)


def multi_mode_product(
    tensor: np.ndarray,
    matrices: Sequence[np.ndarray],
    skip: int = -1,
    transpose: bool = False,
) -> np.ndarray:
    """Apply an n-mode product for every mode (optionally skipping one).

    With ``transpose=True`` each matrix is transposed before the product,
    which is the ``X ×_1 A^(1)T ... ×_N A^(N)T`` pattern of Algorithm 1.
    """
    result = np.asarray(tensor)
    if len(matrices) != result.ndim:
        raise ShapeError(
            f"expected {result.ndim} matrices (one per mode), got {len(matrices)}"
        )
    for mode, matrix in enumerate(matrices):
        if mode == skip:
            continue
        mat = matrix.T if transpose else matrix
        result = mode_product(result, mat, mode)
    return result


def tucker_reconstruct(core: np.ndarray, factors: Sequence[np.ndarray]) -> np.ndarray:
    """Rebuild the dense tensor ``core ×_1 A^(1) ... ×_N A^(N)``."""
    core = np.asarray(core)
    if len(factors) != core.ndim:
        raise ShapeError(
            f"core has {core.ndim} modes but {len(factors)} factor matrices given"
        )
    for mode, factor in enumerate(factors):
        if factor.shape[1] != core.shape[mode]:
            raise ShapeError(
                f"factor {mode} has {factor.shape[1]} columns but the core's mode "
                f"{mode} has length {core.shape[mode]}"
            )
    return multi_mode_product(core, list(factors))


def frobenius_norm(tensor: np.ndarray) -> float:
    """Frobenius norm of a dense tensor (Definition 1)."""
    return float(np.linalg.norm(np.asarray(tensor).ravel()))


def kron_rows(matrices: Sequence[np.ndarray], rows: Sequence[int]) -> np.ndarray:
    """Kronecker product of one selected row from each matrix.

    Used by tests as a slow-but-obvious reference for the row-update kernel:
    ``kron_rows([A, B], [i, j]) == np.kron(A[i], B[j])``.
    """
    if len(matrices) != len(rows):
        raise ShapeError("need exactly one row index per matrix")
    out = np.asarray([1.0])
    for matrix, row in zip(matrices, rows):
        out = np.kron(out, np.asarray(matrix)[int(row)])
    return out
