"""Sparse tensor operations shared by the solvers.

These are the observed-entry counterparts of the dense operations in
:mod:`repro.tensor.dense`:

* :func:`sparse_unfold_columns` — the column index each observed entry maps to
  under mode-n matricization (Eq. 1 of the paper, 0-based).
* :func:`sparse_ttm_chain` — the tensor-times-matrix chain
  ``X ×_{k≠n} A^(k)T`` evaluated sparsely, producing the mode-n unfolding
  ``Y_(n)`` needed by HOOI-style baselines.
* :func:`sparse_gram_chain` — the same chain reduced on the fly to the small
  Gram matrix ``Y_(n)^T Y_(n)`` without materialising ``Y_(n)`` (the S-HOT
  strategy).
* :func:`factor_rows_product` — the per-entry element-wise product of factor
  rows over a subset of modes, the building block of the row-update kernel
  and of sparse reconstruction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ShapeError
from ..kernels import block_segment_starts, make_value_contractor, segment_sum
from .coo import SparseTensor
from .dense import unfold
from .validation import check_mode


def sparse_unfold_columns(tensor: SparseTensor, mode: int) -> np.ndarray:
    """Column index of each observed entry in the mode-``mode`` unfolding.

    Matches :func:`repro.tensor.dense.unfold`: the remaining modes are ordered
    ascending and vary fastest-first (Fortran order), which is the 0-based
    equivalent of Eq. (1).
    """
    mode = check_mode(mode, tensor.order)
    other = [m for m in range(tensor.order) if m != mode]
    cols = np.zeros(tensor.nnz, dtype=np.int64)
    stride = 1
    for m in other:
        cols += tensor.indices[:, m] * stride
        stride *= tensor.shape[m]
    return cols


def factor_rows_product(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    skip: int = -1,
    entry_rows: Optional[Union[np.ndarray, slice]] = None,
) -> np.ndarray:
    """Row-wise Khatri-Rao style product of factor rows for observed entries.

    For every observed entry α = (i_1, ..., i_N) (or the subset selected by
    ``entry_rows`` — an index array or a slice, the latter avoiding an index
    copy), compute the Kronecker product over modes k ≠ ``skip`` of
    the rows ``A^(k)[i_k, :]``.  The result has shape
    ``(n_entries, prod_{k≠skip} J_k)`` with the *last* non-skipped mode varying
    fastest, matching ``core.reshape(...)`` in C order used by the solvers.

    With ``skip=-1`` all modes are included, which yields the per-entry
    weights needed for sparse reconstruction.
    """
    if len(factors) != tensor.order:
        raise ShapeError(
            f"expected {tensor.order} factor matrices, got {len(factors)}"
        )
    idx = tensor.indices if entry_rows is None else tensor.indices[entry_rows]
    n_entries = idx.shape[0]
    included = [k for k in range(tensor.order) if k != skip]
    out = np.ones((n_entries, 1), dtype=np.float64)
    for k in included:
        rows = np.asarray(factors[k])[idx[:, k]]
        # out: (n, P), rows: (n, J_k) -> (n, P * J_k) with J_k varying fastest
        out = (out[:, :, None] * rows[:, None, :]).reshape(n_entries, -1)
    return out


def sparse_reconstruct(
    tensor: SparseTensor,
    core: np.ndarray,
    factors: Sequence[np.ndarray],
    entry_rows: Optional[np.ndarray] = None,
    block_size: int = 262_144,
) -> np.ndarray:
    """Model prediction (Eq. 4) at each observed entry of ``tensor``.

    Returns a 1-D array aligned with ``tensor.values`` (or the selected
    subset).  This evaluates ``sum_β G_β Π_k a^(k)_{i_k j_k}`` by contracting
    the core against the gathered factor rows mode by mode
    (:func:`repro.kernels.contraction.contract_value_block`), so neither a
    dense reconstruction nor the full ``(nnz, |G|)`` Kronecker weight matrix
    is ever materialised; entries are processed in blocks of ``block_size``.
    """
    if len(factors) != tensor.order:
        raise ShapeError(
            f"expected {tensor.order} factor matrices, got {len(factors)}"
        )
    idx = tensor.indices if entry_rows is None else tensor.indices[entry_rows]
    n_entries = idx.shape[0]
    contractor = make_value_contractor(factors, core, n_entries)
    out = np.empty(n_entries, dtype=np.float64)
    for start in range(0, n_entries, block_size):
        stop = min(start + block_size, n_entries)
        out[start:stop] = contractor(idx[start:stop])
    return out


def sparse_ttm_chain(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """Evaluate ``Y_(n) = (X ×_{k≠n} A^(k)T)_(n)`` from the sparse entries.

    Missing entries are treated as zeros — this is the semantics of the
    HOOI-style baselines (Algorithm 1), *not* of P-Tucker.  The result is a
    dense ``(I_n, prod_{k≠n} J_k)`` matrix.
    """
    mode = check_mode(mode, tensor.order)
    if len(factors) != tensor.order:
        raise ShapeError(
            f"expected {tensor.order} factor matrices, got {len(factors)}"
        )
    i_n = tensor.shape[mode]
    other = [k for k in range(tensor.order) if k != mode]
    width = int(
        np.prod([np.asarray(factors[k]).shape[1] for k in other], dtype=np.int64)
    )
    out = np.zeros((i_n, width), dtype=np.float64)
    if tensor.nnz == 0:
        return out
    # Sort by the output row once, then reduce each row's entries as one
    # contiguous segment instead of scatter-adding entry by entry.
    perm = tensor.sort_by_mode(mode)
    weights = factor_rows_product(tensor, factors, skip=mode, entry_rows=perm)
    starts, row_ids = block_segment_starts(tensor.indices[perm, mode])
    out[row_ids] = segment_sum(tensor.values[perm, None] * weights, starts)
    return out


def sparse_gram_chain(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    block_size: int = 65536,
) -> np.ndarray:
    """Accumulate ``Y_(n)^T Y_(n)`` on the fly without materialising ``Y_(n)``.

    This is the "on-the-fly computation" idea of S-HOT: the leading singular
    vectors of ``Y_(n)`` are recovered from the small
    ``(prod J_k, prod J_k)`` Gram matrix, so the ``I_n x prod J_k`` matrix
    never has to exist in memory at once.  Rows of ``Y_(n)`` are produced in
    blocks of mode-n slices and immediately reduced.
    """
    mode = check_mode(mode, tensor.order)
    perm = tensor.sort_by_mode(mode)
    val_sorted = tensor.values[perm]
    mode_idx = tensor.indices[perm, mode]
    other = [k for k in range(tensor.order) if k != mode]
    width = int(np.prod([np.asarray(factors[k]).shape[1] for k in other], dtype=np.int64))
    gram = np.zeros((width, width), dtype=np.float64)

    n_entries = mode_idx.shape[0]
    start = 0
    while start < n_entries:
        stop = min(start + block_size, n_entries)
        # extend the block to a slice boundary so a row of Y is never split
        while stop < n_entries and mode_idx[stop] == mode_idx[stop - 1]:
            stop += 1
        block_rows = np.arange(start, stop)
        weights = factor_rows_product(
            tensor, factors, skip=mode, entry_rows=perm[block_rows]
        )
        # Entries are mode-sorted, so each Y row is one contiguous run.
        starts, _ = block_segment_starts(mode_idx[block_rows])
        y_block = segment_sum(val_sorted[block_rows, None] * weights, starts)
        gram += y_block.T @ y_block
        start = stop
    return gram


def dense_from_sparse_unfold(tensor: SparseTensor, mode: int) -> np.ndarray:
    """Dense mode-``mode`` unfolding of a sparse tensor (zero-filled).

    Only used for tests and very small tensors; delegates to
    :func:`repro.tensor.dense.unfold` after densification.
    """
    return unfold(tensor.to_dense(), mode)


def mode_lengths_product(shape: Sequence[int], skip: int = -1) -> int:
    """Product of mode lengths, optionally excluding one mode."""
    dims: List[int] = [int(s) for i, s in enumerate(shape) if i != skip]
    return int(np.prod(dims, dtype=np.int64)) if dims else 1
