"""Vectorized parsing of ``i_1 ... i_N value`` text blocks.

This module is the fast path of :class:`~repro.tensor.io.TextEntryReader`.
It parses a byte block of whitespace-separated lines without any per-line
Python, in two tiers:

* :func:`parse_numeric_block` — the *turbo* tier.  The block is tokenised
  with NumPy boolean masks over the raw ``uint8`` buffer and the token
  columns are decoded by a column-sweep state machine: one pass per
  character column, each pass a handful of ufunc operations on length-``n``
  vectors (so short tokens — the common case for index columns and
  low-precision values — cost proportionally less).  Values are decoded
  exactly: mantissa and exponent digits accumulate as integers; values
  whose mantissa fits 15 digits with a small decimal exponent (ratings,
  counts, measurements) finish with one exact float64 multiply or divide,
  and the rest are reconstructed in 80-bit ``longdouble`` with a rounding
  guard that sends the (astronomically rare) tokens landing too close to a
  double-rounding boundary to Python's correctly-rounded ``float()`` one
  token at a time.  Every parsed value is therefore bit-for-bit identical
  to ``float(token)``.  Anything structurally unusual (comments, tokens
  over the width caps, non-digit index fields, several entries on one
  line) makes the function return ``None`` instead of guessing.
* :func:`loadtxt_block` — the robust tier, a thin wrapper over
  ``numpy.loadtxt`` (its C tokenizer), used when the turbo tier declines.

Neither tier produces diagnostics; callers that need exact ``file:line``
error messages re-scan the offending block per line
(:class:`~repro.tensor.io.TextEntryReader` does exactly that).
"""

from __future__ import annotations

import io
import warnings
from typing import Optional, Tuple

import numpy as np

#: Widest accepted index token (digits only; int64 holds 18 nines).
MAX_INDEX_DIGITS = 18

#: Widest value token decoded by the column sweep; longer tokens (junk or
#: extreme decimals) fall back per token.
MAX_VALUE_WIDTH = 32

#: Whitespace bytes: space, newline, tab, carriage return.
_WS_LUT = np.zeros(256, dtype=bool)
_WS_LUT[[32, 10, 9, 13]] = True

#: Exact float64 powers of ten (10**k is representable for k <= 22).
_F64_P10 = 10.0 ** np.arange(23)

#: Longdouble powers of ten, 10**-310 .. 10**310.  On x86 the longdouble
#: carries a 64-bit mantissa, so ``mantissa * _LD_P10[e + 310]`` has at
#: most ~1 ulp (relative 2**-63) of error — far inside the guard band
#: checked below.
_LD_P10 = np.longdouble(10.0) ** np.arange(-310, 311).astype(np.longdouble)

#: The rounding guard's error analysis needs longdouble to genuinely carry
#: more mantissa bits than float64; where it is a plain double (Windows
#: MSVC, macOS arm64) the guard would measure zero error and miss
#: misrounded values, so every hard token goes straight to ``float()``.
_LONGDOUBLE_USABLE = np.finfo(np.longdouble).nmant >= 63


def _token_bounds(buf: np.ndarray) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Start/end offsets of whitespace-separated tokens in a uint8 buffer.

    The third element reports the *canonical* layout: every whitespace byte
    is a single-byte separator (no doubled spaces, no CRLF, no blank
    lines), in which case separator positions alone define the tokens and
    later row checks may read the separator bytes directly.  Otherwise
    tokens are recovered from the transitions of the whitespace mask.
    """
    if buf.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, False
    ws = _WS_LUT[buf]
    ws_positions = np.flatnonzero(ws)
    if (
        ws_positions.size
        and not ws[0]
        and bool((ws_positions[1:] - ws_positions[:-1] > 1).all())
    ):
        if int(ws_positions[-1]) == buf.size - 1:
            ends = ws_positions
            starts = np.empty_like(ws_positions)
            starts[0] = 0
            starts[1:] = ws_positions[:-1] + 1
        else:  # a trailing token without a final newline
            count = ws_positions.size
            ends = np.empty(count + 1, dtype=np.int64)
            ends[:count] = ws_positions
            ends[count] = buf.size
            starts = np.empty(count + 1, dtype=np.int64)
            starts[0] = 0
            starts[1:] = ws_positions + 1
        return starts, ends, True
    transitions = np.flatnonzero(ws[:-1] != ws[1:]) + 1
    if not ws[0]:
        transitions = np.concatenate(([0], transitions))
    if not ws[-1]:
        transitions = np.concatenate((transitions, [buf.size]))
    return transitions[0::2], transitions[1::2], False


def _rows_match_lines(
    buf: np.ndarray,
    ts: np.ndarray,
    te: np.ndarray,
    canonical: bool,
) -> bool:
    """True when every reshaped row occupies exactly one input line.

    Guards the flat token stream against silently regrouping files whose
    lines do not all hold the same number of fields (one long line would
    otherwise be split into several entries).
    """
    n = ts.shape[0]
    if canonical:
        # Single-byte separators: the byte at each token end IS the whole
        # gap, so no newline can hide anywhere else.  Rows then sit on
        # distinct lines exactly when every within-row separator is a
        # space/tab and every row-final one a newline (or a lone CR, which
        # universal-newline semantics also treat as a line break).
        separators = buf[np.minimum(te.ravel(), buf.size - 1)].reshape(te.shape)
        if int(te[-1, -1]) == buf.size:  # EOF ends the last row
            separators[-1, -1] = 10
        intra = separators[:, :-1]
        final = separators[:, -1]
        return bool(
            ((intra == 32) | (intra == 9)).all()
            and ((final == 10) | (final == 13)).all()
        )
    # Exact check: compare the line id of each row's first and last byte.
    newlines = np.flatnonzero(buf == 10)
    line_first = np.searchsorted(newlines, ts[:, 0])
    line_last = np.searchsorted(newlines, te[:, -1] - 1)
    if (line_first != line_last).any():
        return False
    return n < 2 or bool((line_first[1:] > line_first[:-1]).all())


def _decode_int_columns(
    padded: np.ndarray, starts: np.ndarray, lens: np.ndarray
) -> Optional[np.ndarray]:
    """Digit-only tokens as int64 (None when any token is not plain digits).

    ``padded`` is the input buffer with trailing pad bytes so column reads
    never run off the end.  One Horner pass per character column keeps all
    intermediates at token-count length.
    """
    width = int(lens.max())
    if width > MAX_INDEX_DIGITS:
        return None
    out = np.zeros(starts.size, dtype=np.int64)
    # Group tokens by length: within a group every column is live, so the
    # Horner update needs no masks and no ``where`` blends.  Up to 9
    # digits the accumulator fits uint32, halving the memory traffic.
    for length in range(1, width + 1):
        group = np.flatnonzero(lens == length)
        if group.size == 0:
            continue
        first = starts[group]
        acc_dtype = np.uint32 if length <= 9 else np.int64
        acc = np.zeros(group.size, dtype=acc_dtype)
        for column in range(length):
            term = padded[first + column] - np.uint8(48)
            if (term > 9).any():  # uint8 wraps non-digits far above 9
                return None
            acc = acc * acc_dtype(10) + term
        out[group] = acc
    return out


def _decode_value_column(
    block: bytes,
    padded: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
) -> Optional[np.ndarray]:
    """Value tokens as float64, each bit-identical to ``float(token)``.

    Returns ``None`` when some token is not parseable as a float at all
    (the caller then reports the error through the diagnostic tier).
    """
    n = starts.size
    lens = ends - starts
    width = min(int(lens.max()), MAX_VALUE_WIDTH)

    mant = np.zeros(n, np.int64)  # mantissa digits, as integer
    expv = np.zeros(n, np.int64)  # explicit exponent digits, as integer
    e_col = np.full(n, MAX_VALUE_WIDTH + 1, np.int64)  # column of 'e'
    dot_col = np.full(n, MAX_VALUE_WIDTH + 1, np.int64)  # column of '.'
    seen_dot = np.zeros(n, bool)
    seen_e = np.zeros(n, bool)
    exp_neg = np.zeros(n, bool)
    exp_signed = np.zeros(n, bool)
    overflowed = np.zeros(n, bool)
    bad = lens > MAX_VALUE_WIDTH
    prev_was_e = np.zeros(n, bool)

    # int64 wraps at 19 accumulated digits; flag mantissas that might.
    mant_limit = (2 ** 63 - 10) // 10

    position = starts.astype(np.int64)
    for column in range(width):
        ch = padded[position]
        term = ch - np.uint8(48)
        active = lens > column
        is_digit = (term < 10) & active

        in_mant = is_digit & ~seen_e
        overflowed |= in_mant & (mant > mant_limit)
        mant = np.where(in_mant, mant * 10 + term, mant)

        if seen_e.any():
            in_exp = is_digit & seen_e
            expv = np.where(in_exp, expv * 10 + term, expv)

        other = active & ~is_digit
        if other.any():
            is_dot = (ch == 46) & other
            bad |= is_dot & (seen_dot | seen_e)
            seen_dot |= is_dot
            dot_col = np.where(is_dot, column, dot_col)
            is_e = ((ch == 101) | (ch == 69)) & other
            bad |= is_e & seen_e
            seen_e |= is_e
            e_col = np.where(is_e, column, e_col)
            is_minus = (ch == 45) & other
            is_sign = ((ch == 43) & other) | is_minus
            if column > 0:  # a leading sign is always legal
                bad |= is_sign & ~prev_was_e
                exp_neg |= is_minus & prev_was_e
                exp_signed |= is_sign & prev_was_e
            bad |= other & ~(is_dot | is_e | is_sign)
            prev_was_e = is_e
        elif prev_was_e.any():
            prev_was_e = np.zeros(n, bool)
        position += 1

    # Pure unsigned integers (counts — a very common regime): the mantissa
    # integer IS the value, and int64 -> float64 conversion rounds to
    # nearest exactly like ``float(token)`` does on an integer literal.
    if not (bad.any() or overflowed.any() or seen_dot.any() or seen_e.any()):
        first_ch = padded[starts]
        if not ((first_ch == 43) | (first_ch == 45)).any():
            return mant.astype(np.float64)

    # Structure checks from the recorded offsets (no per-column counters).
    first_ch = padded[starts]
    negative = first_ch == 45
    lead_sign = (negative | (first_ch == 43)).astype(np.int64)
    mant_end = np.minimum(e_col, lens)
    mant_digits = mant_end - lead_sign - seen_dot
    bad |= mant_digits <= 0
    frac = np.where(seen_dot, mant_end - dot_col - 1, 0)
    exp_digits = np.where(seen_e, lens - e_col - 1 - exp_signed, 0)
    bad |= seen_e & (exp_digits <= 0)
    bad |= exp_digits > 17  # expv itself may have wrapped past that
    bad |= overflowed
    expv = np.where(exp_neg, -expv, expv)

    decimal_exp = expv - frac
    zero = (mant == 0) & ~bad
    sign = np.where(negative, -1.0, 1.0)

    # Exact fast path: a mantissa below 2**53 and |E| <= 22 are both
    # exactly representable in float64, so one multiply / divide rounds
    # correctly (the classic strtod shortcut).
    mant_f = mant.astype(np.float64) * sign
    small = np.clip(decimal_exp, -22, 22)
    with np.errstate(over="ignore", invalid="ignore"):
        values = np.where(
            small >= 0,
            mant_f * _F64_P10[np.maximum(small, 0)],
            mant_f / _F64_P10[np.maximum(-small, 0)],
        )
    easy = (
        ~bad
        & (mant < 2 ** 53)
        & (decimal_exp >= -22)
        & (decimal_exp <= 22)
    )

    hard = np.flatnonzero(~easy)
    if hard.size:
        h_exp = decimal_exp[hard]
        h_bad = bad[hard]
        h_zero = zero[hard]
        h_bad |= ((h_exp < -290) | (h_exp > 290)) & ~h_zero
        with np.errstate(over="ignore", invalid="ignore"):
            value_ld = mant[hard].astype(np.longdouble) * _LD_P10[
                np.clip(h_exp, -310, 310) + 310
            ]
            value_ld = value_ld * sign[hard].astype(np.longdouble)
            h_values = value_ld.astype(np.float64)
            # Rounding guard: when the longdouble value sits within its own
            # error bound of a float64 rounding boundary, this path cannot
            # prove the rounding went the right way — re-parse those exactly.
            ulp = np.spacing(np.abs(h_values))
            err = np.abs(value_ld - h_values.astype(np.longdouble)).astype(
                np.float64
            )
            unsafe = np.abs(err - 0.5 * ulp) < np.abs(h_values) * 2.0 ** -58
            subnormalish = (np.abs(h_values) < 1e-280) & ~h_zero
            h_fallback = h_bad | unsafe | subnormalish | ~np.isfinite(h_values)
            if not _LONGDOUBLE_USABLE:
                h_fallback = np.ones_like(h_fallback)
        values[hard] = h_values
        if h_fallback.any():
            for i in hard[np.flatnonzero(h_fallback)]:
                try:
                    values[i] = float(block[starts[i] : ends[i]])
                except ValueError:
                    return None
    return values


def parse_numeric_block(
    block: bytes, n_columns: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Parse a plain numeric block into ``(indices, values)`` arrays.

    ``block`` must hold complete lines of exactly ``n_columns``
    whitespace-separated fields each: ``n_columns - 1`` non-negative integer
    indices and one float value.  Returns ``None`` whenever the block does
    not visibly match that shape — comment characters anywhere, a token
    count that does not divide evenly, several entries sharing a line, sign
    or dot characters in an index field — leaving such blocks to the
    slower, more forgiving tiers.  Numerical results are exact: indices are
    decoded with integer arithmetic and values match ``float(token)``
    bit for bit.
    """
    if n_columns < 2 or block.find(b"#") >= 0:
        return None
    buf = np.frombuffer(block, np.uint8)
    starts, ends, canonical = _token_bounds(buf)
    if starts.size == 0 or starts.size % n_columns:
        return None
    n = starts.size // n_columns
    ts = starts.reshape(n, n_columns)
    te = ends.reshape(n, n_columns)
    if not _rows_match_lines(buf, ts, te, canonical):
        return None

    # Pad the tail so column reads at ``start + c`` never run off the end.
    padded = np.empty(buf.size + MAX_VALUE_WIDTH, dtype=np.uint8)
    padded[: buf.size] = buf
    padded[buf.size :] = 32

    lens = (ends - starts).reshape(n, n_columns)  # contiguous subtract
    int_starts = ts[:, :-1].ravel()
    int_lens = lens[:, :-1].ravel()
    indices = _decode_int_columns(padded, int_starts, int_lens)
    if indices is None:
        return None
    values = _decode_value_column(block, padded, ts[:, -1], te[:, -1])
    if values is None:
        return None
    return indices.reshape(n, n_columns - 1), values


def loadtxt_block(block: bytes) -> Optional[np.ndarray]:
    """Parse a block with ``numpy.loadtxt`` into an ``(n, cols)`` float table.

    Handles comments (whole-line and inline ``#``), blank lines and ragged
    whitespace.  Returns ``None`` when the tokenizer rejects the block or
    cannot decode it as UTF-8 — callers then re-scan per line for an exact
    diagnostic.  An all-comment block yields an empty table.
    """
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # "input contained no data"
            return np.loadtxt(
                io.BytesIO(block),
                dtype=np.float64,
                comments="#",
                ndmin=2,
                encoding="utf-8",
            )
    except (ValueError, UnicodeDecodeError):
        return None
