"""Figure 7: factorization speed on the real-world tensors.

The paper measures the average time per iteration of every method on
Yahoo-music, MovieLens, the sea-wave video and the 'Lena' image tensors.
This experiment runs the same comparison on the scaled-down stand-ins from
:func:`repro.data.workloads.realworld_standins` (see the substitution table
in DESIGN.md) and additionally includes P-Tucker-Approx, which the paper
plots alongside P-Tucker in this figure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import PTuckerConfig
from ..data.workloads import realworld_standins
from .harness import ExperimentResult, run_algorithms

FIGURE7_METHODS = (
    "P-Tucker",
    "P-Tucker-Approx",
    "Tucker-wOpt",
    "Tucker-CSF",
    "S-HOT",
)


def run(
    methods: Sequence[str] = FIGURE7_METHODS,
    scale: float = 0.25,
    max_iterations: int = 2,
    budget_mb: float = 256.0,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the per-dataset speed comparison of Figure 7."""
    datasets = realworld_standins(scale=scale, seed=seed)
    experiment = ExperimentResult(name="figure7")
    for dataset_name, (tensor, ranks) in datasets.items():
        config = PTuckerConfig(
            ranks=ranks,
            max_iterations=max_iterations,
            seed=seed,
            memory_budget_bytes=int(budget_mb * 1024 * 1024),
        )
        outcomes = run_algorithms(methods, tensor, config)
        for outcome in outcomes:
            experiment.rows.append(
                {
                    "dataset": dataset_name,
                    "algorithm": outcome.algorithm,
                    "sec/iter": outcome.seconds_per_iteration,
                    "oom": outcome.out_of_memory,
                }
            )
    experiment.add_note(
        "Datasets are scaled-down synthetic stand-ins for the paper's real-world "
        "tensors; empty (oom) entries correspond to the paper's missing bars."
    )
    return experiment
