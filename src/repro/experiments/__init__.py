"""Experiment modules regenerating every figure and table of the evaluation."""

from . import (
    bench_kernels,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table3,
    table5,
    table6,
)
from .harness import (
    ALGORITHM_REGISTRY,
    PAPER_COMPETITORS,
    ExperimentResult,
    RunOutcome,
    make_solver,
    run_algorithm,
    run_algorithms,
)
from .report import render_table, summarize_speedups
from .summary import accuracy_summary, headline, speedup_summary

#: mapping from experiment name to its module (each has a ``run()`` function)
EXPERIMENTS = {
    "table1": table1,
    "table3": table3,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "table5": table5,
    "table6": table6,
    "bench-kernels": bench_kernels,
}

__all__ = [
    "EXPERIMENTS",
    "ALGORITHM_REGISTRY",
    "PAPER_COMPETITORS",
    "ExperimentResult",
    "RunOutcome",
    "make_solver",
    "run_algorithm",
    "run_algorithms",
    "render_table",
    "summarize_speedups",
    "speedup_summary",
    "accuracy_summary",
    "headline",
]
