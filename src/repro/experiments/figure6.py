"""Figure 6: data scalability of P-Tucker versus the competitors.

Four sweeps over synthetic tensors, one per panel:

* (a) tensor order N
* (b) tensor dimensionality I
* (c) number of observable entries |Ω|
* (d) tensor rank J

For every sweep point each method's mean time per iteration is measured; an
intermediate-memory budget models the paper's 512 GB machine so methods that
blow up (Tucker-wOpt on anything non-trivial) report O.O.M. instead of a
time, exactly as in the paper's plots.  Sizes are scaled down relative to the
paper (see DESIGN.md) but the progression of each swept attribute is kept, so
the curve shapes and the method ordering are comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import PTuckerConfig
from ..data.workloads import (
    Sweep,
    dimensionality_sweep,
    nnz_sweep,
    order_sweep,
    rank_sweep,
)
from .harness import ExperimentResult, run_algorithms

#: competitors shown in Figure 6 (P-Tucker is the default variant)
FIGURE6_METHODS = ("P-Tucker", "Tucker-wOpt", "Tucker-CSF", "S-HOT")

#: intermediate-data budget standing in for the paper's 512 GB machine; the
#: scaled-down tensors need a proportionally scaled-down budget for the same
#: O.O.M. pattern to emerge.
DEFAULT_BUDGET_MB = 256.0


def _run_sweep(
    sweep: Sweep,
    methods: Sequence[str],
    max_iterations: int,
    budget_mb: float,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for workload in sweep.workloads:
        tensor = workload.build()
        config = PTuckerConfig(
            ranks=workload.ranks,
            max_iterations=max_iterations,
            seed=workload.seed,
            memory_budget_bytes=int(budget_mb * 1024 * 1024),
        )
        outcomes = run_algorithms(methods, tensor, config)
        for outcome in outcomes:
            rows.append(
                {
                    "sweep": sweep.attribute,
                    "point": workload.name,
                    "algorithm": outcome.algorithm,
                    "sec/iter": outcome.seconds_per_iteration,
                    "oom": outcome.out_of_memory,
                }
            )
    return rows


def run(
    panels: Optional[Sequence[str]] = None,
    methods: Sequence[str] = FIGURE6_METHODS,
    max_iterations: int = 2,
    budget_mb: float = DEFAULT_BUDGET_MB,
    small: bool = False,
) -> ExperimentResult:
    """Regenerate the Figure 6 scalability curves.

    ``panels`` selects a subset of {"order", "dimensionality", "nnz", "rank"};
    ``small=True`` shrinks every sweep for quick benchmark runs.
    """
    if small:
        sweeps = {
            "order": order_sweep(orders=(3, 4, 5), dimensionality=30, nnz=400),
            "dimensionality": dimensionality_sweep(dims=(50, 200, 800), rank=4),
            "nnz": nnz_sweep(nnzs=(500, 2000, 8000), dimensionality=5000, rank=4),
            "rank": rank_sweep(ranks=(3, 5, 7), dimensionality=1000, nnz=5000),
        }
    else:
        sweeps = {
            "order": order_sweep(),
            "dimensionality": dimensionality_sweep(),
            "nnz": nnz_sweep(),
            "rank": rank_sweep(),
        }
    selected = panels if panels else tuple(sweeps)

    experiment = ExperimentResult(name="figure6")
    for panel in selected:
        if panel not in sweeps:
            raise KeyError(f"unknown Figure 6 panel {panel!r}")
        experiment.add_rows(
            _run_sweep(sweeps[panel], methods, max_iterations, budget_mb)
        )
    experiment.add_note(
        "Each row is one (sweep point, algorithm) pair with the mean seconds per "
        "iteration; 'oom' marks runs that exceeded the intermediate-memory budget."
    )
    return experiment
