"""Figure 5: distribution of the partial reconstruction error R(β).

The paper plots, for a MovieLens factorization with J = 10, the distribution
of R(β) over core entries and the cumulative share of the total error, and
observes a Pareto-like pattern: roughly 20 % of core entries account for
roughly 80 % of the removable reconstruction error.  This experiment fits
P-Tucker on the MovieLens-style stand-in, computes R(β) for every core entry,
and reports the cumulative error share at each decile of core entries
(sorted by decreasing R(β)).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import PTucker, PTuckerConfig
from ..core.approx import partial_reconstruction_errors
from ..data.movielens import generate_movielens_like
from .harness import ExperimentResult


def run(
    rank: int = 5,
    n_ratings: int = 8000,
    max_iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the R(β) distribution / cumulative-error curve of Figure 5."""
    dataset = generate_movielens_like(
        n_users=150, n_movies=80, n_years=8, n_hours=12, n_ratings=n_ratings, seed=seed
    )
    config = PTuckerConfig(
        ranks=(rank,) * 4, max_iterations=max_iterations, seed=seed, orthogonalize=False
    )
    result = PTucker(config).fit(dataset.tensor)
    scores = partial_reconstruction_errors(
        dataset.tensor, result.core, result.factors
    )

    # The cumulative curve is over the magnitude of each entry's partial
    # reconstruction error; the sign of R(β) only says whether removing the
    # entry would reduce (positive) or increase (negative) the error.
    magnitudes = np.abs(scores)
    sorted_scores = np.sort(magnitudes)[::-1]
    total = float(sorted_scores.sum())
    cumulative = (
        np.cumsum(sorted_scores) / total if total > 0 else np.zeros_like(sorted_scores)
    )

    experiment = ExperimentResult(name="figure5")
    n_entries = sorted_scores.shape[0]
    for decile in range(1, 11):
        cutoff = max(1, int(round(decile / 10.0 * n_entries)))
        experiment.rows.append(
            {
                "core_entry_fraction": decile / 10.0,
                "cumulative_error_share": float(cumulative[cutoff - 1]),
            }
        )
    top20 = max(1, int(round(0.2 * n_entries)))
    noisy_fraction = float(np.mean(scores > 0.0))
    experiment.add_note(
        f"Top 20% of core entries account for {float(cumulative[top20 - 1]):.0%} of "
        "the total partial reconstruction error (paper: ~80%); "
        f"{noisy_fraction:.0%} of entries are 'noisy' (positive R(β))."
    )
    return experiment
