"""Table V: concept discovery on the MovieLens dataset.

The paper clusters the rows of the movie factor matrix (J = 8, K = 100
clusters) and finds coherent genre concepts (Thriller, Comedy, Drama).  With
the synthetic MovieLens stand-in the genres are planted, so this experiment
can go further than eyeballing: it reports, for each discovered concept, the
dominant planted genre and its share of the cluster, plus the overall purity
of the clustering against the planted genres.
"""

from __future__ import annotations

import numpy as np

from ..core import PTucker, PTuckerConfig
from ..data.movielens import generate_movielens_like, movie_titles
from ..discovery import concept_alignment, discover_concepts
from .harness import ExperimentResult

MOVIE_MODE = 1  # (user, movie, year, hour)


def run(
    rank: int = 8,
    n_concepts: int = 6,
    n_ratings: int = 15_000,
    max_iterations: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the concept-discovery study of Table V."""
    dataset = generate_movielens_like(
        n_users=250, n_movies=120, n_years=10, n_hours=24, n_ratings=n_ratings, seed=seed
    )
    config = PTuckerConfig(ranks=(rank,) * 4, max_iterations=max_iterations, seed=seed)
    result = PTucker(config).fit(dataset.tensor)
    discovery = discover_concepts(result, MOVIE_MODE, n_concepts, seed=seed)
    titles = movie_titles(dataset)

    experiment = ExperimentResult(name="table5")
    for concept in discovery.concepts:
        members = concept.member_indices
        if members.size == 0:
            continue
        genres = dataset.movie_genre[members]
        counts = np.bincount(genres, minlength=dataset.n_genres)
        dominant = int(np.argmax(counts))
        share = float(counts[dominant]) / members.size
        examples = ", ".join(titles[int(i)] for i in concept.representative_indices[:3])
        experiment.rows.append(
            {
                "concept": concept.concept_id,
                "size": concept.size,
                "dominant_genre": dataset.genre_names[dominant],
                "genre_share": share,
                "examples": examples,
            }
        )
    purity = concept_alignment(discovery, dataset.movie_genre)
    experiment.add_note(
        f"Clustering purity against the planted genres: {purity:.2f} "
        "(the paper reports qualitatively coherent genre clusters)."
    )
    return experiment
