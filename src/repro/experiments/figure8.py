"""Figure 8: P-Tucker versus P-Tucker-Cache (time and memory vs tensor order).

The cache variant trades memory (the |Ω| x |G| table Pres) for speed (O(1)
instead of O(N) work per (entry, core entry) pair).  The paper sweeps the
tensor order from 6 to 10 with I = 100, |Ω| = 10³, J = 3 and reports
(a) running time per iteration and (b) required memory for both variants.
This experiment runs the same sweep (with a slightly smaller default order
range so a pure-Python run stays quick) and reports both quantities.
"""

from __future__ import annotations

from typing import Sequence

from ..core import PTuckerConfig
from ..data.synthetic import random_sparse_tensor
from .harness import ExperimentResult, run_algorithm


def run(
    orders: Sequence[int] = (4, 5, 6, 7),
    dimensionality: int = 50,
    nnz: int = 800,
    rank: int = 3,
    max_iterations: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the time/memory trade-off curves of Figure 8."""
    experiment = ExperimentResult(name="figure8")
    for order in orders:
        tensor = random_sparse_tensor(
            (dimensionality,) * order, nnz, seed=seed + order
        )
        config = PTuckerConfig(
            ranks=(rank,) * order, max_iterations=max_iterations, seed=seed
        )
        for algorithm in ("P-Tucker", "P-Tucker-Cache"):
            outcome = run_algorithm(algorithm, tensor, config)
            experiment.rows.append(
                {
                    "order": order,
                    "algorithm": algorithm,
                    "sec/iter": outcome.seconds_per_iteration,
                    "peak_mem_MB": outcome.peak_memory_mb,
                }
            )
    experiment.add_note(
        "The paper reports P-Tucker-Cache up to 1.7x faster while P-Tucker needs "
        "up to 29.5x less memory at the largest order; the expected shape is the "
        "cache variant's memory growing with J^N while P-Tucker's stays flat."
    )
    return experiment
