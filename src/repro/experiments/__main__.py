"""Command-line entry point: ``python -m repro.experiments <name> [...names]``.

Runs the requested experiments (or all of them with ``all``) and prints the
resulting tables.  Every experiment accepts only its defaults here; for
parameter sweeps use the modules' ``run()`` functions directly or the
benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from . import EXPERIMENTS
from .report import render_table


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables as text tables.",
    )
    parser.add_argument(
        "names",
        nargs="+",
        help=f"experiment names ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    args = parser.parse_args(argv)

    # "all" means the paper's artifacts; the repo-perf microbench runs the
    # full timing grid and writes BENCH_kernels.json to the cwd, so it only
    # runs when named explicitly (also alongside "all").
    if "all" in args.names:
        explicit = {name for name in args.names if name != "all"}
        names = sorted(
            explicit | {name for name in EXPERIMENTS if name != "bench-kernels"}
        )
    else:
        names = args.names
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    for name in names:
        result = EXPERIMENTS[name].run()
        print(render_table(result.rows, title=f"== {name} =="))
        for note in result.notes:
            print(f"note: {note}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
