"""Table III: time and memory complexity of every algorithm.

The paper's Table III states per-iteration time complexities and
intermediate-memory complexities.  This experiment verifies them empirically
on two axes this build can sweep cheaply:

* **time vs |Ω|** — P-Tucker's per-iteration time should grow near linearly
  with the number of observed entries (the N²|Ω|Jᴺ term dominates), while the
  dense Tucker-wOpt time should *not* depend on |Ω| (it is grid-bound).
* **memory vs rank / threads** — the measured peak intermediate data of each
  method is compared with the closed-form estimate of
  :class:`~repro.metrics.memory.MemoryModel`.

The result rows carry both the measured quantity and the model prediction so
EXPERIMENTS.md can report measured-vs-expected side by side.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import PTuckerConfig
from ..data.synthetic import random_sparse_tensor
from ..metrics.memory import MemoryModel, TensorAttributes
from .harness import ExperimentResult, run_algorithm


def time_scaling_rows(
    nnz_values: Sequence[int] = (1000, 2000, 4000, 8000),
    dimensionality: int = 300,
    rank: int = 4,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Mean per-iteration time of P-Tucker as |Ω| grows (linear-in-|Ω| check)."""
    rows: List[Dict[str, object]] = []
    config = PTuckerConfig(ranks=(rank,) * 3, max_iterations=2, seed=seed)
    for nnz in nnz_values:
        tensor = random_sparse_tensor((dimensionality,) * 3, nnz, seed=seed + nnz)
        outcome = run_algorithm("P-Tucker", tensor, config)
        rows.append(
            {
                "algorithm": "P-Tucker",
                "nnz": nnz,
                "sec/iter": outcome.seconds_per_iteration,
            }
        )
    return rows


def memory_model_rows(
    dimensionality: int = 200,
    nnz: int = 4000,
    rank: int = 4,
    threads: int = 4,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measured peak intermediate memory vs the Table III closed forms."""
    attrs = TensorAttributes(shape=(dimensionality,) * 3, ranks=(rank,) * 3, nnz=nnz)
    model = MemoryModel(threads=threads)
    tensor = random_sparse_tensor(attrs.shape, nnz, seed=seed)
    config = PTuckerConfig(
        ranks=(rank,) * 3, max_iterations=2, seed=seed, threads=threads
    )
    rows: List[Dict[str, object]] = []
    for name in ("P-Tucker", "P-Tucker-Cache", "Tucker-ALS", "S-HOT"):
        outcome = run_algorithm(name, tensor, config)
        measured = outcome.peak_memory_mb
        expected = model.estimate(name, attrs) / (1024.0 * 1024.0)
        rows.append(
            {
                "algorithm": name,
                "measured_MB": measured,
                "model_MB": expected,
            }
        )
    return rows


def run(seed: int = 0) -> ExperimentResult:
    """Regenerate the empirical checks behind Table III."""
    experiment = ExperimentResult(name="table3")
    experiment.add_rows(time_scaling_rows(seed=seed))
    experiment.add_rows(memory_model_rows(seed=seed))
    experiment.add_note(
        "Time rows: P-Tucker per-iteration time should scale near-linearly in |Ω|. "
        "Memory rows: measured peak intermediate data versus the Table III formulas."
    )
    return experiment
