"""Table VI: relation discovery on the MovieLens dataset.

The paper inspects the largest core-tensor entries and reports the relations
they encode, e.g. strong (year, hour) combinations for particular genres.
This experiment fits P-Tucker on the MovieLens-style stand-in, extracts the
top relations between the movie, year and hour modes, and — because the
stand-in's genre/year and genre/hour affinities are planted — checks that the
discovered peak hours/years coincide with the planted affinity peaks.
"""

from __future__ import annotations

import numpy as np

from ..core import PTucker, PTuckerConfig
from ..data.movielens import generate_movielens_like
from ..discovery import discover_relations
from .harness import ExperimentResult

MODE_NAMES = ("user", "movie", "year", "hour")


def run(
    rank: int = 6,
    n_relations: int = 3,
    n_ratings: int = 15_000,
    max_iterations: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the relation-discovery study of Table VI."""
    dataset = generate_movielens_like(
        n_users=250, n_movies=120, n_years=10, n_hours=24, n_ratings=n_ratings, seed=seed
    )
    config = PTuckerConfig(ranks=(rank,) * 4, max_iterations=max_iterations, seed=seed)
    result = PTucker(config).fit(dataset.tensor)
    relations = discover_relations(
        result, n_relations=n_relations, modes=(1, 2, 3), n_attributes=3
    )

    planted_year_peaks = np.argmax(dataset.genre_year_affinity, axis=1)
    planted_hour_peaks = np.argmax(dataset.genre_hour_affinity, axis=1)

    experiment = ExperimentResult(name="table6")
    for relation in relations:
        top_years = relation.top_attributes.get(2, np.empty(0, dtype=np.int64))
        top_hours = relation.top_attributes.get(3, np.empty(0, dtype=np.int64))
        year_hit = bool(np.intersect1d(top_years, planted_year_peaks).size)
        hour_hit = bool(np.intersect1d(top_hours, planted_hour_peaks).size)
        experiment.rows.append(
            {
                "relation": relation.rank,
                "g_value": abs(relation.strength),
                "top_years": ", ".join(str(int(y)) for y in top_years),
                "top_hours": ", ".join(str(int(h)) for h in top_hours),
                "matches_planted_year_peak": year_hit,
                "matches_planted_hour_peak": hour_hit,
            }
        )
    experiment.add_note(
        "Each relation is one of the largest core entries; its top years/hours are "
        "compared against the planted genre-year and genre-hour affinity peaks."
    )
    return experiment
