"""Figure 11: accuracy on the real-world tensors.

Two panels: reconstruction error (Eq. 5) on the training entries and test
RMSE on a held-out 10 % of the observed entries, for P-Tucker and the
competitors on the four real-world tensors.  Zero-filling HOOI methods
(Tucker-CSF, S-HOT) should show markedly higher error on the rating tensors
because they fit the unobserved cells to zero; Tucker-wOpt is accurate where
it fits in memory.  This experiment runs the comparison on the scaled-down
stand-ins and reports both metrics per (dataset, method).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import PTuckerConfig
from ..data.workloads import realworld_standins
from .harness import ExperimentResult, run_algorithms

FIGURE11_METHODS = ("P-Tucker", "Tucker-wOpt", "Tucker-CSF", "S-HOT")


def run(
    methods: Sequence[str] = FIGURE11_METHODS,
    scale: float = 0.25,
    max_iterations: int = 4,
    budget_mb: float = 256.0,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the reconstruction-error and test-RMSE comparison of Figure 11."""
    datasets = realworld_standins(scale=scale, seed=seed)
    rng = np.random.default_rng(seed)
    experiment = ExperimentResult(name="figure11")
    for dataset_name, (tensor, ranks) in datasets.items():
        train, test = tensor.split(0.9, rng=rng)
        config = PTuckerConfig(
            ranks=ranks,
            max_iterations=max_iterations,
            seed=seed,
            memory_budget_bytes=int(budget_mb * 1024 * 1024),
        )
        outcomes = run_algorithms(methods, train, config, test)
        for outcome in outcomes:
            experiment.rows.append(
                {
                    "dataset": dataset_name,
                    "algorithm": outcome.algorithm,
                    "recon_error": outcome.reconstruction_error,
                    "test_rmse": outcome.test_rmse,
                    "oom": outcome.out_of_memory,
                }
            )
    experiment.add_note(
        "Expected shape (paper): P-Tucker has the lowest reconstruction error and "
        "test RMSE on every dataset; zero-filling methods are 1.4-4.8x worse."
    )
    return experiment
