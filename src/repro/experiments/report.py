"""Plain-text table rendering for experiment results.

The paper reports its evaluation as figures and tables; since this
reproduction runs headless, every experiment returns rows of numbers and this
module renders them as aligned text tables (the same rows a plotting script
would consume).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 4) -> str:
    """Render one table cell; floats use scientific notation when small/large."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Sequence[str] = (),
    title: str = "",
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns:
        cols: List[str] = list(columns)
    else:
        # Union of keys across all rows, ordered by first appearance, so mixed
        # row schemas (e.g. Table III's time rows and memory rows) all render.
        cols = []
        for row in rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
    rendered: List[List[str]] = [
        [format_cell(row.get(col, ""), precision) for col in cols] for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(cols)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(cols)))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio used for "x times faster / less error" summaries."""
    if denominator == 0.0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator


def summarize_speedups(
    rows: Sequence[Mapping[str, Cell]],
    baseline_column: str,
    target_column: str,
) -> Dict[str, float]:
    """Min/max ratio of two numeric columns across rows (e.g. paper's "1.7-14.1x")."""
    ratios = [
        ratio(float(row[baseline_column]), float(row[target_column]))
        for row in rows
        if row.get(baseline_column) not in (None, "")
        and row.get(target_column) not in (None, "")
    ]
    if not ratios:
        return {"min": 1.0, "max": 1.0}
    return {"min": min(ratios), "max": max(ratios)}
