"""Figure 9: P-Tucker versus P-Tucker-Approx (per-iteration time and accuracy).

On the MovieLens dataset with J = 5 the paper shows (a) the per-iteration
time of P-Tucker-Approx shrinking every iteration as core entries are
truncated, eventually dropping below P-Tucker's flat per-iteration time, and
(b) both methods converging to nearly the same reconstruction error, with the
approximate variant converging faster in wall-clock terms.  This experiment
reproduces both panels on the MovieLens-style stand-in.
"""

from __future__ import annotations

from ..core import PTucker, PTuckerApprox, PTuckerConfig
from ..data.movielens import generate_movielens_like
from .harness import ExperimentResult


def run(
    rank: int = 5,
    n_ratings: int = 8000,
    max_iterations: int = 6,
    truncation_rate: float = 0.2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the per-iteration time and error-vs-time curves of Figure 9."""
    dataset = generate_movielens_like(
        n_users=150, n_movies=80, n_years=8, n_hours=12, n_ratings=n_ratings, seed=seed
    )
    config = PTuckerConfig(
        ranks=(rank,) * 4,
        max_iterations=max_iterations,
        truncation_rate=truncation_rate,
        seed=seed,
        tolerance=0.0,
        orthogonalize=False,
    )
    exact = PTucker(config).fit(dataset.tensor)
    approx = PTuckerApprox(config).fit(dataset.tensor)

    experiment = ExperimentResult(name="figure9")
    for label, result in (("P-Tucker", exact), ("P-Tucker-Approx", approx)):
        elapsed = 0.0
        for record in result.trace.records:
            elapsed += record.seconds
            experiment.rows.append(
                {
                    "algorithm": label,
                    "iteration": record.iteration,
                    "sec/iter": record.seconds,
                    "elapsed_sec": elapsed,
                    "recon_error": record.reconstruction_error,
                    "core_nnz": record.core_nnz,
                }
            )
    final_gap = (
        approx.trace.errors[-1] / exact.trace.errors[-1]
        if exact.trace.errors[-1] > 0
        else 1.0
    )
    experiment.add_note(
        "P-Tucker-Approx truncates noisy core entries every iteration, so its "
        f"core shrinks and later iterations get cheaper; final error ratio "
        f"approx/exact = {final_gap:.2f} (paper: nearly identical errors)."
    )
    return experiment
