"""Kernel microbenchmark experiment: ``python -m repro.experiments bench-kernels``.

Not one of the paper's figures — this experiment records the repository's own
perf trajectory.  It runs the seed Kronecker kernel against the
contraction-ordered kernel of :mod:`repro.kernels` under every available
execution backend (``numpy``, ``threaded``, ``numba`` where installed) on
the same small default (nnz, rank, order) grid as
``benchmarks/run_benchmarks.py`` — including the nnz=100k cell the perf gate
tracks — and writes ``BENCH_kernels.json`` into the current working
directory, so re-running it from the repo root refreshes the committed
record rather than degrading it to a smoke payload.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from ..kernels.microbench import DEFAULT_GRID, run_microbench, write_payload
from .harness import ExperimentResult

NAME = "bench-kernels"
OUTPUT_FILENAME = "BENCH_kernels.json"


def run(
    grid: Optional[Sequence[Dict[str, int]]] = None,
    repeats: int = 3,
    output: Optional[str] = OUTPUT_FILENAME,
    backends: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Time the kron kernel vs. the contracted-kernel backends per cell."""
    payload = run_microbench(
        grid=DEFAULT_GRID if grid is None else grid,
        repeats=repeats,
        backends=backends,
    )
    result = ExperimentResult(name=NAME)
    result.add_rows(payload["rows"])
    result.add_note(
        "speedup = seed Kronecker kernel time / contraction kernel time "
        "(numpy backend) for one update_factor_mode sweep of mode 0"
    )
    result.add_note(
        "backends timed: "
        + ", ".join(payload["backends"])
        + "; backend_selected = measured-fastest per cell "
        "(the autotuner's choice for that shape class)"
    )
    result.add_note(
        "max |error| vs brute force: "
        f"{payload['max_abs_error_vs_brute_force']:.3e}"
    )
    result.add_note(
        "peak_rss_mb_* / peak_traced_mb_* = peak memory one mode-0 sweep "
        "adds (cold-subprocess RSS growth / tracemalloc): incore includes "
        "the ModeContext's nnz-sized sorted copies, sharded streams "
        "mmap'd shards at the same block size (see docs/BENCHMARKS.md)"
    )
    result.add_note(
        "ingest columns: seconds_parse_text vs seconds_parse_text_loop = "
        "vectorized reader vs the frozen seed per-line parser on the same "
        "counts-precision text file; seconds_build_streaming covers the "
        "whole text->store external-memory build at a fixed chunk size "
        "with peak_*_mb_build_* bounded by the chunk, and "
        "streaming_build_equals_incore asserts the store is bitwise-"
        "identical to ShardStore.build (see docs/BENCHMARKS.md)"
    )
    if output:
        path = write_payload(payload, os.path.abspath(output))
        result.add_note(f"wrote {path}")
    return result
