"""Figure 10: parallel scalability with respect to the number of threads.

The paper reports near-linear speed-up of P-Tucker from 1 to 20 threads and
near-linear growth of its (small) memory footprint, plus a 1.5x gain of
dynamic over naive scheduling on MovieLens (Section IV-D).  Per the
substitution policy in DESIGN.md, this build measures a serial run, records
the per-row workload distribution, and derives the parallel times from the
scheduling simulator, which captures exactly the load-balancing effects the
figure is about.
"""

from __future__ import annotations

from typing import Sequence

from ..core import PTucker, PTuckerConfig
from ..data.synthetic import random_sparse_tensor
from ..parallel.simulator import ParallelSimulator
from .harness import ExperimentResult


def run(
    thread_counts: Sequence[int] = (1, 2, 4, 8, 12, 16, 20),
    dimensionality: int = 3000,
    nnz: int = 30_000,
    rank: int = 5,
    max_iterations: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the speed-up and memory curves of Figure 10."""
    tensor = random_sparse_tensor((dimensionality,) * 3, nnz, seed=seed)
    config = PTuckerConfig(
        ranks=(rank,) * 3, max_iterations=max_iterations, seed=seed, scheduling="dynamic"
    )
    result = PTucker(config).fit(tensor)
    scheduler = result.scheduler  # recorded per-row workloads
    serial_seconds = result.trace.mean_iteration_seconds
    simulator = ParallelSimulator(
        scheduler,
        serial_seconds=serial_seconds,
        sync_overhead_seconds=serial_seconds * 0.002,
        rank=rank,
    )

    experiment = ExperimentResult(name="figure10")
    for threads in thread_counts:
        estimate = simulator.estimate(threads, "dynamic")
        experiment.rows.append(
            {
                "threads": threads,
                "speedup": estimate.speedup,
                "parallel_sec/iter": estimate.parallel_seconds,
                "memory_MB": estimate.memory_bytes / (1024.0 * 1024.0),
            }
        )
    gain = simulator.scheduling_gain(max(thread_counts))
    experiment.add_note(
        f"Dynamic over static scheduling gain at T={max(thread_counts)}: "
        f"{gain:.2f}x (paper reports 1.5x on MovieLens)."
    )
    return experiment
