"""Headline-claim summary: the paper's "1.7-14.1x faster, 1.4-4.8x less error".

The abstract condenses the evaluation into two ranges: P-Tucker's speed-up
over the best competitor per speed experiment, and its error reduction over
the competitors per accuracy experiment.  This module computes the same kind
of summary from the rows produced by the Figure 6/7 and Figure 11
experiments, so the headline numbers of this reproduction can be compared
against the paper's in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .harness import ExperimentResult


def _finite(value: object) -> Optional[float]:
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None
    if math.isnan(number) or math.isinf(number):
        return None
    return number


def _group_rows(
    rows: Iterable[Mapping[str, object]], group_keys: Sequence[str]
) -> Dict[tuple, List[Mapping[str, object]]]:
    groups: Dict[tuple, List[Mapping[str, object]]] = {}
    for row in rows:
        key = tuple(row.get(k) for k in group_keys)
        groups.setdefault(key, []).append(row)
    return groups


def speedup_summary(
    result: ExperimentResult,
    metric: str = "sec/iter",
    group_keys: Sequence[str] = ("sweep", "point"),
    target: str = "P-Tucker",
) -> Dict[str, float]:
    """Min/max speed-up of ``target`` over the best competitor per group.

    A group is one sweep point (Figure 6) or one dataset (Figure 7); within
    the group the competitor with the smallest metric value is the reference,
    and the ratio ``competitor / target`` is the speed-up.  Groups where the
    target did not finish are skipped; competitors that went O.O.M. are
    excluded from the comparison (as the paper does with its empty bars).
    """
    ratios: List[float] = []
    for _, rows in _group_rows(result.rows, group_keys).items():
        target_rows = [r for r in rows if r.get("algorithm") == target and not r.get("oom")]
        other_rows = [r for r in rows if r.get("algorithm") != target and not r.get("oom")]
        if not target_rows or not other_rows:
            continue
        target_value = _finite(target_rows[0].get(metric))
        other_values = [v for v in (_finite(r.get(metric)) for r in other_rows) if v is not None]
        if target_value is None or target_value <= 0 or not other_values:
            continue
        ratios.append(min(other_values) / target_value)
    if not ratios:
        return {"min": 1.0, "max": 1.0, "count": 0}
    return {"min": min(ratios), "max": max(ratios), "count": len(ratios)}


def accuracy_summary(
    result: ExperimentResult,
    metric: str = "test_rmse",
    group_keys: Sequence[str] = ("dataset",),
    target: str = "P-Tucker",
) -> Dict[str, float]:
    """Min/max error reduction of ``target`` versus the best competitor per group.

    The ratio reported is ``best competitor error / target error`` — values
    above 1 mean the target is more accurate, matching the paper's
    "1.4-4.8x less error" phrasing.
    """
    return speedup_summary(result, metric=metric, group_keys=group_keys, target=target)


def headline(
    speed_results: Sequence[ExperimentResult],
    accuracy_results: Sequence[ExperimentResult],
) -> Dict[str, Dict[str, float]]:
    """Combine several experiments into the abstract-style headline ranges."""
    speed_ratios: List[float] = []
    for result in speed_results:
        keys = ("sweep", "point") if any("sweep" in r for r in result.rows) else ("dataset",)
        summary = speedup_summary(result, group_keys=keys)
        if summary["count"]:
            speed_ratios.extend([summary["min"], summary["max"]])
    error_ratios: List[float] = []
    for result in accuracy_results:
        summary = accuracy_summary(result)
        if summary["count"]:
            error_ratios.extend([summary["min"], summary["max"]])
    return {
        "speedup": {
            "min": min(speed_ratios) if speed_ratios else 1.0,
            "max": max(speed_ratios) if speed_ratios else 1.0,
        },
        "error_reduction": {
            "min": min(error_ratios) if error_ratios else 1.0,
            "max": max(error_ratios) if error_ratios else 1.0,
        },
    }
