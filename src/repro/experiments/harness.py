"""Common experiment harness: build solvers, run them, collect comparable rows.

Every figure/table module uses :func:`run_algorithms` to execute a set of
methods on one tensor under a shared configuration and get back one row per
method with the quantities the paper reports: mean seconds per iteration,
reconstruction error, test RMSE, peak intermediate memory and the O.O.M.
flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import CpAls, SHot, TuckerAls, TuckerCsf, TuckerWopt
from ..core import PTucker, PTuckerApprox, PTuckerCache, PTuckerConfig, TuckerResult
from ..exceptions import OutOfMemoryError, ShapeError
from ..tensor.coo import SparseTensor

#: registry of every algorithm the experiments can run, keyed by display name
ALGORITHM_REGISTRY: Dict[str, Callable[[PTuckerConfig], object]] = {
    "P-Tucker": PTucker,
    "P-Tucker-Cache": PTuckerCache,
    "P-Tucker-Approx": PTuckerApprox,
    "Tucker-ALS": TuckerAls,
    "Tucker-wOpt": TuckerWopt,
    "Tucker-CSF": TuckerCsf,
    "S-HOT": SHot,
    "CP-ALS": CpAls,
}

#: the competitor set of the paper's evaluation (Section IV-A2)
PAPER_COMPETITORS: Tuple[str, ...] = (
    "P-Tucker",
    "Tucker-wOpt",
    "Tucker-CSF",
    "S-HOT",
)


@dataclass
class RunOutcome:
    """The outcome of running one algorithm on one tensor."""

    algorithm: str
    result: Optional[TuckerResult] = None
    out_of_memory: bool = False
    error_message: str = ""
    seconds_per_iteration: float = float("nan")
    reconstruction_error: float = float("nan")
    test_rmse: float = float("nan")
    peak_memory_mb: float = float("nan")

    def as_row(self) -> Dict[str, object]:
        """Row dictionary for the report tables."""
        return {
            "algorithm": self.algorithm,
            "sec/iter": self.seconds_per_iteration,
            "recon_error": self.reconstruction_error,
            "test_rmse": self.test_rmse,
            "peak_mem_MB": self.peak_memory_mb,
            "oom": self.out_of_memory,
        }


def make_solver(name: str, config: PTuckerConfig):
    """Instantiate an algorithm from the registry by display name."""
    if name not in ALGORITHM_REGISTRY:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHM_REGISTRY)}"
        )
    return ALGORITHM_REGISTRY[name](config)


def run_algorithm(
    name: str,
    tensor: SparseTensor,
    config: PTuckerConfig,
    test_tensor: Optional[SparseTensor] = None,
) -> RunOutcome:
    """Run one algorithm, translating O.O.M. into a flagged outcome row."""
    outcome = RunOutcome(algorithm=name)
    solver = make_solver(name, config)
    try:
        result = solver.fit(tensor)
    except OutOfMemoryError as exc:
        outcome.out_of_memory = True
        outcome.error_message = str(exc)
        return outcome
    except (np.linalg.LinAlgError, ShapeError) as exc:
        outcome.error_message = str(exc)
        return outcome
    outcome.result = result
    outcome.seconds_per_iteration = result.trace.mean_iteration_seconds
    outcome.reconstruction_error = (
        result.trace.errors[-1] if result.trace.records else float("nan")
    )
    if test_tensor is not None:
        outcome.test_rmse = result.test_rmse(test_tensor)
    if result.memory is not None:
        outcome.peak_memory_mb = result.memory.peak_megabytes
    return outcome


def run_algorithms(
    names: Sequence[str],
    tensor: SparseTensor,
    config: PTuckerConfig,
    test_tensor: Optional[SparseTensor] = None,
) -> List[RunOutcome]:
    """Run several algorithms on the same tensor with the same configuration."""
    return [run_algorithm(name, tensor, config, test_tensor) for name in names]


@dataclass
class ExperimentResult:
    """Output of one experiment module: named rows plus free-form notes."""

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_rows(self, rows: Sequence[Dict[str, object]]) -> None:
        self.rows.extend(rows)

    def add_note(self, note: str) -> None:
        self.notes.append(note)
