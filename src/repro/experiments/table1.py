"""Table I: the qualitative scalability matrix.

The paper summarises each method with four check-marks — Scale, Speed,
Memory and Accuracy.  This experiment derives those check-marks from the
quantities this library can measure, so the matrix is regenerated rather
than transcribed:

* **Scale**  — the method finishes the large probe tensor without exceeding
  the intermediate-memory budget.
* **Speed**  — its mean time per iteration is within a factor of the fastest
  method on the probe.
* **Memory** — its peak intermediate data stays within a small multiple of
  P-Tucker's.
* **Accuracy** — its test RMSE on a held-out split is within a factor of the
  best method's.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import PTuckerConfig
from ..data.synthetic import planted_tucker_tensor
from .harness import ExperimentResult, run_algorithms

#: methods compared by Table I
TABLE1_METHODS = ("Tucker-wOpt", "Tucker-CSF", "S-HOT", "P-Tucker")

#: tolerance factors for the derived check-marks
SPEED_FACTOR = 5.0
MEMORY_FACTOR = 50.0
ACCURACY_FACTOR = 1.5


def run(
    dimensionality: int = 40,
    nnz: int = 6000,
    rank: int = 4,
    max_iterations: int = 3,
    memory_budget_mb: float = 64.0,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Table I scalability matrix on a probe tensor."""
    planted = planted_tucker_tensor(
        shape=(dimensionality,) * 3,
        ranks=(rank,) * 3,
        nnz=nnz,
        noise_level=0.05,
        seed=seed,
    )
    train, test = planted.tensor.split(0.9, rng=None)
    config = PTuckerConfig(
        ranks=(rank,) * 3,
        max_iterations=max_iterations,
        seed=seed,
        memory_budget_bytes=int(memory_budget_mb * 1024 * 1024),
    )
    outcomes = run_algorithms(TABLE1_METHODS, train, config, test)

    finished = [o for o in outcomes if not o.out_of_memory and o.result is not None]
    best_speed = min((o.seconds_per_iteration for o in finished), default=float("nan"))
    best_memory = min((o.peak_memory_mb for o in finished), default=float("nan"))
    best_rmse = min((o.test_rmse for o in finished), default=float("nan"))

    experiment = ExperimentResult(name="table1")
    for outcome in outcomes:
        if outcome.out_of_memory or outcome.result is None:
            row: Dict[str, object] = {
                "method": outcome.algorithm,
                "scale": False,
                "speed": False,
                "memory": False,
                "accuracy": False,
            }
        else:
            row = {
                "method": outcome.algorithm,
                "scale": True,
                "speed": outcome.seconds_per_iteration <= SPEED_FACTOR * best_speed,
                "memory": outcome.peak_memory_mb <= MEMORY_FACTOR * max(best_memory, 1e-9),
                "accuracy": outcome.test_rmse <= ACCURACY_FACTOR * best_rmse,
            }
        experiment.rows.append(row)
    experiment.add_note(
        "Check-marks are derived from measured behaviour on a probe tensor; "
        "the paper's Table I claims P-Tucker is the only method with all four."
    )
    return experiment
