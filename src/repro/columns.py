"""Narrow-dtype columnar index blocks shared by every layer.

Every hot path of this reproduction is memory-bandwidth-bound over
nnz-scaled index streams, yet an ``(nnz, N)`` int64 index matrix spends
8 bytes per index even when a mode's dimension fits in one.  This module is
the single home of the fix:

* :func:`index_dtype_for_dim` / :func:`index_dtypes_for_shape` — the
  narrowest unsigned dtype a mode dimension admits (``uint8`` / ``uint16``
  / ``uint32``, with an ``int64`` fallback for dimensions beyond 2**32),
  or ``int64`` everywhere under the ``"wide"`` policy.
* :class:`IndexColumns` — a columnar ``(nnz, N)`` integer block: one 1-D
  array per mode, each in its own dtype.  It supports exactly the access
  patterns the kernels use on a 2-D index array (``block[:, k]``,
  ``block[lo:hi]``, ``block.shape``), returning **views of the narrow
  columns — never an upcast copy** — so the contraction kernels, the
  segment reductions and every registered backend consume 1-4 byte
  indices end to end.  NumPy's fancy indexing accepts unsigned index
  arrays directly, and integer arithmetic against an int64 accumulator
  promotes value-exactly, so all downstream float64 math is bitwise
  identical to the wide path.

``np.asarray(block)`` (via ``__array__``) materialises the conventional
int64 matrix for cold paths that genuinely need one (building a
:class:`~repro.tensor.coo.SparseTensor`, hashing entry bytes); hot paths
must use :func:`as_index_block`, which passes an :class:`IndexColumns`
through untouched.

This module sits at the bottom of the import graph (NumPy and
:mod:`repro.exceptions` only) because both the tensor layer and the
kernel layer — which must not import each other — build on it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .exceptions import ShapeError

#: Valid values of the ``index_dtype`` policy knob.
INDEX_DTYPE_POLICIES = ("auto", "wide")

#: Narrow candidates, in width order.  ``int64`` (not ``uint64``) is the
#: fallback so the widest columns stay directly interoperable with every
#: consumer that predates this module.
_NARROW_CANDIDATES = (np.uint8, np.uint16, np.uint32)


def check_index_dtype_policy(policy: str) -> str:
    """Validate an ``index_dtype`` knob value and return it."""
    if policy not in INDEX_DTYPE_POLICIES:
        raise ShapeError(
            f"unknown index_dtype {policy!r}; choose one of "
            f"{INDEX_DTYPE_POLICIES}"
        )
    return policy


def index_dtype_for_dim(dim: int, policy: str = "auto") -> np.dtype:
    """The narrowest unsigned dtype that can hold indices ``0 .. dim-1``.

    Boundaries are inclusive on the dimension: ``dim=256`` still fits
    ``uint8`` (largest index 255), ``dim=257`` needs ``uint16``;
    ``dim=2**32`` fits ``uint32``, anything larger falls back to
    ``int64``.  Under the ``"wide"`` policy every dimension maps to
    ``int64``.
    """
    check_index_dtype_policy(policy)
    if policy == "wide":
        return np.dtype(np.int64)
    largest = int(dim) - 1
    for candidate in _NARROW_CANDIDATES:
        if largest <= int(np.iinfo(candidate).max):
            return np.dtype(candidate)
    return np.dtype(np.int64)


def index_dtype_for_max(largest_index: int) -> np.dtype:
    """The narrowest dtype admitting ``largest_index`` (spill-run helper)."""
    return index_dtype_for_dim(int(largest_index) + 1, "auto")


def index_dtypes_for_shape(
    shape: Sequence[int], policy: str = "auto"
) -> Tuple[np.dtype, ...]:
    """Per-mode index dtypes of a tensor shape under a policy."""
    return tuple(index_dtype_for_dim(int(dim), policy) for dim in shape)


class IndexColumns:
    """A columnar ``(nnz, N)`` integer index block: one 1-D array per mode.

    Supports the 2-D access patterns the kernels use — ``block[:, k]``
    (the mode-``k`` column, a zero-copy view), ``block[lo:hi]`` (a
    row-range of column views), ``block[rows]`` with an integer array
    (a per-column gather), ``block.shape`` / ``block.ndim`` / ``len`` —
    while each column keeps its own narrow dtype.  ``np.asarray(block)``
    yields the conventional int64 matrix for cold interop paths.
    """

    __slots__ = ("columns",)

    ndim = 2

    def __init__(self, columns: Sequence[np.ndarray]) -> None:
        columns = tuple(np.asarray(column) for column in columns)
        if not columns:
            raise ShapeError("IndexColumns needs at least one column")
        length = columns[0].shape[0]
        for column in columns:
            if column.ndim != 1:
                raise ShapeError("index columns must be 1-D arrays")
            if column.shape[0] != length:
                raise ShapeError("index columns must have equal lengths")
            if column.dtype.kind not in "iu":
                raise ShapeError(
                    f"index columns must be integer arrays, got {column.dtype}"
                )
        self.columns = columns

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        indices: np.ndarray,
        shape: Optional[Sequence[int]] = None,
        policy: str = "auto",
    ) -> "IndexColumns":
        """Narrow a 2-D index matrix into per-mode columns.

        Column ``k`` is cast to :func:`index_dtype_for_dim` of
        ``shape[k]`` (or of the column's own maximum when ``shape`` is
        omitted).  This is the one place a copy happens; every later
        access is a view.
        """
        indices = np.asarray(indices)
        if indices.ndim != 2:
            raise ShapeError("expected an (nnz, order) index matrix")
        order = indices.shape[1]
        if shape is not None and len(shape) != order:
            raise ShapeError(
                f"shape has {len(shape)} modes, index matrix has {order}"
            )
        columns = []
        for k in range(order):
            column = indices[:, k]
            if shape is not None:
                dtype = index_dtype_for_dim(int(shape[k]), policy)
            elif column.shape[0]:
                dtype = index_dtype_for_max(int(column.max()))
            else:
                dtype = np.dtype(np.int64)
            columns.append(np.ascontiguousarray(column, dtype=dtype))
        return cls(columns)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_entries, order)`` — matches the 2-D matrix it replaces."""
        return (self.columns[0].shape[0], len(self.columns))

    @property
    def dtypes(self) -> Tuple[np.dtype, ...]:
        """Per-column dtypes."""
        return tuple(column.dtype for column in self.columns)

    @property
    def nbytes(self) -> int:
        """Total bytes across all columns."""
        return sum(int(column.nbytes) for column in self.columns)

    def __len__(self) -> int:
        return self.columns[0].shape[0]

    def column(self, k: int) -> np.ndarray:
        """The mode-``k`` index column (a view, in its narrow dtype)."""
        return self.columns[k]

    def __getitem__(self, key):
        if isinstance(key, tuple):
            if len(key) != 2:
                raise ShapeError("IndexColumns supports 2-D indexing only")
            rows, col = key
            column = self.columns[int(col)]
            if isinstance(rows, slice) and rows == slice(None):
                return column
            return column[rows]
        if isinstance(key, (int, np.integer)):
            return np.asarray(
                [int(column[key]) for column in self.columns], dtype=np.int64
            )
        # Row range (slice -> views) or row gather (array -> narrow copies).
        return IndexColumns([column[key] for column in self.columns])

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        """Materialise the conventional 2-D matrix (cold interop only)."""
        return self.to_matrix(np.int64 if dtype is None else dtype)

    def to_matrix(self, dtype=np.int64) -> np.ndarray:
        """The ``(nnz, order)`` matrix with all columns widened to ``dtype``."""
        n, order = self.shape
        out = np.empty((n, order), dtype=dtype)
        for k, column in enumerate(self.columns):
            out[:, k] = column
        return out

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        dtypes = ",".join(str(d) for d in self.dtypes)
        return f"IndexColumns(shape={self.shape}, dtypes=[{dtypes}])"


IndexBlock = Union[np.ndarray, IndexColumns]


def as_index_block(indices: IndexBlock) -> IndexBlock:
    """Normalise a kernel input block without widening narrow columns.

    An :class:`IndexColumns` passes through untouched (``np.asarray``
    would silently materialise the int64 matrix and defeat the narrow
    path); anything else becomes an ndarray.
    """
    if isinstance(indices, IndexColumns):
        return indices
    return np.asarray(indices)
