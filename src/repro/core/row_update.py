"""The row-wise update kernel of P-Tucker (Eqs. 9-12, Algorithm 3 lines 5-15).

For a mode ``n`` and every observed entry α = (i_1, ..., i_N), the kernel
computes the length-J_n vector

    δ_α[j] = Σ_{β ∈ G, j_n = j} G_β · Π_{k ≠ n} a^(k)_{i_k j_k}

and then, for every row index ``i_n``, the normal-equation pieces

    B_{i_n} = Σ_{α ∈ Ω^{(n)}_{i_n}} δ_α δ_αᵀ        (Eq. 10)
    c_{i_n} = Σ_{α ∈ Ω^{(n)}_{i_n}} X_α δ_α          (Eq. 11)

and the new row  a^{(n)}_{i_n,:} = c_{i_n} (B_{i_n} + λ I)^{-1}   (Eq. 9).

The paper's C implementation walks the entries of Ω row by row inside an
OpenMP loop; here the same computation is expressed with NumPy batch
operations routed through :mod:`repro.kernels`: δ for all entries of a mode
comes from the progressive core contraction of
:func:`~repro.kernels.contraction.make_delta_contractor`, the per-row
reductions are the segment-sorted bucketed-GEMM normal equations of
:func:`~repro.kernels.segments.normal_equations_sorted` (equal-length row
segments reduced as one batched ``matmul`` each, never an ``(m, J, J)``
outer-product temporary), and the per-row solves are one batched
``numpy.linalg.solve``.  The execution strategy of those primitives is
pluggable through the ``backend=`` knob (:mod:`repro.kernels.backends`).
The result is numerically identical to the paper's update (tests compare it
against a brute-force per-row least-squares).

Entries can also be streamed from disk instead of sliced from RAM: the
``source=`` knob accepts any *entry source* — an object exposing ``nnz``,
``mode_segmentation(mode)`` and ``read_mode_block(mode, start, stop)``,
such as :class:`~repro.shards.store.ShardStore` — and the block loop then
reads each mode-sorted chunk through it.  Because the blocks carry the same
data at the same boundaries, the streamed update is bitwise-equal to the
in-core one.

The seed kernel — a running Kronecker product against the unfolded core plus
``np.add.at`` scatter accumulation — is kept available as
``update_factor_mode(..., kernel="kron")`` so the microbenchmarks can record
the speedup of the contraction path against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..columns import (
    IndexColumns,
    check_index_dtype_policy,
    index_dtypes_for_shape,
)
from ..kernels import (  # noqa: F401 - re-exported for downstream callers
    make_delta_contractor,
    normal_equations_sorted,
    resolve_backend,
    solve_rows,
)
from ..kernels.backends import BackendSpec
from ..metrics.memory import BYTES_PER_FLOAT, MemoryTracker
from ..tensor.coo import SparseTensor


@dataclass
class ModeContext:
    """Entry ordering and row segmentation of one mode, reused across iterations.

    Attributes
    ----------
    mode:
        The mode index n.
    perm:
        Permutation that sorts observed entries by their mode-n index.
    sorted_indices / sorted_values:
        The tensor's entries in that order.  ``sorted_indices`` is either
        the conventional ``(nnz, N)`` int64 matrix (``index_dtype="wide"``)
        or a narrow columnar :class:`~repro.columns.IndexColumns` block
        (``index_dtype="auto"``); both support the 2-D access patterns the
        kernels use and yield bitwise-identical sweeps.
    row_ids:
        The distinct mode-n indices that actually have observed entries
        (rows with an empty Ω^{(n)}_{i_n} keep their current factor values,
        exactly like the paper's implementation which never visits them).
    row_starts:
        Start offset of each row's segment inside the sorted entry arrays.
    row_counts:
        |Ω^{(n)}_{i_n}| per listed row.
    """

    mode: int
    perm: np.ndarray
    sorted_indices: Union[np.ndarray, IndexColumns]
    sorted_values: np.ndarray
    row_ids: np.ndarray
    row_starts: np.ndarray
    row_counts: np.ndarray


def build_mode_context(
    tensor: SparseTensor, mode: int, index_dtype: str = "wide"
) -> ModeContext:
    """Precompute the per-mode entry ordering and row segments.

    ``index_dtype="auto"`` keeps the sorted indices as narrow per-mode
    columns (:class:`~repro.columns.IndexColumns`) instead of an int64
    matrix — 3-8x fewer index bytes resident per mode at typical
    dimensions, with every downstream kernel consuming the columns
    directly.  The float64 entries and the update results are bitwise
    identical either way.
    """
    check_index_dtype_policy(index_dtype)
    perm = tensor.sort_by_mode(mode)
    if index_dtype == "auto":
        sorted_indices = IndexColumns(
            [
                np.ascontiguousarray(tensor.indices[perm, k], dtype=dtype)
                for k, dtype in enumerate(
                    index_dtypes_for_shape(tensor.shape)
                )
            ]
        )
        mode_column = sorted_indices.column(mode)
    else:
        sorted_indices = tensor.indices[perm]
        mode_column = sorted_indices[:, mode]
    sorted_values = tensor.values[perm]
    row_ids, row_starts, row_counts = np.unique(
        mode_column, return_index=True, return_counts=True
    )
    return ModeContext(
        mode=mode,
        perm=perm,
        sorted_indices=sorted_indices,
        sorted_values=sorted_values,
        row_ids=row_ids.astype(np.int64),
        row_starts=row_starts.astype(np.int64),
        row_counts=row_counts.astype(np.int64),
    )


def build_all_mode_contexts(
    tensor: SparseTensor, index_dtype: str = "wide"
) -> List[ModeContext]:
    """Contexts for every mode of the tensor."""
    return [
        build_mode_context(tensor, mode, index_dtype=index_dtype)
        for mode in range(tensor.order)
    ]


def core_unfolding(core: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of the core in C order over the other modes.

    Row ``j`` holds the core entries with ``j_mode = j``; columns run over the
    remaining modes with the *last* mode varying fastest, matching the
    ordering produced by :func:`compute_delta_block`'s running Kronecker
    product.
    """
    core = np.asarray(core)
    order = core.ndim
    other = [k for k in range(order) if k != mode]
    return np.transpose(core, [mode] + other).reshape(core.shape[mode], -1)


def compute_delta_block(
    indices_block: np.ndarray,
    factors: Sequence[np.ndarray],
    core_unfolded: np.ndarray,
    mode: int,
) -> np.ndarray:
    """δ vectors (Eq. 12) for a block of observed entries (seed kernel).

    ``indices_block`` has shape ``(m, N)``; the result has shape
    ``(m, J_mode)``.  The running element-wise product over modes ``k ≠ mode``
    builds, per entry, the Kronecker product of the other factor rows; a
    single matrix product against the unfolded core then yields δ.

    This is the legacy Kronecker path: it materialises an
    ``(m, Π_{k≠mode} J_k)`` intermediate.  The solvers now default to
    :func:`repro.kernels.contraction.contract_delta_block`, which computes
    the same values by contracting the core mode by mode; this function is
    retained as the ``kernel="kron"`` baseline for the microbenchmarks and
    regression tests.
    """
    n_entries = indices_block.shape[0]
    order = indices_block.shape[1]
    weights = np.ones((n_entries, 1), dtype=np.float64)
    for k in range(order):
        if k == mode:
            continue
        rows = np.asarray(factors[k])[indices_block[:, k]]
        weights = (weights[:, :, None] * rows[:, None, :]).reshape(n_entries, -1)
    return weights @ core_unfolded.T


def accumulate_normal_equations(
    deltas: np.ndarray,
    values: np.ndarray,
    segment_of_entry: np.ndarray,
    n_segments: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row B (Eq. 10) and c (Eq. 11) from per-entry δ vectors (seed kernel).

    ``segment_of_entry[e]`` maps entry ``e`` to its row's position in the
    mode context's ``row_ids``; the returned arrays are stacked per row:
    ``B`` has shape ``(n_segments, J, J)`` and ``c`` shape ``(n_segments, J)``.

    Legacy path: materialises the ``(m, J, J)`` outer-product array and
    reduces it with ``np.add.at`` scatter-adds.  The solvers now use the
    segment-sorted reductions of :mod:`repro.kernels.segments`; this function
    backs the ``kernel="kron"`` baseline.
    """
    rank = deltas.shape[1]
    outer = deltas[:, :, None] * deltas[:, None, :]
    b_matrices = np.zeros((n_segments, rank, rank), dtype=np.float64)
    np.add.at(b_matrices, segment_of_entry, outer)
    c_vectors = np.zeros((n_segments, rank), dtype=np.float64)
    np.add.at(c_vectors, segment_of_entry, values[:, None] * deltas)
    return b_matrices, c_vectors


def update_factor_mode(
    tensor: Optional[SparseTensor],
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    regularization: float,
    context: Optional[ModeContext] = None,
    block_size: int = 200_000,
    memory: Optional[MemoryTracker] = None,
    delta_provider=None,
    kernel: str = "contracted",
    backend: BackendSpec = "numpy",
    source=None,
) -> np.ndarray:
    """Update every row of factor matrix ``A^(mode)`` in place and return it.

    ``delta_provider`` allows the cache variant to substitute its own δ
    computation: it is called as ``delta_provider(entry_positions, mode)``
    where ``entry_positions`` are positions into the tensor's original entry
    ordering, and must return the ``(m, J_mode)`` δ block.  When omitted the
    deltas are computed from the core and factor matrices directly
    (the default P-Tucker path).

    ``kernel`` selects the inner-loop implementation: ``"contracted"``
    (default) uses the progressive core contraction and segment-sorted
    reductions of :mod:`repro.kernels`; ``"kron"`` uses the seed Kronecker +
    scatter-add kernel, kept for benchmarking and regression comparison.

    ``backend`` selects the execution strategy of the contracted kernel: a
    registered backend name (``"numpy"``, ``"threaded"``, ``"numba"`` where
    installed), ``"auto"`` for per-block autotuned dispatch, or a
    :class:`~repro.kernels.backends.KernelBackend` instance.  All backends
    compute the same values up to floating-point associativity; the legacy
    ``kernel="kron"`` path ignores the knob.  With a ``delta_provider`` the
    backend still runs the reduction and solve, but δ comes from the
    provider.

    ``source`` streams the mode-sorted entries from disk instead of slicing
    them from RAM: any object with ``nnz``, ``mode_segmentation(mode)`` and
    ``read_mode_block(mode, start, stop)`` (a
    :class:`~repro.shards.store.ShardStore`) works, and ``tensor`` /
    ``context`` may then be ``None``.  Blocks may be plain ``(m, N)``
    index matrices or narrow columnar
    :class:`~repro.columns.IndexColumns` (what a format-v2 store
    returns); every backend consumes both without widening.  The block
    boundaries and the data in each block are identical to the in-core
    path, so the streamed update is bitwise-equal to it.  A ``source`` cannot be combined with
    ``delta_provider`` or ``kernel="kron"`` (both index into the tensor's
    in-RAM entry ordering).
    """
    if kernel not in ("contracted", "kron"):
        raise ValueError(f"unknown kernel {kernel!r}; use 'contracted' or 'kron'")
    if source is not None and (delta_provider is not None or kernel == "kron"):
        raise ValueError(
            "a streamed entry source cannot be combined with delta_provider "
            "or the legacy kernel='kron' path"
        )
    if source is None and tensor is None and context is None:
        raise ValueError("provide a tensor, a prebuilt context, or a source")
    if source is not None:
        row_ids, row_starts, row_counts = source.mode_segmentation(mode)
        n_entries = int(source.nnz)
        ctx = None
    else:
        ctx = context if context is not None else build_mode_context(tensor, mode)
        row_ids, row_starts = ctx.row_ids, ctx.row_starts
        row_counts = ctx.row_counts
        n_entries = ctx.sorted_indices.shape[0]
    kernel_backend = resolve_backend(backend)
    factor = factors[mode]
    rank = factor.shape[1]
    use_legacy = kernel == "kron"
    core_unfolded = core_unfolding(core, mode) if use_legacy else None

    n_listed_rows = row_ids.shape[0]
    if n_listed_rows == 0:
        return factor

    if use_legacy:
        # Map every sorted entry to the position of its row in ctx.row_ids
        # (only the scatter-add kernel consumes this nnz-sized array).
        segment_of_entry = np.repeat(np.arange(n_listed_rows), row_counts)

    b_matrices = np.zeros((n_listed_rows, rank, rank), dtype=np.float64)
    c_vectors = np.zeros((n_listed_rows, rank), dtype=np.float64)

    if memory is not None:
        # Per-thread workspace of the paper: B, its inverse, c and δ (Theorem 4).
        memory.allocate((2 * rank * rank + 2 * rank) * BYTES_PER_FLOAT, "row-update")

    ne_kernel = None
    if delta_provider is None and not use_legacy:
        # Entry-independent kernel state (precontraction tables, thread
        # pools, JIT specialisations) is built once per sweep and shared by
        # every block below.
        ne_kernel = kernel_backend.make_normal_equations_kernel(
            factors, core, mode, n_entries
        )
    for start in range(0, n_entries, block_size):
        stop = min(start + block_size, n_entries)
        block_slice = slice(start, stop)
        if use_legacy:
            # The provider (cache variant) takes precedence over the seed
            # δ kernel here too, matching the contracted branch below.
            if delta_provider is not None:
                deltas = delta_provider(ctx.perm[block_slice], mode)
            else:
                deltas = compute_delta_block(
                    ctx.sorted_indices[block_slice], factors, core_unfolded, mode
                )
            partial_b, partial_c = accumulate_normal_equations(
                deltas,
                ctx.sorted_values[block_slice],
                segment_of_entry[block_slice],
                n_listed_rows,
            )
            b_matrices += partial_b
            c_vectors += partial_c
        else:
            # Entries are row-sorted, so each row is one contiguous run inside
            # the block; a run can only split across blocks, in which case its
            # partial sums land on the same destination row twice.  The rows
            # overlapping this block and their local run boundaries come
            # straight from the mode's row segmentation.
            first = np.searchsorted(row_starts, start, side="right") - 1
            last = np.searchsorted(row_starts, stop, side="left")
            local_rows = np.arange(first, last)
            local_starts = np.maximum(row_starts[first:last] - start, 0)
            if delta_provider is not None:
                deltas = delta_provider(ctx.perm[block_slice], mode)
                partial_b, partial_c = kernel_backend.normal_equations_sorted(
                    deltas, ctx.sorted_values[block_slice], local_starts
                )
            else:
                if source is not None:
                    indices_block, values_block = source.read_mode_block(
                        mode, start, stop
                    )
                else:
                    indices_block = ctx.sorted_indices[block_slice]
                    values_block = ctx.sorted_values[block_slice]
                partial_b, partial_c = ne_kernel(
                    indices_block, values_block, local_starts
                )
            b_matrices[local_rows] += partial_b
            c_vectors[local_rows] += partial_c

    new_rows = kernel_backend.solve_rows(b_matrices, c_vectors, regularization)
    factor[row_ids] = new_rows

    if memory is not None:
        memory.release((2 * rank * rank + 2 * rank) * BYTES_PER_FLOAT, "row-update")
    return factor


def brute_force_row_update(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    mode: int,
    row: int,
    regularization: float,
) -> np.ndarray:
    """Reference implementation of Eq. (9) for a single row (tests only).

    Walks the observed entries of Ω^{(mode)}_{row} one by one, builds δ, B and
    c exactly as written in the paper, and solves the J×J system.  Slow but
    transparently faithful to Algorithm 3; the vectorised kernel is checked
    against it.
    """
    rank = np.asarray(core).shape[mode]
    b_matrix = np.zeros((rank, rank))
    c_vector = np.zeros(rank)
    core_arr = np.asarray(core)
    for entry_idx in range(tensor.nnz):
        index = tensor.indices[entry_idx]
        if index[mode] != row:
            continue
        delta = np.zeros(rank)
        for beta in np.ndindex(*core_arr.shape):
            weight = core_arr[beta]
            for k in range(tensor.order):
                if k == mode:
                    continue
                weight *= factors[k][index[k], beta[k]]
            delta[beta[mode]] += weight
        b_matrix += np.outer(delta, delta)
        c_vector += tensor.values[entry_idx] * delta
    system = b_matrix + regularization * np.eye(rank)
    return np.linalg.solve(system, c_vector)
