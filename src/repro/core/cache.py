"""P-Tucker-Cache: the time-optimised variant with the Pres cache table.

Algorithm 3 (lines 1-4 and 16-19) of the paper: before any factor update, the
solver precomputes, for every pair of an observed entry α and a core entry β,
the full product ``Pres[α][β] = G_β · Π_{k=1..N} a^(k)_{i_k j_k}``.  While
updating mode n, the δ contribution of a pair (α, β) is then obtained as
``Pres[α][β] / a^(n)_{i_n j_n}`` — O(1) instead of O(N) multiplications.
After a factor matrix changes, the affected cache cells are rescaled by the
ratio of new to old row entries.

The trade-off is memory: the table is |Ω| x |G| (Theorem 6), which this
implementation accounts for through the shared
:class:`~repro.metrics.memory.MemoryTracker` so the Figure 8 memory
comparison can be reproduced.  When a factor entry is exactly zero the
division fallback of the paper applies: the δ contribution is recomputed
directly from the core and factors for the affected entries.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..kernels import contract_delta_block
from ..metrics.memory import BYTES_PER_FLOAT, MemoryTracker
from ..tensor.coo import SparseTensor
from ..tensor.operations import factor_rows_product
from .config import PTuckerConfig
from .ptucker import PTucker


class PTuckerCache(PTucker):
    """P-Tucker with the Pres memoization table (Algorithm 3, cache branch)."""

    name = "P-Tucker-Cache"

    def __init__(self, config: Optional[PTuckerConfig] = None) -> None:
        super().__init__(config)
        self._pres: Optional[np.ndarray] = None
        self._core_flat: Optional[np.ndarray] = None
        self._zero_tolerance = 1e-12

    # ------------------------------------------------------------------
    def _prepare(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        core: np.ndarray,
        memory: Optional[MemoryTracker],
    ) -> None:
        """Precompute Pres for every (observed entry, core entry) pair.

        The table is filled block by block (reusing ``config.block_size``) so
        the only full-size allocation is the |Ω| × |G| table itself — the
        transient Kronecker weight blocks stay ``block_size`` rows tall, and
        the tracker's accounting (charged up front, before the fill) matches
        the true peak.
        """
        core_flat = np.asarray(core).reshape(-1)
        n_entries = tensor.nnz
        width = core_flat.shape[0]
        if memory is not None:
            memory.allocate(n_entries * width * BYTES_PER_FLOAT, "cache-table")
        pres = np.empty((n_entries, width), dtype=np.float64)
        block = self.config.block_size
        for start in range(0, n_entries, block):
            stop = min(start + block, n_entries)
            # A slice keeps the index gather inside factor_rows_product a view.
            weights = factor_rows_product(
                tensor, factors, skip=-1, entry_rows=slice(start, stop)
            )
            np.multiply(weights, core_flat[None, :], out=pres[start:stop])
        self._pres = pres
        self._core_flat = core_flat.copy()

    # ------------------------------------------------------------------
    def _delta_provider(self, tensor: SparseTensor, factors, core, mode: int):
        """δ from the cache: divide Pres by the mode-n factor entry, then reduce.

        ``Pres[α][β] / a^(n)_{i_n j_n}`` recovers ``G_β Π_{k≠n} a^(k)``; the
        core entries β are then reduced over their j_n groups to produce the
        length-J_n vector δ.  Entries whose divisor is (numerically) zero are
        recomputed with the direct product, matching the paper's note on
        lines 12 and 19.
        """
        pres = self._pres
        if pres is None:
            return None
        core_arr = np.asarray(core)
        rank = core_arr.shape[mode]
        # Column grouping of the flattened (C-order) core by its mode-n index.
        jn_of_column = np.indices(core_arr.shape)[mode].reshape(-1)
        group_matrix = np.zeros((core_arr.size, rank), dtype=np.float64)
        group_matrix[np.arange(core_arr.size), jn_of_column] = 1.0

        def provider(entry_positions: np.ndarray, mode_inner: int) -> np.ndarray:
            rows = tensor.indices[entry_positions]
            divisors = np.asarray(factors[mode_inner])[rows[:, mode_inner]]
            # Per (entry, core cell) divisor: the factor entry a^(n)_{i_n j_n}.
            divisor_cells = divisors[:, jn_of_column]
            safe = np.abs(divisor_cells) > self._zero_tolerance
            contributions = np.zeros((rows.shape[0], core_arr.size), dtype=np.float64)
            np.divide(
                pres[entry_positions],
                divisor_cells,
                out=contributions,
                where=safe,
            )
            deltas = contributions @ group_matrix
            # Fallback: entries touching a zero factor value get the direct O(N) path.
            needs_fallback = np.nonzero(~safe.all(axis=1))[0]
            if needs_fallback.size:
                deltas[needs_fallback] = contract_delta_block(
                    rows[needs_fallback], factors, core_arr, mode_inner
                )
            return deltas

        return provider

    # ------------------------------------------------------------------
    def _after_mode_update(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        core: np.ndarray,
        mode: int,
        previous_factor: np.ndarray,
    ) -> None:
        """Rescale Pres by new/old factor entries (Algorithm 3 lines 16-19)."""
        if self._pres is None:
            return
        core_arr = np.asarray(core)
        jn_of_column = np.indices(core_arr.shape)[mode].reshape(-1)
        mode_rows = tensor.indices[:, mode]
        old_cells = previous_factor[mode_rows][:, jn_of_column]
        new_cells = np.asarray(factors[mode])[mode_rows][:, jn_of_column]
        safe = np.abs(old_cells) > self._zero_tolerance
        ratio = np.ones_like(old_cells)
        np.divide(new_cells, old_cells, out=ratio, where=safe)
        self._pres *= ratio
        # Cells whose old value was zero cannot be rescaled; rebuild them exactly.
        stale_entries = np.nonzero(~safe.all(axis=1))[0]
        if stale_entries.size:
            weights = factor_rows_product(
                tensor, factors, skip=-1, entry_rows=stale_entries
            )
            self._pres[stale_entries] = weights * core_arr.reshape(-1)[None, :]

    # ------------------------------------------------------------------
    def _after_iteration(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        core: np.ndarray,
        iteration: int,
    ) -> np.ndarray:
        return core
