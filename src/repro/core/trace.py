"""Convergence trace of an ALS run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class IterationRecord:
    """Statistics of one ALS iteration."""

    iteration: int
    reconstruction_error: float
    loss: float
    seconds: float
    core_nnz: Optional[int] = None


@dataclass
class ConvergenceTrace:
    """Ordered per-iteration records plus the convergence verdict."""

    records: List[IterationRecord] = field(default_factory=list)
    converged: bool = False
    stop_reason: str = ""

    def add(self, record: IterationRecord) -> None:
        self.records.append(record)

    @property
    def n_iterations(self) -> int:
        return len(self.records)

    @property
    def errors(self) -> List[float]:
        """Reconstruction error per iteration (Eq. 5)."""
        return [r.reconstruction_error for r in self.records]

    @property
    def losses(self) -> List[float]:
        """Regularised loss per iteration (Eq. 6)."""
        return [r.loss for r in self.records]

    @property
    def iteration_seconds(self) -> List[float]:
        return [r.seconds for r in self.records]

    @property
    def mean_iteration_seconds(self) -> float:
        if not self.records:
            return 0.0
        return sum(self.iteration_seconds) / len(self.records)

    def relative_change(self) -> float:
        """Relative change of the reconstruction error over the last step."""
        if len(self.records) < 2:
            return float("inf")
        prev = self.records[-2].reconstruction_error
        last = self.records[-1].reconstruction_error
        if prev == 0.0:
            return 0.0
        return abs(prev - last) / prev
