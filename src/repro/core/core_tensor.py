"""Core-tensor utilities: initialisation, the closed-form core update,
QR-based orthogonalisation (Algorithm 2 lines 8-11), and a sparse view of the
core used by P-Tucker-Approx.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..tensor.coo import SparseTensor
from ..tensor.dense import mode_product
from ..tensor.operations import factor_rows_product


def initialize_factors(
    shape: Sequence[int],
    ranks: Sequence[int],
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Random factor matrices with entries in [0, 1) (Algorithm 2 line 1)."""
    if len(shape) != len(ranks):
        raise ShapeError("need one rank per mode")
    return [rng.uniform(0.0, 1.0, size=(dim, rank)) for dim, rank in zip(shape, ranks)]


def initialize_core(ranks: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Random core tensor with entries in [0, 1) (Algorithm 2 line 1)."""
    return rng.uniform(0.0, 1.0, size=tuple(int(r) for r in ranks))


def orthogonalize(
    factors: Sequence[np.ndarray], core: np.ndarray
) -> Tuple[List[np.ndarray], np.ndarray]:
    """QR-orthogonalise every factor and push the R factors into the core.

    Implements Eq. (7) and Eq. (8): ``A^(n) = Q^(n) R^(n)`` with ``Q`` kept as
    the new factor and the core updated as ``G ← G ×_n R^(n)`` so the
    reconstruction — and therefore the reconstruction error — is unchanged.
    """
    new_factors: List[np.ndarray] = []
    new_core = np.asarray(core, dtype=np.float64).copy()
    for mode, factor in enumerate(factors):
        q_matrix, r_matrix = np.linalg.qr(np.asarray(factor, dtype=np.float64))
        new_factors.append(q_matrix)
        new_core = mode_product(new_core, r_matrix, mode)
    return new_factors, new_core


def least_squares_core(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    regularization: float = 1e-9,
) -> np.ndarray:
    """Fit the core tensor to the observed entries with the factors fixed.

    The model value at an observed entry is linear in the core entries with
    per-entry weights ``Π_k a^(k)_{i_k j_k}`` (the rows produced by
    :func:`factor_rows_product` with ``skip=-1``), so the optimal core is a
    ridge-regularised linear least-squares solve.  The paper fits the core
    implicitly through the factor updates; this explicit solve is used when a
    fresh core is needed for fixed factors (e.g. after orthogonalisation of a
    baseline's output or in tests).
    """
    ranks = tuple(int(np.asarray(f).shape[1]) for f in factors)
    design = factor_rows_product(tensor, list(factors), skip=-1)
    gram = design.T @ design + regularization * np.eye(design.shape[1])
    rhs = design.T @ tensor.values
    core_flat = np.linalg.solve(gram, rhs)
    return core_flat.reshape(ranks)


@dataclass
class SparseCore:
    """Sparse representation of the core tensor used by P-Tucker-Approx.

    Only the surviving (index, value) pairs are stored once entries start
    being truncated, so the per-iteration cost of the δ computation scales
    with the number of *remaining* core entries |G| (Theorem 7).
    """

    shape: Tuple[int, ...]
    indices: np.ndarray
    values: np.ndarray

    @classmethod
    def from_dense(cls, core: np.ndarray) -> "SparseCore":
        core = np.asarray(core, dtype=np.float64)
        idx = np.argwhere(core != 0.0)
        return cls(shape=core.shape, indices=idx, values=core[tuple(idx.T)] if idx.size else np.empty(0))

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.indices.size:
            dense[tuple(self.indices.T)] = self.values
        return dense

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def drop(self, positions: np.ndarray) -> "SparseCore":
        """Return a copy without the entries at the given positions."""
        keep = np.ones(self.nnz, dtype=bool)
        keep[np.asarray(positions, dtype=np.int64)] = False
        return SparseCore(self.shape, self.indices[keep], self.values[keep])
