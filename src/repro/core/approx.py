"""P-Tucker-Approx: truncating "noisy" core entries (Algorithm 4).

The variant's intuition (Section III-C): some core entries contribute more to
the reconstruction error than they explain, so removing them each iteration
both shrinks |G| (speeding up later iterations, Theorem 7) and barely hurts —
or even helps — accuracy.  An entry β is scored by its *partial
reconstruction error* R(β) (Eq. 13): the change in the squared-error sum when
β's contribution is removed from the model.  The top-p fraction by R(β) is
zeroed every iteration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.coo import SparseTensor
from ..tensor.operations import factor_rows_product
from .config import PTuckerConfig
from .ptucker import PTucker


def partial_reconstruction_errors(
    tensor: SparseTensor,
    core: np.ndarray,
    factors: Sequence[np.ndarray],
    block_size: int = 100_000,
) -> np.ndarray:
    """R(β) for every core entry (Eq. 13), flattened in C order.

    For each observed entry α let ``w_αβ = Π_k a^(k)_{i_k j_k}`` (the weight of
    core cell β at α), ``ŷ_α = Σ_β G_β w_αβ`` the model value, and
    ``r_α = X_α - ŷ_α`` the residual.  Eq. (13) is the difference between the
    squared error with β and without β:

        R(β) = Σ_α [ (X_α - ŷ_α)² - (X_α - ŷ_α + G_β w_αβ)² ]
             = Σ_α  G_β w_αβ ( -G_β w_αβ - 2 r_α )

    which matches the paper's expanded form with c = G_β w_αβ:
    ``c (-2 X_α + c + 2 (ŷ_α - c)) = c (-c - 2 r_α)``.  A large positive R(β)
    means the model has *more* error with β than without it — removing the
    entry reduces the squared-error sum — which is exactly the "noisy"
    criterion.  The computation is blocked over observed entries so the
    |Ω| x |G| weight matrix never has to exist at once.
    """
    core_flat = np.asarray(core, dtype=np.float64).reshape(-1)
    totals = np.zeros(core_flat.shape[0], dtype=np.float64)
    n_entries = tensor.nnz
    for start in range(0, n_entries, block_size):
        rows = np.arange(start, min(start + block_size, n_entries))
        weights = factor_rows_product(tensor, list(factors), skip=-1, entry_rows=rows)
        predictions = weights @ core_flat
        residual = tensor.values[rows] - predictions
        contribution = weights * core_flat[None, :]
        totals += np.sum(
            contribution * (-contribution - 2.0 * residual[:, None]), axis=0
        )
    return totals


def truncate_noisy_entries(
    tensor: SparseTensor,
    core: np.ndarray,
    factors: Sequence[np.ndarray],
    truncation_rate: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Zero the top-``truncation_rate`` fraction of core entries by R(β).

    Returns the truncated core and the flat positions that were removed.
    Already-zero entries are not counted against the budget, so repeated
    truncation keeps shrinking the set of *remaining* non-zeros, as in
    Algorithm 4 applied once per iteration.
    """
    core = np.asarray(core, dtype=np.float64).copy()
    flat = core.reshape(-1)
    nonzero_positions = np.nonzero(flat != 0.0)[0]
    if nonzero_positions.size == 0:
        return core, np.empty(0, dtype=np.int64)
    n_remove = int(np.floor(truncation_rate * nonzero_positions.size))
    if n_remove == 0:
        return core, np.empty(0, dtype=np.int64)
    scores = partial_reconstruction_errors(tensor, core, factors)
    candidate_scores = scores[nonzero_positions]
    worst = np.argsort(-candidate_scores, kind="stable")[:n_remove]
    removed = nonzero_positions[worst]
    flat[removed] = 0.0
    return core, removed


class PTuckerApprox(PTucker):
    """P-Tucker with per-iteration truncation of noisy core entries."""

    name = "P-Tucker-Approx"

    def __init__(self, config: Optional[PTuckerConfig] = None) -> None:
        super().__init__(config)
        self.removed_per_iteration: List[int] = []

    def _after_iteration(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        core: np.ndarray,
        iteration: int,
    ) -> np.ndarray:
        truncated, removed = truncate_noisy_entries(
            tensor, core, factors, self.config.truncation_rate
        )
        self.removed_per_iteration.append(int(removed.size))
        return truncated
