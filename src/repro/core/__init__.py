"""P-Tucker and its variants: the paper's primary contribution."""

from .approx import PTuckerApprox, partial_reconstruction_errors, truncate_noisy_entries
from .cache import PTuckerCache
from .config import DEFAULT_CONFIG, PTuckerConfig
from .core_tensor import (
    SparseCore,
    initialize_core,
    initialize_factors,
    least_squares_core,
    orthogonalize,
)
from .ptucker import PTucker, fit_ptucker
from .result import TuckerResult
from .sampled import PTuckerSampled
from .row_update import (
    brute_force_row_update,
    build_mode_context,
    compute_delta_block,
    core_unfolding,
    update_factor_mode,
)
from .trace import ConvergenceTrace, IterationRecord

__all__ = [
    "PTucker",
    "PTuckerCache",
    "PTuckerApprox",
    "PTuckerSampled",
    "PTuckerConfig",
    "DEFAULT_CONFIG",
    "TuckerResult",
    "ConvergenceTrace",
    "IterationRecord",
    "fit_ptucker",
    "orthogonalize",
    "initialize_core",
    "initialize_factors",
    "least_squares_core",
    "SparseCore",
    "partial_reconstruction_errors",
    "truncate_noisy_entries",
    "update_factor_mode",
    "build_mode_context",
    "compute_delta_block",
    "core_unfolding",
    "brute_force_row_update",
]
