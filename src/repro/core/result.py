"""Result object returned by every Tucker solver in the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.errors import reconstruction_error, test_rmse
from ..metrics.memory import MemoryTracker
from ..tensor.coo import SparseTensor
from ..tensor.dense import tucker_reconstruct
from ..tensor.operations import sparse_reconstruct
from .trace import ConvergenceTrace


@dataclass
class TuckerResult:
    """Factor matrices, core tensor and run statistics of a Tucker factorization.

    Every solver (P-Tucker, its variants and the baselines) returns this
    type, so experiments and examples can treat them interchangeably.
    """

    core: np.ndarray
    factors: List[np.ndarray]
    trace: ConvergenceTrace = field(default_factory=ConvergenceTrace)
    memory: Optional[MemoryTracker] = None
    algorithm: str = ""

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return len(self.factors)

    @property
    def ranks(self) -> Tuple[int, ...]:
        """Tucker ranks of the factorization."""
        return tuple(int(f.shape[1]) for f in self.factors)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the factorized tensor."""
        return tuple(int(f.shape[0]) for f in self.factors)

    @property
    def core_nnz(self) -> int:
        """Number of non-zero core entries (shrinks under P-Tucker-Approx)."""
        return int(np.count_nonzero(self.core))

    # ------------------------------------------------------------------
    def predict(self, indices: np.ndarray) -> np.ndarray:
        """Predict values at arbitrary multi-indices using Eq. (4)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 1:
            indices = indices[None, :]
        probe = SparseTensor(indices, np.zeros(indices.shape[0]), self.shape)
        return sparse_reconstruct(probe, self.core, self.factors)

    def predict_tensor(self, tensor: SparseTensor) -> np.ndarray:
        """Predict the values at the observed positions of ``tensor``."""
        return sparse_reconstruct(tensor, self.core, self.factors)

    def reconstruction_error(self, tensor: SparseTensor) -> float:
        """Reconstruction error (Eq. 5) of this model on ``tensor``."""
        return reconstruction_error(tensor, self.core, self.factors)

    def test_rmse(self, tensor: SparseTensor) -> float:
        """Test RMSE of this model on a held-out tensor."""
        return test_rmse(tensor, self.core, self.factors)

    def to_dense(self) -> np.ndarray:
        """Dense reconstruction ``G ×_1 A^(1) ... ×_N A^(N)`` (small tensors only)."""
        return tucker_reconstruct(self.core, self.factors)

    # ------------------------------------------------------------------
    def factor(self, mode: int) -> np.ndarray:
        """The factor matrix of one mode."""
        return self.factors[mode]

    def orthogonality_defect(self) -> float:
        """Max deviation of ``A^(n)T A^(n)`` from identity over all modes.

        Zero (up to round-off) after the final QR step of Algorithm 2.
        """
        worst = 0.0
        for f in self.factors:
            gram = f.T @ f
            worst = max(worst, float(np.max(np.abs(gram - np.eye(f.shape[1])))))
        return worst

    def summary(self) -> str:
        """One-line, human-readable description of the run."""
        err = self.trace.errors[-1] if self.trace.records else float("nan")
        mem = self.memory.peak_megabytes if self.memory is not None else 0.0
        return (
            f"{self.algorithm or 'Tucker'}: shape={self.shape} ranks={self.ranks} "
            f"iterations={self.trace.n_iterations} error={err:.4f} "
            f"peak_intermediate={mem:.2f}MB"
        )
