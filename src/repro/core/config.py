"""Configuration objects for the P-Tucker solvers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from ..exceptions import ShapeError


@dataclass(frozen=True)
class PTuckerConfig:
    """Hyper-parameters of a P-Tucker run.

    Attributes
    ----------
    ranks:
        Tucker ranks ``(J_1, ..., J_N)``.  A single integer is broadcast to
        every mode by the solver.
    regularization:
        L2 penalty λ of Eq. (6).  The paper's default is 0.01.
    max_iterations:
        Upper bound on ALS iterations (paper default: 20).
    tolerance:
        Relative-change threshold on the reconstruction error used to declare
        convergence.
    threads:
        Number of worker threads T modelled by the parallel scheduler; the
        paper's default machine uses 20.
    scheduling:
        ``"dynamic"`` (paper default for factor updates) or ``"static"``.
    truncation_rate:
        Fraction p of core entries removed per iteration by
        P-Tucker-Approx (paper default: 0.2).  Ignored by the other variants.
    orthogonalize:
        Whether to run the final QR orthogonalisation + core update
        (Algorithm 2 lines 8-11).
    seed:
        Seed for the random initialisation of factors and core.
    min_iterations:
        Run at least this many iterations before convergence can trigger.
    track_memory:
        Record intermediate-data allocations through a
        :class:`~repro.metrics.memory.MemoryTracker`.
    memory_budget_bytes:
        Optional intermediate-data budget; exceeding it raises
        :class:`~repro.exceptions.OutOfMemoryError` (used to reproduce the
        paper's O.O.M. results).
    backend:
        Kernel execution strategy for the row update: ``"numpy"`` (default),
        ``"threaded"``, ``"numba"`` (falls back to numpy where the JIT stack
        is absent) or ``"auto"`` for per-block autotuned dispatch.  See
        :mod:`repro.kernels.backends`.
    shard_dir:
        When set, :meth:`~repro.core.ptucker.PTucker.fit` runs its sweeps
        out of core: the tensor is converted into (or reused from) a
        mode-sorted shard store at this directory and every entry access
        streams from memory-mapped shards (see :mod:`repro.shards`).
        Every mode update is bitwise-equal to the in-core one; the
        convergence metric is accumulated over the store's canonical
        (mode-0 sorted) entry order, so with a differently-ordered tensor
        and a nonzero ``tolerance`` the stopping decision can in
        principle flip on a last-ulp tie (with ``tolerance=0`` the whole
        fit is bitwise-equal).  Only the base P-Tucker variant supports
        it.
    shard_nnz:
        Shard capacity in entries used when ``shard_dir`` triggers a store
        build (default 1,000,000 — about 32 MB per order-3 shard).
    ingest_chunk_nnz:
        Entries read per chunk when a fit streams its input through the
        external-memory shard build
        (:meth:`~repro.core.ptucker.PTucker.fit_streaming`, CLI
        ``fit --from-text`` / ``ingest``).  Bounds the ingest pass's peak
        memory; the built store is bitwise-identical for every value.
    index_dtype:
        Index storage policy: ``"auto"`` (default) keeps every index
        column — in-RAM mode contexts and on-disk shard stores alike — in
        the narrowest unsigned dtype its mode dimension admits
        (``uint8``/``uint16``/``uint32``, ``int64`` beyond 2**32);
        ``"wide"`` forces the historical int64 everywhere.  Index dtype
        never touches a float64, so both settings produce bitwise-identical
        fits; ``"auto"`` simply moves 3-8x fewer index bytes at typical
        dimensions.  See :mod:`repro.columns`.
    checkpoint_dir:
        When set, the fit writes a versioned crash-safe checkpoint
        (factors + core + convergence trace, each file checksummed, the
        manifest written last) under this directory after eligible
        iterations — see :mod:`repro.resilience.checkpoint`.  The final
        iteration is always checkpointed regardless of
        ``checkpoint_every``.
    checkpoint_every:
        Checkpoint cadence: save every N-th iteration (default 1).
    checkpoint_diff:
        Store checkpoints after the first of a run as low-rank R@C row
        diffs against the previous save (see
        :mod:`repro.updates.lowrank`); loading resolves the chain to
        bitwise-equal full factors, so ``resume`` works unchanged.
    resume:
        Continue from the newest valid checkpoint in ``checkpoint_dir``
        instead of starting fresh.  The resumed trajectory is
        bitwise-identical to an uninterrupted fit; a checkpoint written
        under different data or trajectory-critical hyper-parameters
        raises :class:`~repro.exceptions.DataFormatError` instead of
        silently continuing a different fit.  With an empty checkpoint
        directory the fit simply starts from scratch.
    """

    ranks: Tuple[int, ...] = (10,)
    regularization: float = 0.01
    max_iterations: int = 20
    tolerance: float = 1e-4
    threads: int = 1
    scheduling: str = "dynamic"
    truncation_rate: float = 0.2
    orthogonalize: bool = True
    seed: Optional[int] = 0
    min_iterations: int = 1
    track_memory: bool = True
    memory_budget_bytes: Optional[int] = None
    block_size: int = 200_000
    backend: str = "numpy"
    shard_dir: Optional[str] = None
    shard_nnz: int = 1_000_000
    ingest_chunk_nnz: int = 500_000
    index_dtype: str = "auto"
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    checkpoint_diff: bool = False
    resume: bool = False

    def __post_init__(self) -> None:
        if self.regularization < 0:
            raise ShapeError("regularization must be non-negative")
        if self.max_iterations < 1:
            raise ShapeError("max_iterations must be at least 1")
        if self.min_iterations < 1 or self.min_iterations > self.max_iterations:
            raise ShapeError("min_iterations must be in [1, max_iterations]")
        if self.tolerance < 0:
            raise ShapeError("tolerance must be non-negative")
        if self.threads < 1:
            raise ShapeError("threads must be at least 1")
        if self.scheduling not in ("static", "dynamic"):
            raise ShapeError("scheduling must be 'static' or 'dynamic'")
        if not 0.0 < self.truncation_rate < 1.0:
            raise ShapeError("truncation_rate must be in (0, 1)")
        if self.block_size < 1:
            raise ShapeError("block_size must be positive")
        if self.shard_nnz < 1:
            raise ShapeError("shard_nnz must be positive")
        if self.ingest_chunk_nnz < 1:
            raise ShapeError("ingest_chunk_nnz must be positive")
        if self.checkpoint_every < 1:
            raise ShapeError("checkpoint_every must be at least 1")
        if self.resume and not self.checkpoint_dir:
            raise ShapeError("resume=True requires checkpoint_dir")
        if self.checkpoint_diff and not self.checkpoint_dir:
            raise ShapeError("checkpoint_diff=True requires checkpoint_dir")
        from ..columns import check_index_dtype_policy

        check_index_dtype_policy(self.index_dtype)
        from ..kernels.backends import backend_names_for_cli

        if self.backend not in backend_names_for_cli():
            raise ShapeError(
                f"unknown kernel backend {self.backend!r}; "
                f"choose one of {backend_names_for_cli()}"
            )

    def resolve_ranks(self, order: int) -> Tuple[int, ...]:
        """Broadcast a single rank to every mode and validate the count."""
        ranks = tuple(int(r) for r in self.ranks)
        if len(ranks) == 1:
            ranks = ranks * order
        if len(ranks) != order:
            raise ShapeError(
                f"got {len(ranks)} ranks for an order-{order} tensor; provide one "
                "rank or one per mode"
            )
        return ranks

    def with_updates(self, **changes) -> "PTuckerConfig":
        """Return a copy of the configuration with the given fields replaced."""
        return replace(self, **changes)


DEFAULT_CONFIG = PTuckerConfig()
