"""P-Tucker: row-wise ALS Tucker factorization for sparse tensors (Algorithm 2).

This is the paper's primary contribution.  Each ALS sweep updates every factor
matrix mode by mode with the row-wise rule of Eqs. (9)-(12), measures the
reconstruction error over the observed entries only (Eq. 5), and stops when
the error converges or the iteration cap is hit.  A final QR pass makes the
factors orthogonal and folds the R factors into the core (Eqs. 7-8).

The memory-optimised default keeps only the per-row workspace (δ, B, c and the
inverse) as intermediate data — O(T·J²), Theorem 4 — which is what lets it
scale where the HOOI-style baselines run out of memory.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ShapeError
from ..metrics.errors import error_and_loss
from ..metrics.memory import MemoryTracker
from ..metrics.timing import IterationTimer
from ..parallel.scheduler import RowScheduler
from ..tensor.coo import SparseTensor
from .config import PTuckerConfig
from .core_tensor import initialize_core, initialize_factors, orthogonalize
from .result import TuckerResult
from .row_update import ModeContext, build_all_mode_contexts, update_factor_mode
from .trace import ConvergenceTrace, IterationRecord


class PTucker:
    """Memory-optimised P-Tucker solver (the paper's default variant).

    Parameters
    ----------
    config:
        Hyper-parameters; see :class:`~repro.core.config.PTuckerConfig`.

    Examples
    --------
    >>> from repro.data import planted_tucker_tensor
    >>> from repro.core import PTucker, PTuckerConfig
    >>> planted = planted_tucker_tensor((30, 30, 30), (3, 3, 3), 2000, seed=1)
    >>> result = PTucker(PTuckerConfig(ranks=(3, 3, 3), max_iterations=5)).fit(
    ...     planted.tensor)
    >>> result.trace.errors[0] >= result.trace.errors[-1]
    True
    """

    name = "P-Tucker"

    def __init__(self, config: Optional[PTuckerConfig] = None) -> None:
        self.config = config if config is not None else PTuckerConfig()

    # ------------------------------------------------------------------
    # Hooks overridden by the Cache and Approx variants
    # ------------------------------------------------------------------
    def _prepare(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        core: np.ndarray,
        memory: Optional[MemoryTracker],
    ) -> None:
        """Per-run initialisation hook (the cache variant builds Pres here)."""

    def _delta_provider(self, tensor: SparseTensor, factors, core, mode: int):
        """Return a δ provider for :func:`update_factor_mode`, or None."""
        return None

    def _after_mode_update(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        core: np.ndarray,
        mode: int,
        previous_factor: np.ndarray,
    ) -> None:
        """Hook called after one factor matrix is updated (cache refresh)."""

    def _after_iteration(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        core: np.ndarray,
        iteration: int,
    ) -> np.ndarray:
        """Hook called at the end of an iteration; may return a modified core.

        P-Tucker-Approx truncates noisy core entries here (Algorithm 2
        lines 5-6).
        """
        return core

    # ------------------------------------------------------------------
    def fit_streaming(self, source) -> TuckerResult:
        """Fit from a chunked entry source without materialising the tensor.

        ``source`` is any reader implementing the entry-chunk protocol of
        :mod:`repro.tensor.io` (text file, ``.npz``, shard store, in-RAM
        tensor).  The entries are spilled into a shard store with the
        external-memory build (reading at most ``config.ingest_chunk_nnz``
        entries at a time — see
        :meth:`repro.shards.ShardStore.build_streaming`) and the fit is
        delegated to the out-of-core
        :class:`~repro.shards.executor.ShardedSweepExecutor`, so peak
        memory stays bounded by the chunk/block sizes from raw file to
        fitted model.  The store lands at ``config.shard_dir`` when set,
        otherwise in a temporary directory that is removed after the fit.
        """
        config = self.config
        if type(self) is not PTucker:
            raise ShapeError(
                "streaming ingest supports the base P-Tucker solver only, "
                f"not {type(self).__name__} (its per-entry state indexes "
                "the in-RAM entry order)"
            )
        from ..shards import ShardedSweepExecutor, ShardStore

        def fit_at(directory: str) -> TuckerResult:
            store = ShardStore.build_streaming(
                source,
                directory,
                shard_nnz=config.shard_nnz,
                chunk_nnz=config.ingest_chunk_nnz,
                index_dtype=config.index_dtype,
            )
            executor = ShardedSweepExecutor(
                store, backend=config.backend, block_size=config.block_size
            )
            return executor.fit(config)

        if config.shard_dir:
            return fit_at(config.shard_dir)
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-ingest-") as tmp_dir:
            return fit_at(tmp_dir)

    def fit(self, tensor: SparseTensor) -> TuckerResult:
        """Factorize ``tensor`` and return the fitted model.

        With ``config.shard_dir`` set, the sweeps run out of core: the
        tensor is sharded to (or reused from) that directory and the fit is
        delegated to :class:`~repro.shards.executor.ShardedSweepExecutor`,
        whose streamed updates are bitwise-equal to the in-core ones.
        """
        config = self.config
        if config.shard_dir:
            if type(self) is not PTucker:
                raise ShapeError(
                    "shard_dir streaming supports the base P-Tucker solver "
                    f"only, not {type(self).__name__} (its per-entry state "
                    "indexes the in-RAM entry order)"
                )
            from ..shards import ShardedSweepExecutor, ShardStore

            store = ShardStore.for_tensor(
                tensor,
                config.shard_dir,
                shard_nnz=config.shard_nnz,
                index_dtype=config.index_dtype,
            )
            executor = ShardedSweepExecutor(
                store, backend=config.backend, block_size=config.block_size
            )
            return executor.fit(config)
        ranks = config.resolve_ranks(tensor.order)
        rng = np.random.default_rng(config.seed)

        factors = initialize_factors(tensor.shape, ranks, rng)
        core = initialize_core(ranks, rng)

        memory = (
            MemoryTracker(budget_bytes=config.memory_budget_bytes)
            if config.track_memory
            else None
        )
        scheduler = RowScheduler(
            n_threads=config.threads, scheduling=config.scheduling
        )
        contexts: List[ModeContext] = build_all_mode_contexts(
            tensor, index_dtype=config.index_dtype
        )
        trace = ConvergenceTrace()
        timer = IterationTimer()

        checkpoints = None
        digest = ""
        start_iteration = 1
        if config.checkpoint_dir:
            from ..resilience.checkpoint import (
                CheckpointManager,
                fit_state_digest,
                resume_state,
            )
            from ..shards.store import _tensor_digest

            checkpoints = CheckpointManager(
                config.checkpoint_dir,
                every=config.checkpoint_every,
                diff=config.checkpoint_diff,
            )
            digest = fit_state_digest(
                shape=tensor.shape,
                nnz=tensor.nnz,
                ranks=ranks,
                regularization=config.regularization,
                seed=config.seed,
                orthogonalize=config.orthogonalize,
                backend=config.backend,
                block_size=config.block_size,
                entries_sha256=_tensor_digest(tensor),
            )
            resumed = resume_state(checkpoints, config.resume, digest)
            if resumed is not None:
                # The RNG only seeds the *initial* factors, which the
                # checkpoint supersedes, so re-entering the deterministic
                # loop at iteration+1 continues bitwise-identically.
                factors = [
                    np.ascontiguousarray(f, dtype=np.float64)
                    for f in resumed.factors
                ]
                core = np.ascontiguousarray(resumed.core, dtype=np.float64)
                trace = resumed.trace
                start_iteration = resumed.iteration + 1

        self._prepare(tensor, factors, core, memory)

        for iteration in range(start_iteration, config.max_iterations + 1):
            if trace.converged:
                break  # a resumed checkpoint already recorded convergence
            with timer.iteration():
                for mode in range(tensor.order):
                    previous = factors[mode].copy()
                    provider = self._delta_provider(tensor, factors, core, mode)
                    update_factor_mode(
                        tensor,
                        factors,
                        core,
                        mode,
                        config.regularization,
                        context=contexts[mode],
                        block_size=config.block_size,
                        memory=memory,
                        delta_provider=provider,
                        backend=config.backend,
                    )
                    scheduler.record_mode(contexts[mode].row_counts)
                    self._after_mode_update(tensor, factors, core, mode, previous)

                # One residual pass yields both metrics (Eqs. 5 and 6).
                error, loss = error_and_loss(
                    tensor, core, factors, config.regularization
                )
                core = self._after_iteration(tensor, factors, core, iteration)

            trace.add(
                IterationRecord(
                    iteration=iteration,
                    reconstruction_error=error,
                    loss=loss,
                    seconds=timer.seconds[-1],
                    core_nnz=int(np.count_nonzero(core)),
                )
            )
            if (
                iteration >= config.min_iterations
                and trace.relative_change() < config.tolerance
            ):
                trace.converged = True
                trace.stop_reason = (
                    f"relative error change below tolerance {config.tolerance}"
                )
            elif iteration == config.max_iterations:
                trace.stop_reason = (
                    f"reached max_iterations={config.max_iterations}"
                )
            # Checkpoint after the stopping decision so a resumed fit knows
            # whether the trajectory already finished; the final iteration
            # is always saved regardless of the cadence.
            if checkpoints is not None and checkpoints.due(
                iteration,
                final=trace.converged or iteration == config.max_iterations,
            ):
                checkpoints.save(iteration, factors, core, trace, digest)
            if trace.converged:
                break

        if config.orthogonalize:
            factors, core = orthogonalize(factors, core)

        result = TuckerResult(
            core=core,
            factors=list(factors),
            trace=trace,
            memory=memory,
            algorithm=self.name,
        )
        result.scheduler = scheduler  # type: ignore[attr-defined]
        return result


def fit_ptucker(
    tensor: SparseTensor,
    ranks: Sequence[int],
    regularization: float = 0.01,
    max_iterations: int = 20,
    seed: Optional[int] = 0,
    **kwargs,
) -> TuckerResult:
    """Convenience wrapper: fit P-Tucker with keyword hyper-parameters."""
    config = PTuckerConfig(
        ranks=tuple(int(r) for r in ranks),
        regularization=regularization,
        max_iterations=max_iterations,
        seed=seed,
        **kwargs,
    )
    return PTucker(config).fit(tensor)
