"""P-Tucker-Sampled: entry-sampling acceleration (the paper's future work).

The conclusion of the paper lists "applying sampling techniques on observable
entries to accelerate decompositions, while sacrificing little accuracy" as
future work.  This module implements that extension on top of the P-Tucker
row-wise update: each iteration draws a random subset of the observed entries
and updates the factor matrices from the subset only, while the
reconstruction error — and therefore the convergence decision — is still
measured on the full Ω.

Because the per-iteration cost of P-Tucker is dominated by the O(N²|Ω|Jᴺ)
δ computation, sampling a fraction ``s`` of the entries reduces the
factor-update cost by roughly ``1/s`` at the price of noisier updates.  The
ablation benchmark ``benchmarks/bench_ablation_sampling.py`` measures that
trade-off.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import ShapeError
from ..metrics.memory import MemoryTracker
from ..tensor.coo import SparseTensor
from .config import PTuckerConfig
from .ptucker import PTucker
from .row_update import build_all_mode_contexts


class PTuckerSampled(PTucker):
    """P-Tucker whose factor updates use a random sample of the observed entries.

    Parameters
    ----------
    config:
        Standard :class:`PTuckerConfig`.
    sample_fraction:
        Fraction of Ω used for the factor updates each iteration (0 < s <= 1).
        ``1.0`` makes the solver identical to plain P-Tucker.
    resample_each_iteration:
        Draw a fresh sample every iteration (default) or reuse one fixed
        sample for the whole run.
    """

    name = "P-Tucker-Sampled"

    def __init__(
        self,
        config: Optional[PTuckerConfig] = None,
        sample_fraction: float = 0.5,
        resample_each_iteration: bool = True,
    ) -> None:
        super().__init__(config)
        if not 0.0 < sample_fraction <= 1.0:
            raise ShapeError("sample_fraction must be in (0, 1]")
        self.sample_fraction = float(sample_fraction)
        self.resample_each_iteration = bool(resample_each_iteration)
        self._full_tensor: Optional[SparseTensor] = None
        self._sample_rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------
    def _draw_sample(self, tensor: SparseTensor) -> SparseTensor:
        """Random subset of the observed entries used for the next update pass."""
        assert self._sample_rng is not None
        n_keep = max(1, int(round(self.sample_fraction * tensor.nnz)))
        if n_keep >= tensor.nnz:
            return tensor
        rows = self._sample_rng.choice(tensor.nnz, size=n_keep, replace=False)
        return SparseTensor(tensor.indices[rows], tensor.values[rows], tensor.shape)

    # ------------------------------------------------------------------
    def fit(self, tensor: SparseTensor) -> "TuckerResult":  # noqa: F821 - see result module
        """Factorize ``tensor``; updates use samples, errors use all of Ω."""
        # With no sampling the behaviour (and the code path) is exactly P-Tucker.
        if self.sample_fraction >= 1.0:
            return super().fit(tensor)

        from ..metrics.errors import error_and_loss
        from ..metrics.timing import IterationTimer
        from ..parallel.scheduler import RowScheduler
        from .core_tensor import initialize_core, initialize_factors, orthogonalize
        from .result import TuckerResult
        from .row_update import update_factor_mode
        from .trace import ConvergenceTrace, IterationRecord

        config = self.config
        ranks = config.resolve_ranks(tensor.order)
        rng = np.random.default_rng(config.seed)
        self._sample_rng = np.random.default_rng(
            None if config.seed is None else config.seed + 1
        )

        factors = initialize_factors(tensor.shape, ranks, rng)
        core = initialize_core(ranks, rng)
        memory = (
            MemoryTracker(budget_bytes=config.memory_budget_bytes)
            if config.track_memory
            else None
        )
        scheduler = RowScheduler(n_threads=config.threads, scheduling=config.scheduling)
        trace = ConvergenceTrace()
        timer = IterationTimer()

        sample = self._draw_sample(tensor)
        sample_contexts = build_all_mode_contexts(sample)

        for iteration in range(1, config.max_iterations + 1):
            with timer.iteration():
                if self.resample_each_iteration and iteration > 1:
                    sample = self._draw_sample(tensor)
                    sample_contexts = build_all_mode_contexts(sample)
                for mode in range(tensor.order):
                    update_factor_mode(
                        sample,
                        factors,
                        core,
                        mode,
                        config.regularization,
                        context=sample_contexts[mode],
                        block_size=config.block_size,
                        memory=memory,
                        backend=config.backend,
                    )
                    scheduler.record_mode(sample_contexts[mode].row_counts)
                error, loss = error_and_loss(
                    tensor, core, factors, config.regularization
                )

            trace.add(
                IterationRecord(
                    iteration=iteration,
                    reconstruction_error=error,
                    loss=loss,
                    seconds=timer.seconds[-1],
                    core_nnz=int(np.count_nonzero(core)),
                )
            )
            if (
                iteration >= config.min_iterations
                and trace.relative_change() < config.tolerance
            ):
                trace.converged = True
                trace.stop_reason = (
                    f"relative error change below tolerance {config.tolerance}"
                )
                break
        else:
            trace.stop_reason = f"reached max_iterations={config.max_iterations}"

        if config.orthogonalize:
            factors, core = orthogonalize(factors, core)

        result = TuckerResult(
            core=core,
            factors=list(factors),
            trace=trace,
            memory=memory,
            algorithm=self.name,
        )
        result.scheduler = scheduler  # type: ignore[attr-defined]
        result.sample_fraction = self.sample_fraction  # type: ignore[attr-defined]
        return result
