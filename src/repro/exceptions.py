"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  The memory model raises
:class:`OutOfMemoryError` when an algorithm's intermediate data exceeds the
configured budget, mirroring the O.O.M. failures reported in the paper.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ShapeError(ReproError, ValueError):
    """Raised when tensor shapes, ranks, or mode indices are inconsistent."""


class DataFormatError(ReproError, ValueError):
    """Raised when parsing a tensor file with malformed content."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when a solver is asked to run in a state it cannot handle."""


class WorkerFailureError(ReproError, RuntimeError):
    """Raised when parallel worker processes keep dying past the retry budget.

    The process-pool executor survives individual worker deaths by
    rebuilding the pool and re-dispatching only the unfinished row
    subsets; this error surfaces only after those bounded retries are
    exhausted, and its message names the mode being updated and the rows
    still outstanding so the failure is actionable.
    """


class OutOfMemoryError(ReproError, MemoryError):
    """Raised by the memory model when intermediate data exceeds the budget.

    The paper runs every competitor on a 512 GB machine and reports
    "O.O.M." for algorithms whose intermediate data do not fit.  This
    reproduction accounts for intermediate data explicitly
    (:mod:`repro.metrics.memory`) and raises this error when a configured
    budget is exceeded, which lets the experiments reproduce the O.O.M.
    entries of Figures 6, 7 and 11 deterministically.
    """

    def __init__(self, requested_bytes: int, budget_bytes: int, what: str = "") -> None:
        self.requested_bytes = int(requested_bytes)
        self.budget_bytes = int(budget_bytes)
        self.what = what
        detail = f" for {what}" if what else ""
        super().__init__(
            f"intermediate data{detail} needs {self.requested_bytes} bytes, "
            f"budget is {self.budget_bytes} bytes"
        )
