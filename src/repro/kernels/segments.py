"""Segment-sorted reductions over mode-ordered entry blocks.

All functions assume the entries of one mode have already been sorted by
their row index (the :class:`~repro.core.row_update.ModeContext` ordering),
so every row's entries form one contiguous segment.  Reductions then run as
``np.add.reduceat`` passes — contiguous, vectorised, and free of the
per-element scalar dispatch that makes ``np.add.at`` the slowest operation
in the seed kernel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def block_segment_starts(sorted_segment_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Start offsets and segment ids of the runs in a sorted id array.

    ``sorted_segment_ids`` holds one (already sorted) segment id per entry of
    a block; the return value is ``(starts, ids)`` where ``starts`` are the
    offsets at which a new segment begins (always including 0) and ``ids``
    the segment id of each run.
    """
    ids = np.asarray(sorted_segment_ids)
    if ids.shape[0] == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(ids[1:] != ids[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
    return starts, ids[starts]


def segment_sum(array: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``array`` rows via ``np.add.reduceat``.

    ``starts`` are the segment start offsets (first element 0); an empty
    input yields an empty result of matching trailing shape.
    """
    array = np.asarray(array)
    if starts.shape[0] == 0:
        return np.zeros((0,) + array.shape[1:], dtype=np.float64)
    return np.add.reduceat(array, starts, axis=0)


def _bucketed_gram(
    deltas: np.ndarray,
    values: Optional[np.ndarray],
    starts: np.ndarray,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Segmented ``δᵀδ`` (and optionally ``Σ X δ``) via batched GEMMs.

    Segments are bucketed by length so all equally-long segments reduce in
    one batched ``matmul`` — each bucket is a ``(n_segments, length, J)``
    stack contracted as ``blockᵀ block``.  The ``(m, J, J)`` outer-product
    array of the seed kernel is never materialised, and no scatter-add runs;
    the number of GEMM dispatches is the number of distinct segment lengths.
    """
    deltas = np.asarray(deltas, dtype=np.float64)
    n_total = deltas.shape[0]
    rank = deltas.shape[1]
    n_segments = starts.shape[0]
    gram = np.empty((n_segments, rank, rank), dtype=np.float64)
    c_vectors = None if values is None else np.empty((n_segments, rank))
    if n_segments == 0:
        return gram, c_vectors
    counts = np.diff(np.append(starts, n_total))
    # Group equal-length segments with one argsort instead of scanning the
    # counts array once per distinct length.
    order = np.argsort(counts, kind="stable")
    sorted_counts = counts[order]
    group_bounds = np.concatenate(
        (
            np.zeros(1, dtype=np.int64),
            np.flatnonzero(np.diff(sorted_counts)) + 1,
            np.asarray([order.size], dtype=np.int64),
        )
    )
    for group in range(group_bounds.size - 1):
        segments = order[group_bounds[group] : group_bounds[group + 1]]
        count = int(sorted_counts[group_bounds[group]])
        positions = starts[segments][:, None] + np.arange(count)[None, :]
        block = deltas[positions]
        gram[segments] = np.matmul(block.transpose(0, 2, 1), block)
        if values is not None:
            c_vectors[segments] = np.matmul(
                values[positions][:, None, :], block
            )[:, 0, :]
    return gram, c_vectors


def segment_gram(deltas: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment Gram matrices ``Σ δδᵀ`` without an ``(m, J, J)`` temporary."""
    gram, _ = _bucketed_gram(deltas, None, starts)
    return gram


def normal_equations_sorted(
    deltas: np.ndarray,
    values: np.ndarray,
    starts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``B`` (Eq. 10) and ``c`` (Eq. 11) over row-sorted entries.

    ``deltas``/``values`` must be ordered so each row's entries are
    contiguous, with segment boundaries at ``starts``.  Returns ``B`` of
    shape ``(n_segments, J, J)`` and ``c`` of shape ``(n_segments, J)``.
    """
    values = np.asarray(values, dtype=np.float64)
    b_matrices, c_vectors = _bucketed_gram(deltas, values, starts)
    return b_matrices, c_vectors


def concatenated_segment_starts(counts: np.ndarray) -> np.ndarray:
    """Start offsets of each segment inside their concatenated layout.

    Given per-segment lengths, returns where each segment begins once the
    segments are packed back to back (first element 0).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]))


def segment_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated positions ``[s, s + c)`` for each selected segment.

    Given per-segment start offsets and lengths (as in a mode context's
    ``row_starts``/``row_counts`` restricted to one worker's rows), returns
    the flat entry positions of all selected segments, in segment order.
    This replaces the per-worker ``np.isin`` scan over all nnz entries with
    an O(selected entries) gather.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    segment_of_output = np.repeat(np.arange(counts.shape[0]), counts)
    output_starts = concatenated_segment_starts(counts)
    offsets = np.arange(total, dtype=np.int64) - output_starts[segment_of_output]
    return starts[segment_of_output] + offsets
