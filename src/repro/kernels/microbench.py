"""Kernel and backend microbenchmarks across (nnz, rank, order) grids.

Times one full :func:`~repro.core.row_update.update_factor_mode` sweep of
mode 0 with the seed Kronecker kernel (``kernel="kron"``) against the
contraction-ordered kernel (``kernel="contracted"``) under every available
execution backend (``numpy``, ``threaded``, ``numba`` where installed — see
:mod:`repro.kernels.backends`), and verifies the contracted result against
:func:`~repro.core.row_update.brute_force_row_update` on a handful of rows.

Each row records per-backend wall times (``seconds_<backend>``), the
measured-fastest backend (``backend_selected`` — by construction never a
backend that measured slower), and the machine facts that make timings
comparable across refreshes: CPU count and the BLAS thread count.

Each cell also compares the **out-of-core sharded sweep**
(:mod:`repro.shards`) against the in-core path at a matched block size:
``seconds_sharded`` is the streamed wall time, ``sharded_equals_incore``
asserts the bitwise contract, and the ``peak_*`` columns record the peak
memory the sweep adds on top of what is already resident — once as the
RSS growth over the sweep of a *cold* subprocess, polled from its
``/proc/self/statm`` (``peak_rss_mb_*``; a warm process would mask the
difference behind allocator arena reuse, and ``ru_maxrss`` cannot be
used because numpy's import transient sets that watermark), and once as
the deterministic Python-side allocation peak from ``tracemalloc``
(``peak_traced_mb_*``, which numpy reports its buffers to).  The in-core number includes the nnz-sized
sorted index/value copies
a :class:`~repro.core.row_update.ModeContext` keeps; the sharded number
only ever holds one streamed block, which is the memory win the shard
store exists for (see ``docs/BENCHMARKS.md``).

Each cell also benchmarks the **streaming ingest** path: the vectorized
text parser against the frozen seed per-line loop
(``seconds_parse_text`` / ``seconds_parse_text_loop`` /
``parse_speedup_vs_loop``) and the external-memory shard build against the
in-RAM one (``seconds_build_*``, ``peak_traced_mb_build_*``,
``peak_rss_mb_build_*``, ``streaming_build_equals_incore``) — see
:func:`_bench_ingest` — and the **narrow columnar index format** (shard
store v2): on-disk index bytes per entry and total store size under
``index_dtype="auto"`` vs ``"wide"`` (``index_bytes_per_nnz_*``,
``store_disk_bytes_*``, ``index_bytes_ratio_wide_over_narrow``), the
streamed sweep seconds over each (``seconds_sweep_narrow`` /
``seconds_sweep_wide``) and their bitwise equality
(``narrow_equals_wide``) — see :func:`_bench_index_dtype`.

The resulting rows are what ``benchmarks/run_benchmarks.py`` and
``python -m repro.experiments bench-kernels`` serialise into
``BENCH_kernels.json`` — the repository's recorded perf trajectory.

This module deliberately lives outside :mod:`repro.kernels`'s package
exports: it imports the tensor and solver layers, which themselves import
the kernel functions.
"""

from __future__ import annotations

import gc
import json
import os
import tempfile
import tracemalloc
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.environment import bench_environment
from ..metrics.environment import blas_thread_count as _blas_thread_count

from ..core.row_update import (
    brute_force_row_update,
    build_mode_context,
    update_factor_mode,
)
from ..exceptions import DataFormatError
from ..tensor.coo import SparseTensor
from ..tensor.io import TextEntryReader, load_text, save_npz, save_text
from .backends import HAVE_NUMBA, available_backends

#: Full default grid: small enough for minutes-scale runs, but it includes
#: the (nnz=100k, rank=10, order=3) cell the perf acceptance gate reads.
DEFAULT_GRID: Tuple[Dict[str, int], ...] = (
    {"nnz": 10_000, "rank": 4, "order": 3},
    {"nnz": 10_000, "rank": 10, "order": 3},
    {"nnz": 100_000, "rank": 10, "order": 3},
    {"nnz": 200_000, "rank": 10, "order": 3},
    {"nnz": 10_000, "rank": 4, "order": 4},
    {"nnz": 10_000, "rank": 6, "order": 4},
    {"nnz": 5_000, "rank": 3, "order": 5},
)

#: Reduced grid for smoke runs (the pytest benchmark and the
#: ``bench_kernel_microbench.py --small`` flag).
SMALL_GRID: Tuple[Dict[str, int], ...] = (
    {"nnz": 2_000, "rank": 4, "order": 3},
    {"nnz": 5_000, "rank": 6, "order": 3},
    {"nnz": 2_000, "rank": 3, "order": 4},
)


#: Re-exported from :mod:`repro.metrics.environment`, the shared home of
#: benchmark-environment introspection (kept importable from here for the
#: scripts and tests that predate that module).
blas_thread_count = _blas_thread_count


def _random_problem(
    nnz: int, rank: int, order: int, seed: int
) -> Tuple[SparseTensor, List[np.ndarray], np.ndarray]:
    """A random sparse tensor with random factors and core for timing."""
    rng = np.random.default_rng(seed)
    dim = max(16, int(round((4.0 * nnz) ** (1.0 / order))))
    shape = (dim,) * order
    # Sample distinct cells so the recorded nnz is exactly the requested one.
    n_cells = dim**order
    flat = rng.choice(n_cells, size=min(nnz, n_cells), replace=False)
    indices = np.stack(np.unravel_index(flat, shape), axis=1).astype(np.int64)
    values = rng.standard_normal(indices.shape[0])
    tensor = SparseTensor(indices, values, shape)
    factors = [rng.uniform(-0.5, 0.5, size=(dim, rank)) for _ in range(order)]
    core = rng.uniform(-0.5, 0.5, size=(rank,) * order)
    return tensor, factors, core


def _time_update(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    kernel: str,
    repeats: int,
    regularization: float = 0.01,
    backend: str = "numpy",
) -> float:
    """Best-of-``repeats`` wall time of one mode-0 factor update."""
    context = build_mode_context(tensor, 0)
    best = float("inf")
    for _ in range(repeats):
        fresh = [np.array(f, copy=True) for f in factors]
        start = perf_counter()
        update_factor_mode(
            tensor,
            fresh,
            core,
            0,
            regularization,
            context=context,
            kernel=kernel,
            backend=backend,
        )
        best = min(best, perf_counter() - start)
    return best


#: Source of the child process that measures one sweep's peak-RSS growth.
#: A *cold* process is essential: inside a warm benchmark process the
#: allocator satisfies the sweep's arrays from previously freed arenas, so
#: resident memory never moves and every path measures as "free".  The
#: child reads the already-built shard store, prepares its inputs (the
#: in-core variant materialises the tensor — that is its resident state by
#: definition), snapshots its resident set, runs exactly one mode-0 sweep
#: while a thread polls ``/proc/self/statm``, and reports the peak growth.
#: (``ru_maxrss`` cannot be used: numpy's import transient sets the
#: watermark above anything these sweeps allocate.)
_PEAK_RSS_CHILD = """
import json, os, sys, threading

import numpy as np

from repro.core.row_update import build_mode_context, update_factor_mode
from repro.shards import ShardStore, ShardedSweepExecutor

PAGE = os.sysconf("SC_PAGE_SIZE")


def rss_bytes():
    with open("/proc/self/statm", "rb") as handle:
        return int(handle.read().split()[1]) * PAGE


kind, shard_dir, block_size, rank = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
)
store = ShardStore.open(shard_dir)
rng = np.random.default_rng(0)
factors = [rng.uniform(-0.5, 0.5, size=(dim, rank)) for dim in store.shape]
core = rng.uniform(-0.5, 0.5, size=(rank,) * store.order)
tensor = store.to_tensor() if kind == "incore" else None

baseline = rss_bytes()
peak = baseline
stop = threading.Event()


def sample():
    global peak
    while not stop.is_set():
        peak = max(peak, rss_bytes())
        stop.wait(0.0005)


sampler = threading.Thread(target=sample, daemon=True)
sampler.start()
if kind == "incore":
    context = build_mode_context(tensor, 0)
    update_factor_mode(
        tensor, factors, core, 0, 0.01, context=context, block_size=block_size
    )
else:
    ShardedSweepExecutor(store, block_size=block_size).update_factor_mode(
        factors, core, 0, 0.01
    )
peak = max(peak, rss_bytes())
stop.set()
sampler.join()
print(json.dumps({"delta_kb": max(0, peak - baseline) / 1024.0}))
"""


def _child_peak_rss_mb(
    kind: str, shard_dir: str, block_size: int, rank: int
) -> Optional[float]:
    """Peak-RSS growth of one sweep, measured in a cold subprocess (MiB).

    Returns ``None`` when the child cannot run (no interpreter, import
    failure) so the benchmark degrades to the tracemalloc columns instead
    of failing.
    """
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    try:
        completed = subprocess.run(
            [
                sys.executable,
                "-c",
                _PEAK_RSS_CHILD,
                kind,
                shard_dir,
                str(block_size),
                str(rank),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        if completed.returncode != 0:
            return None
        delta_kb = json.loads(completed.stdout.strip())["delta_kb"]
    except (OSError, ValueError, KeyError, subprocess.TimeoutExpired):
        return None
    return float(delta_kb) / 1024.0


def _run_with_traced_peak(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` under ``tracemalloc`` and return its allocation peak.

    Deterministic counterpart of the subprocess RSS measurement
    (:func:`_child_peak_rss_mb`): numpy reports its buffer allocations to
    tracemalloc, so the peak covers every array the call materialises
    (but not memory-mapped file pages — those are page cache, not
    intermediate data).  Do not time inside ``fn``; tracing slows
    allocation.
    """
    gc.collect()
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    try:
        result = fn()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, float(max(0, peak - before))


def _bench_sharded_vs_incore(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    repeats: int,
    regularization: float = 0.01,
) -> Dict[str, object]:
    """Out-of-core vs. in-core mode-0 sweep: wall time and peak memory.

    Builds a shard store for the cell in a temporary directory (the build
    is outside every measurement), then runs both paths at the *same*
    block size (an eighth of nnz, so the streaming structure is exercised)
    and measures each with the RSS sampler and tracemalloc.  The in-core
    measurement includes its ``build_mode_context`` — the nnz-sized sorted
    copies are precisely the resident state the shard store replaces.
    """
    from ..shards import ShardStore, ShardedSweepExecutor

    block_size = max(2_048, tensor.nnz // 8)
    row: Dict[str, object] = {"shard_nnz": int(block_size)}
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as shard_dir:
        ShardStore.build(tensor, shard_dir, shard_nnz=block_size)

        def incore_run() -> Tuple[float, np.ndarray]:
            # Drop the cached sort permutation so every in-core run pays
            # (and its memory delta includes) the same context build a
            # fresh fit would.
            tensor._mode_sorted_cache.clear()
            fresh = [np.array(f, copy=True) for f in factors]
            start = perf_counter()
            context = build_mode_context(tensor, 0)
            update_factor_mode(
                tensor,
                fresh,
                core,
                0,
                regularization,
                context=context,
                block_size=block_size,
            )
            return perf_counter() - start, fresh[0]

        def sharded_run() -> Tuple[float, np.ndarray]:
            store = ShardStore.open(shard_dir)
            executor = ShardedSweepExecutor(store, block_size=block_size)
            fresh = [np.array(f, copy=True) for f in factors]
            start = perf_counter()
            executor.update_factor_mode(fresh, core, 0, regularization)
            return perf_counter() - start, fresh[0]

        best_incore = best_sharded = float("inf")
        incore_factor = sharded_factor = None
        for _ in range(max(1, repeats)):
            seconds, incore_factor = incore_run()
            best_incore = min(best_incore, seconds)
            seconds, sharded_factor = sharded_run()
            best_sharded = min(best_sharded, seconds)
        (_, _), traced_incore = _run_with_traced_peak(incore_run)
        (_, _), traced_sharded = _run_with_traced_peak(sharded_run)
        rank = int(np.asarray(core).shape[0])
        rss_incore = _child_peak_rss_mb("incore", shard_dir, block_size, rank)
        rss_sharded = _child_peak_rss_mb("sharded", shard_dir, block_size, rank)

    mib = 1024.0 * 1024.0
    row["seconds_incore_blocked"] = best_incore
    row["seconds_sharded"] = best_sharded
    row["sharded_equals_incore"] = bool(
        np.array_equal(incore_factor, sharded_factor)
    )
    row["peak_traced_mb_incore"] = traced_incore / mib
    row["peak_traced_mb_sharded"] = traced_sharded / mib
    if rss_incore is not None:
        row["peak_rss_mb_incore"] = rss_incore
    if rss_sharded is not None:
        row["peak_rss_mb_sharded"] = rss_sharded
    return row


def _directory_bytes(directory: str, suffix: Optional[str] = None) -> int:
    """Total file bytes under ``directory`` (optionally filtered by suffix)."""
    total = 0
    for dirpath, _, names in os.walk(directory):
        for name in names:
            if suffix is not None and not name.endswith(suffix):
                continue
            total += os.path.getsize(os.path.join(dirpath, name))
    return total


def _bench_index_dtype(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    repeats: int,
    regularization: float = 0.01,
) -> Dict[str, object]:
    """Narrow vs. wide index columns: store size and streamed sweep time.

    Builds the cell's shard store twice — ``index_dtype="auto"`` (narrow
    columns) and ``"wide"`` (int64 columns) — and records the on-disk
    index bytes per entry and total store size of each, plus the wall time
    of one streamed mode-0 sweep over each store at a matched block size
    and the bitwise equality of the two updated factors.  Index dtype
    never touches a float64, so ``narrow_equals_wide`` asserts the whole
    point of format v2: 3-8x fewer index bytes for free.
    """
    from ..shards import ShardStore, ShardedSweepExecutor

    block_size = max(2_048, tensor.nnz // 8)
    row: Dict[str, object] = {}
    results: Dict[str, np.ndarray] = {}
    executors: Dict[str, ShardedSweepExecutor] = {}
    best: Dict[str, float] = {"narrow": float("inf"), "wide": float("inf")}
    with tempfile.TemporaryDirectory(prefix="repro-dtype-bench-") as work:
        for policy, tag in (("auto", "narrow"), ("wide", "wide")):
            store_dir = os.path.join(work, policy)
            store = ShardStore.build(
                tensor, store_dir, shard_nnz=block_size, index_dtype=policy
            )
            tensor.clear_caches()
            index_bytes = sum(
                _directory_bytes(store_dir, suffix=f".col{k}.npy")
                for k in range(tensor.order)
            )
            row[f"index_bytes_per_nnz_{tag}"] = (
                index_bytes / tensor.nnz if tensor.nnz else 0.0
            )
            row[f"store_disk_bytes_{tag}"] = _directory_bytes(store_dir)
            executors[tag] = ShardedSweepExecutor(store, block_size=block_size)

        def one_sweep(tag: str) -> float:
            fresh = [np.array(f, copy=True) for f in factors]
            start = perf_counter()
            executors[tag].update_factor_mode(fresh, core, 0, regularization)
            seconds = perf_counter() - start
            results[tag] = fresh[0]
            return seconds

        # One untimed warm-up each (page cache, lazy imports), then
        # interleaved best-of timing so drift hits both paths alike.
        one_sweep("narrow")
        one_sweep("wide")
        for _ in range(max(1, repeats)):
            for tag in ("narrow", "wide"):
                best[tag] = min(best[tag], one_sweep(tag))
    row["seconds_sweep_narrow"] = best["narrow"]
    row["seconds_sweep_wide"] = best["wide"]
    row["index_bytes_ratio_wide_over_narrow"] = (
        row["index_bytes_per_nnz_wide"]
        / max(row["index_bytes_per_nnz_narrow"], 1e-12)
    )
    row["narrow_equals_wide"] = bool(
        np.array_equal(results["narrow"], results["wide"])
    )
    return row


def _parse_text_per_line(path: str) -> SparseTensor:
    """The seed per-line text parser, kept verbatim as the timing baseline.

    This is the ``load_text`` implementation the repository shipped before
    ingest was vectorized; the ``parse_speedup_vs_loop`` column measures
    the current reader against it on the same file, so the recorded
    speedup stays meaningful across refreshes.
    """
    indices = []
    values = []
    order = None
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) < 2:
                raise DataFormatError(
                    f"{path}:{lineno}: expected at least one index and a value"
                )
            if order is None:
                order = len(parts) - 1
            elif len(parts) - 1 != order:
                raise DataFormatError(
                    f"{path}:{lineno}: expected {order} indices, "
                    f"got {len(parts) - 1}"
                )
            try:
                idx = [int(p) for p in parts[:-1]]
                val = float(parts[-1])
            except ValueError as exc:
                raise DataFormatError(f"{path}:{lineno}: {exc}") from exc
            idx = [i - 1 for i in idx]
            if any(i < 0 for i in idx):
                raise DataFormatError(
                    f"{path}:{lineno}: negative index after applying base offset"
                )
            indices.append(idx)
            values.append(val)
    index_array = np.asarray(indices, dtype=np.int64)
    value_array = np.asarray(values, dtype=np.float64)
    shape = tuple(int(m) + 1 for m in index_array.max(axis=0))
    return SparseTensor(index_array, value_array, shape)


def _counts_like(tensor: SparseTensor) -> SparseTensor:
    """The cell's tensor with values quantized to small positive counts.

    Real text tensors (NELL triple counts, network-traffic counts,
    integer ratings) carry short value tokens; full-precision ``%.17g``
    output of random doubles is the pathological widest case and times the
    C ``strtod`` more than the parser.  The ingest cells therefore
    benchmark the short-token regime, which both parsers agree on bit for
    bit.
    """
    counts = np.floor(np.abs(tensor.values) * 4.0) + 1.0
    return tensor.with_values(np.minimum(counts, 99.0))


#: Child process measuring one shard-store *build*'s peak-RSS growth (same
#: cold-process rationale as ``_PEAK_RSS_CHILD``).  The in-RAM variant
#: loads the tensor from ``.npz`` — its resident input state, acquired
#: without the parser's transient allocations, which would otherwise leave
#: warm allocator arenas that mask the build's growth — and snapshots
#: before ``ShardStore.build``; the streaming variant snapshots before
#: ``build_streaming`` so its delta covers the whole text parse + spill +
#: merge pipeline, which is exactly the bounded-memory claim.
_PEAK_RSS_BUILD_CHILD = """
import json, os, sys, threading

from repro.shards import ShardStore
from repro.tensor.io import TextEntryReader, load_npz

PAGE = os.sysconf("SC_PAGE_SIZE")


def rss_bytes():
    with open("/proc/self/statm", "rb") as handle:
        return int(handle.read().split()[1]) * PAGE


kind, input_path, out_dir, shard_nnz, chunk_nnz = (
    sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4]), int(sys.argv[5])
)
if kind == "build_incore":
    tensor = load_npz(input_path)
else:
    reader = TextEntryReader(input_path)

baseline = rss_bytes()
peak = baseline
stop = threading.Event()


def sample():
    global peak
    while not stop.is_set():
        peak = max(peak, rss_bytes())
        stop.wait(0.0005)


sampler = threading.Thread(target=sample, daemon=True)
sampler.start()
if kind == "build_incore":
    ShardStore.build(tensor, out_dir, shard_nnz=shard_nnz)
else:
    ShardStore.build_streaming(
        reader, out_dir, shard_nnz=shard_nnz, chunk_nnz=chunk_nnz
    )
peak = max(peak, rss_bytes())
stop.set()
sampler.join()
print(json.dumps({"delta_kb": max(0, peak - baseline) / 1024.0}))
"""


def _child_peak_rss_build_mb(
    kind: str, input_path: str, out_dir: str, shard_nnz: int, chunk_nnz: int
) -> Optional[float]:
    """Peak-RSS growth of one shard-store build, in a cold subprocess (MiB)."""
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    try:
        completed = subprocess.run(
            [
                sys.executable,
                "-c",
                _PEAK_RSS_BUILD_CHILD,
                kind,
                input_path,
                out_dir,
                str(shard_nnz),
                str(chunk_nnz),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        if completed.returncode != 0:
            return None
        delta_kb = json.loads(completed.stdout.strip())["delta_kb"]
    except (OSError, ValueError, KeyError, subprocess.TimeoutExpired):
        return None
    return float(delta_kb) / 1024.0


def _directories_identical(left: str, right: str) -> bool:
    """True when both trees hold the same files with identical bytes."""
    left_files = sorted(
        os.path.relpath(os.path.join(dirpath, name), left)
        for dirpath, _, names in os.walk(left)
        for name in names
    )
    right_files = sorted(
        os.path.relpath(os.path.join(dirpath, name), right)
        for dirpath, _, names in os.walk(right)
        for name in names
    )
    if left_files != right_files:
        return False
    for relative in left_files:
        with open(os.path.join(left, relative), "rb") as handle:
            left_bytes = handle.read()
        with open(os.path.join(right, relative), "rb") as handle:
            right_bytes = handle.read()
        if left_bytes != right_bytes:
            return False
    return True


def _bench_ingest(
    tensor: SparseTensor, repeats: int
) -> Dict[str, object]:
    """Streaming-ingest columns: text parse and out-of-core build.

    Writes the cell's tensor (values quantized to small counts — the
    short-token regime of real text data) as a text file, then measures: the
    vectorized parser against the frozen seed per-line loop
    (``seconds_parse_text`` / ``seconds_parse_text_loop``), the in-RAM
    shard build against the external-memory streaming build at an
    8192-entry chunk size shared across the large cells
    (``seconds_build_*``), the bitwise-identity of the two
    stores, and each build's peak memory — deterministic tracemalloc
    (``peak_traced_mb_build_*``) plus cold-subprocess RSS
    (``peak_rss_mb_build_*``).  The streaming numbers cover the whole
    text → store pipeline, whose peak is bounded by the chunk size; the
    in-RAM numbers start from an already-parsed tensor and still scale
    with nnz.
    """
    from ..shards import ShardStore

    counts = _counts_like(tensor)
    # 8192-entry chunks for every cell large enough to sustain them (the
    # streaming build's peak should stay flat as nnz grows while the
    # in-RAM build's scales); only cells under 32k entries shrink to
    # nnz/4 so chunking is still exercised.
    chunk_nnz = max(1_024, min(8_192, tensor.nnz // 4))
    row: Dict[str, object] = {"ingest_chunk_nnz": int(chunk_nnz)}
    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as work:
        text_path = os.path.join(work, "cell.tns")
        save_text(counts, text_path)

        best_vectorized = best_loop = float("inf")
        parsed = None
        parse_repeats = max(3, repeats)  # cheap and noise-sensitive
        gc.collect()
        for _ in range(parse_repeats):
            start = perf_counter()
            parsed = load_text(text_path)
            best_vectorized = min(best_vectorized, perf_counter() - start)
        gc.collect()
        for _ in range(parse_repeats):
            start = perf_counter()
            loop_tensor = _parse_text_per_line(text_path)
            best_loop = min(best_loop, perf_counter() - start)
        row["seconds_parse_text"] = best_vectorized
        row["seconds_parse_text_loop"] = best_loop
        row["parse_speedup_vs_loop"] = best_loop / max(best_vectorized, 1e-12)
        row["parse_equals_loop"] = bool(
            np.array_equal(parsed.indices, loop_tensor.indices)
            and np.array_equal(parsed.values, loop_tensor.values)
        )

        incore_dir = os.path.join(work, "incore")
        stream_dir = os.path.join(work, "stream")

        def incore_build():
            parsed.clear_caches()
            start = perf_counter()
            ShardStore.build(parsed, incore_dir, shard_nnz=chunk_nnz)
            return perf_counter() - start

        def streaming_build_run():
            reader = TextEntryReader(text_path)
            start = perf_counter()
            ShardStore.build_streaming(
                reader, stream_dir, shard_nnz=chunk_nnz, chunk_nnz=chunk_nnz
            )
            return perf_counter() - start

        best_incore = best_stream = float("inf")
        for _ in range(max(1, repeats)):
            best_incore = min(best_incore, incore_build())
            best_stream = min(best_stream, streaming_build_run())
        row["seconds_build_incore"] = best_incore
        row["seconds_build_streaming"] = best_stream
        row["streaming_build_equals_incore"] = _directories_identical(
            incore_dir, stream_dir
        )

        _, traced_incore = _run_with_traced_peak(incore_build)
        _, traced_stream = _run_with_traced_peak(streaming_build_run)
        mib = 1024.0 * 1024.0
        row["peak_traced_mb_build_incore"] = traced_incore / mib
        row["peak_traced_mb_build_streaming"] = traced_stream / mib

        npz_path = os.path.join(work, "cell.npz")
        save_npz(counts, npz_path)
        rss_incore = _child_peak_rss_build_mb(
            "build_incore", npz_path, incore_dir, chunk_nnz, chunk_nnz
        )
        rss_stream = _child_peak_rss_build_mb(
            "build_streaming", text_path, stream_dir, chunk_nnz, chunk_nnz
        )
        if rss_incore is not None:
            row["peak_rss_mb_build_incore"] = rss_incore
        if rss_stream is not None:
            row["peak_rss_mb_build_streaming"] = rss_stream
    return row


def _brute_force_error(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    regularization: float = 0.01,
    n_rows: int = 3,
) -> float:
    """Max abs deviation of the contracted kernel from the per-row brute force.

    The brute-force reference walks core cells in pure Python, so it is only
    evaluated on a few rows, each restricted to its own entries via
    ``mode_slice`` (the reference only ever reads the row's Ω anyway).
    """
    context = build_mode_context(tensor, 0)
    updated = [np.array(f, copy=True) for f in factors]
    update_factor_mode(
        tensor, updated, core, 0, regularization, context=context, kernel="contracted"
    )
    worst = 0.0
    for row in context.row_ids[:n_rows]:
        row_tensor = tensor.mode_slice(0, int(row))
        expected = brute_force_row_update(
            row_tensor, list(factors), core, 0, int(row), regularization
        )
        worst = max(worst, float(np.max(np.abs(updated[0][int(row)] - expected))))
    return worst


def run_microbench(
    grid: Optional[Sequence[Dict[str, int]]] = None,
    repeats: int = 3,
    seed: int = 0,
    check_rows: int = 3,
    backends: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the kernel/backend grid and return a JSON-serialisable payload.

    ``backends`` restricts the timed execution backends (default: every
    registered one).  ``seconds_contracted`` remains the serial ``numpy``
    backend, so the kron-vs-contracted speedup column stays comparable
    across the repository's history; the extra per-backend columns and
    ``backend_selected`` (argmin of the measured times — exactly the choice
    the autotuner's measurement rule makes for this shape) sit alongside.
    """
    repeats = max(1, int(repeats))
    grid = tuple(DEFAULT_GRID if grid is None else grid)
    backend_names = list(backends) if backends is not None else available_backends()
    if "numpy" not in backend_names:
        backend_names.insert(0, "numpy")
    rows: List[Dict[str, object]] = []
    for cell_seed, cell in enumerate(grid):
        nnz, rank, order = cell["nnz"], cell["rank"], cell["order"]
        tensor, factors, core = _random_problem(nnz, rank, order, seed + cell_seed)
        seconds_kron = _time_update(tensor, factors, core, "kron", repeats)
        backend_seconds = {
            name: _time_update(
                tensor, factors, core, "contracted", repeats, backend=name
            )
            for name in backend_names
        }
        seconds_contracted = backend_seconds["numpy"]
        selected = min(backend_seconds, key=backend_seconds.get)
        error = _brute_force_error(tensor, factors, core, n_rows=check_rows)
        row: Dict[str, object] = {
            "nnz": int(tensor.nnz),
            "rank": int(rank),
            "order": int(order),
            "seconds_kron": seconds_kron,
            "seconds_contracted": seconds_contracted,
            "speedup": seconds_kron / max(seconds_contracted, 1e-12),
            "backend_selected": selected,
            "max_abs_error_vs_brute_force": error,
        }
        for name, seconds in backend_seconds.items():
            if name == "numpy":
                continue
            row[f"seconds_{name}"] = seconds
            row[f"speedup_{name}_vs_numpy"] = seconds_contracted / max(
                seconds, 1e-12
            )
        row.update(
            _bench_sharded_vs_incore(tensor, factors, core, repeats)
        )
        row.update(_bench_index_dtype(tensor, factors, core, repeats))
        row.update(_bench_ingest(tensor, repeats))
        rows.append(row)
    return {
        "benchmark": "kernel_microbench",
        "kernels": {"baseline": "kron", "candidate": "contracted"},
        "backends": backend_names,
        "repeats": int(repeats),
        "rows": rows,
        "max_abs_error_vs_brute_force": max(
            (row["max_abs_error_vs_brute_force"] for row in rows), default=0.0
        ),
        "environment": {
            **bench_environment(),
            "numba": HAVE_NUMBA,
        },
    }


def write_payload(payload: Dict[str, object], path: str) -> str:
    """Serialise a microbench payload to ``path`` and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
