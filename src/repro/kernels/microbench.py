"""Old-vs-new kernel microbenchmarks across (nnz, rank, order) grids.

Times one full :func:`~repro.core.row_update.update_factor_mode` sweep of
mode 0 with the seed Kronecker kernel (``kernel="kron"``) against the
contraction-ordered kernel (``kernel="contracted"``) on random sparse
problems, and verifies the contracted result against
:func:`~repro.core.row_update.brute_force_row_update` on a handful of rows.

The resulting rows are what ``benchmarks/run_benchmarks.py`` and
``python -m repro.experiments bench-kernels`` serialise into
``BENCH_kernels.json`` — the repository's recorded perf trajectory.

This module deliberately lives outside :mod:`repro.kernels`'s package
exports: it imports the tensor and solver layers, which themselves import
the kernel functions.
"""

from __future__ import annotations

import json
import platform
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.row_update import (
    brute_force_row_update,
    build_mode_context,
    update_factor_mode,
)
from ..tensor.coo import SparseTensor

#: Full default grid: small enough for minutes-scale runs, but it includes
#: the (nnz=100k, rank=10, order=3) cell the perf acceptance gate reads.
DEFAULT_GRID: Tuple[Dict[str, int], ...] = (
    {"nnz": 10_000, "rank": 4, "order": 3},
    {"nnz": 10_000, "rank": 10, "order": 3},
    {"nnz": 100_000, "rank": 10, "order": 3},
    {"nnz": 200_000, "rank": 10, "order": 3},
    {"nnz": 10_000, "rank": 4, "order": 4},
    {"nnz": 10_000, "rank": 6, "order": 4},
    {"nnz": 5_000, "rank": 3, "order": 5},
)

#: Reduced grid for smoke runs (the pytest benchmark and the
#: ``bench_kernel_microbench.py --small`` flag).
SMALL_GRID: Tuple[Dict[str, int], ...] = (
    {"nnz": 2_000, "rank": 4, "order": 3},
    {"nnz": 5_000, "rank": 6, "order": 3},
    {"nnz": 2_000, "rank": 3, "order": 4},
)


def _random_problem(
    nnz: int, rank: int, order: int, seed: int
) -> Tuple[SparseTensor, List[np.ndarray], np.ndarray]:
    """A random sparse tensor with random factors and core for timing."""
    rng = np.random.default_rng(seed)
    dim = max(16, int(round((4.0 * nnz) ** (1.0 / order))))
    shape = (dim,) * order
    # Sample distinct cells so the recorded nnz is exactly the requested one.
    n_cells = dim**order
    flat = rng.choice(n_cells, size=min(nnz, n_cells), replace=False)
    indices = np.stack(np.unravel_index(flat, shape), axis=1).astype(np.int64)
    values = rng.standard_normal(indices.shape[0])
    tensor = SparseTensor(indices, values, shape)
    factors = [rng.uniform(-0.5, 0.5, size=(dim, rank)) for _ in range(order)]
    core = rng.uniform(-0.5, 0.5, size=(rank,) * order)
    return tensor, factors, core


def _time_update(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    kernel: str,
    repeats: int,
    regularization: float = 0.01,
) -> float:
    """Best-of-``repeats`` wall time of one mode-0 factor update."""
    context = build_mode_context(tensor, 0)
    best = float("inf")
    for _ in range(repeats):
        fresh = [np.array(f, copy=True) for f in factors]
        start = perf_counter()
        update_factor_mode(
            tensor, fresh, core, 0, regularization, context=context, kernel=kernel
        )
        best = min(best, perf_counter() - start)
    return best


def _brute_force_error(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    regularization: float = 0.01,
    n_rows: int = 3,
) -> float:
    """Max abs deviation of the contracted kernel from the per-row brute force.

    The brute-force reference walks core cells in pure Python, so it is only
    evaluated on a few rows, each restricted to its own entries via
    ``mode_slice`` (the reference only ever reads the row's Ω anyway).
    """
    context = build_mode_context(tensor, 0)
    updated = [np.array(f, copy=True) for f in factors]
    update_factor_mode(
        tensor, updated, core, 0, regularization, context=context, kernel="contracted"
    )
    worst = 0.0
    for row in context.row_ids[:n_rows]:
        row_tensor = tensor.mode_slice(0, int(row))
        expected = brute_force_row_update(
            row_tensor, list(factors), core, 0, int(row), regularization
        )
        worst = max(worst, float(np.max(np.abs(updated[0][int(row)] - expected))))
    return worst


def run_microbench(
    grid: Optional[Sequence[Dict[str, int]]] = None,
    repeats: int = 3,
    seed: int = 0,
    check_rows: int = 3,
) -> Dict[str, object]:
    """Run the old-vs-new kernel grid and return a JSON-serialisable payload."""
    repeats = max(1, int(repeats))
    grid = tuple(DEFAULT_GRID if grid is None else grid)
    rows: List[Dict[str, object]] = []
    for cell_seed, cell in enumerate(grid):
        nnz, rank, order = cell["nnz"], cell["rank"], cell["order"]
        tensor, factors, core = _random_problem(nnz, rank, order, seed + cell_seed)
        seconds_kron = _time_update(tensor, factors, core, "kron", repeats)
        seconds_contracted = _time_update(tensor, factors, core, "contracted", repeats)
        error = _brute_force_error(tensor, factors, core, n_rows=check_rows)
        rows.append(
            {
                "nnz": int(tensor.nnz),
                "rank": int(rank),
                "order": int(order),
                "seconds_kron": seconds_kron,
                "seconds_contracted": seconds_contracted,
                "speedup": seconds_kron / max(seconds_contracted, 1e-12),
                "max_abs_error_vs_brute_force": error,
            }
        )
    return {
        "benchmark": "kernel_microbench",
        "kernels": {"baseline": "kron", "candidate": "contracted"},
        "repeats": int(repeats),
        "rows": rows,
        "max_abs_error_vs_brute_force": max(
            (row["max_abs_error_vs_brute_force"] for row in rows), default=0.0
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def write_payload(payload: Dict[str, object], path: str) -> str:
    """Serialise a microbench payload to ``path`` and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
