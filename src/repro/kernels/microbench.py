"""Kernel and backend microbenchmarks across (nnz, rank, order) grids.

Times one full :func:`~repro.core.row_update.update_factor_mode` sweep of
mode 0 with the seed Kronecker kernel (``kernel="kron"``) against the
contraction-ordered kernel (``kernel="contracted"``) under every available
execution backend (``numpy``, ``threaded``, ``numba`` where installed — see
:mod:`repro.kernels.backends`), and verifies the contracted result against
:func:`~repro.core.row_update.brute_force_row_update` on a handful of rows.

Each row records per-backend wall times (``seconds_<backend>``), the
measured-fastest backend (``backend_selected`` — by construction never a
backend that measured slower), and the machine facts that make timings
comparable across refreshes: CPU count and the BLAS thread count.

The resulting rows are what ``benchmarks/run_benchmarks.py`` and
``python -m repro.experiments bench-kernels`` serialise into
``BENCH_kernels.json`` — the repository's recorded perf trajectory.

This module deliberately lives outside :mod:`repro.kernels`'s package
exports: it imports the tensor and solver layers, which themselves import
the kernel functions.
"""

from __future__ import annotations

import json
import os
import platform
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.row_update import (
    brute_force_row_update,
    build_mode_context,
    update_factor_mode,
)
from ..tensor.coo import SparseTensor
from .backends import HAVE_NUMBA, available_backends

#: Full default grid: small enough for minutes-scale runs, but it includes
#: the (nnz=100k, rank=10, order=3) cell the perf acceptance gate reads.
DEFAULT_GRID: Tuple[Dict[str, int], ...] = (
    {"nnz": 10_000, "rank": 4, "order": 3},
    {"nnz": 10_000, "rank": 10, "order": 3},
    {"nnz": 100_000, "rank": 10, "order": 3},
    {"nnz": 200_000, "rank": 10, "order": 3},
    {"nnz": 10_000, "rank": 4, "order": 4},
    {"nnz": 10_000, "rank": 6, "order": 4},
    {"nnz": 5_000, "rank": 3, "order": 5},
)

#: Reduced grid for smoke runs (the pytest benchmark and the
#: ``bench_kernel_microbench.py --small`` flag).
SMALL_GRID: Tuple[Dict[str, int], ...] = (
    {"nnz": 2_000, "rank": 4, "order": 3},
    {"nnz": 5_000, "rank": 6, "order": 3},
    {"nnz": 2_000, "rank": 3, "order": 4},
)


def blas_thread_count() -> Optional[int]:
    """Threads the BLAS layer uses, best effort (None when undeterminable).

    Tries ``threadpoolctl`` (authoritative) first, then the conventional
    environment variables; recorded per benchmark run because BLAS
    threading changes what a fair per-backend comparison means.
    """
    try:
        from threadpoolctl import threadpool_info

        counts = [
            info.get("num_threads")
            for info in threadpool_info()
            if info.get("user_api") == "blas"
        ]
        counts = [c for c in counts if c]
        if counts:
            return max(counts)
    except ImportError:
        pass
    for variable in (
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
        "OMP_NUM_THREADS",
    ):
        value = os.environ.get(variable, "").strip()
        if value.isdigit():
            return int(value)
    return None


def _random_problem(
    nnz: int, rank: int, order: int, seed: int
) -> Tuple[SparseTensor, List[np.ndarray], np.ndarray]:
    """A random sparse tensor with random factors and core for timing."""
    rng = np.random.default_rng(seed)
    dim = max(16, int(round((4.0 * nnz) ** (1.0 / order))))
    shape = (dim,) * order
    # Sample distinct cells so the recorded nnz is exactly the requested one.
    n_cells = dim**order
    flat = rng.choice(n_cells, size=min(nnz, n_cells), replace=False)
    indices = np.stack(np.unravel_index(flat, shape), axis=1).astype(np.int64)
    values = rng.standard_normal(indices.shape[0])
    tensor = SparseTensor(indices, values, shape)
    factors = [rng.uniform(-0.5, 0.5, size=(dim, rank)) for _ in range(order)]
    core = rng.uniform(-0.5, 0.5, size=(rank,) * order)
    return tensor, factors, core


def _time_update(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    kernel: str,
    repeats: int,
    regularization: float = 0.01,
    backend: str = "numpy",
) -> float:
    """Best-of-``repeats`` wall time of one mode-0 factor update."""
    context = build_mode_context(tensor, 0)
    best = float("inf")
    for _ in range(repeats):
        fresh = [np.array(f, copy=True) for f in factors]
        start = perf_counter()
        update_factor_mode(
            tensor,
            fresh,
            core,
            0,
            regularization,
            context=context,
            kernel=kernel,
            backend=backend,
        )
        best = min(best, perf_counter() - start)
    return best


def _brute_force_error(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    regularization: float = 0.01,
    n_rows: int = 3,
) -> float:
    """Max abs deviation of the contracted kernel from the per-row brute force.

    The brute-force reference walks core cells in pure Python, so it is only
    evaluated on a few rows, each restricted to its own entries via
    ``mode_slice`` (the reference only ever reads the row's Ω anyway).
    """
    context = build_mode_context(tensor, 0)
    updated = [np.array(f, copy=True) for f in factors]
    update_factor_mode(
        tensor, updated, core, 0, regularization, context=context, kernel="contracted"
    )
    worst = 0.0
    for row in context.row_ids[:n_rows]:
        row_tensor = tensor.mode_slice(0, int(row))
        expected = brute_force_row_update(
            row_tensor, list(factors), core, 0, int(row), regularization
        )
        worst = max(worst, float(np.max(np.abs(updated[0][int(row)] - expected))))
    return worst


def run_microbench(
    grid: Optional[Sequence[Dict[str, int]]] = None,
    repeats: int = 3,
    seed: int = 0,
    check_rows: int = 3,
    backends: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the kernel/backend grid and return a JSON-serialisable payload.

    ``backends`` restricts the timed execution backends (default: every
    registered one).  ``seconds_contracted`` remains the serial ``numpy``
    backend, so the kron-vs-contracted speedup column stays comparable
    across the repository's history; the extra per-backend columns and
    ``backend_selected`` (argmin of the measured times — exactly the choice
    the autotuner's measurement rule makes for this shape) sit alongside.
    """
    repeats = max(1, int(repeats))
    grid = tuple(DEFAULT_GRID if grid is None else grid)
    backend_names = list(backends) if backends is not None else available_backends()
    if "numpy" not in backend_names:
        backend_names.insert(0, "numpy")
    rows: List[Dict[str, object]] = []
    for cell_seed, cell in enumerate(grid):
        nnz, rank, order = cell["nnz"], cell["rank"], cell["order"]
        tensor, factors, core = _random_problem(nnz, rank, order, seed + cell_seed)
        seconds_kron = _time_update(tensor, factors, core, "kron", repeats)
        backend_seconds = {
            name: _time_update(
                tensor, factors, core, "contracted", repeats, backend=name
            )
            for name in backend_names
        }
        seconds_contracted = backend_seconds["numpy"]
        selected = min(backend_seconds, key=backend_seconds.get)
        error = _brute_force_error(tensor, factors, core, n_rows=check_rows)
        row: Dict[str, object] = {
            "nnz": int(tensor.nnz),
            "rank": int(rank),
            "order": int(order),
            "seconds_kron": seconds_kron,
            "seconds_contracted": seconds_contracted,
            "speedup": seconds_kron / max(seconds_contracted, 1e-12),
            "backend_selected": selected,
            "max_abs_error_vs_brute_force": error,
        }
        for name, seconds in backend_seconds.items():
            if name == "numpy":
                continue
            row[f"seconds_{name}"] = seconds
            row[f"speedup_{name}_vs_numpy"] = seconds_contracted / max(
                seconds, 1e-12
            )
        rows.append(row)
    return {
        "benchmark": "kernel_microbench",
        "kernels": {"baseline": "kron", "candidate": "contracted"},
        "backends": backend_names,
        "repeats": int(repeats),
        "rows": rows,
        "max_abs_error_vs_brute_force": max(
            (row["max_abs_error_vs_brute_force"] for row in rows), default=0.0
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "blas_threads": blas_thread_count(),
            "numba": HAVE_NUMBA,
        },
    }


def write_payload(payload: Dict[str, object], path: str) -> str:
    """Serialise a microbench payload to ``path`` and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
