"""Batched per-row ridge solves (Eq. 9)."""

from __future__ import annotations

import numpy as np


def solve_rows(
    b_matrices: np.ndarray, c_vectors: np.ndarray, regularization: float
) -> np.ndarray:
    """Solve ``(B + λ I) aᵀ = c`` for every row at once (Eq. 9).

    ``B + λI`` is symmetric positive definite for λ > 0 (B is a Gram matrix),
    so the batched solve is well posed; a tiny ridge is added in the λ = 0
    corner case to keep the solve finite when a row is rank deficient.
    """
    n_rows, rank, _ = b_matrices.shape
    ridge = regularization if regularization > 0 else 1e-12
    systems = b_matrices + ridge * np.eye(rank)[None, :, :]
    try:
        solutions = np.linalg.solve(systems, c_vectors[:, :, None])
    except np.linalg.LinAlgError:
        solutions = np.empty((n_rows, rank, 1))
        for row in range(n_rows):
            solutions[row, :, 0] = np.linalg.lstsq(
                systems[row], c_vectors[row], rcond=None
            )[0]
    return solutions[:, :, 0]
