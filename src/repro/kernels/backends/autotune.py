"""Autotuned per-block backend dispatch.

Which backend wins depends on the *shape class* of the work — tensor
order, core rank profile, and how many entries a block carries — not on
the data values.  The :class:`Autotuner` therefore times the candidate
backends once per shape class on a real calibration block, caches the
winner, and answers every later block of that class from the cache.

Two cache layers:

* an in-process dict (always on) — one calibration per shape class per
  process;
* an optional JSON file (``cache_path`` or the ``REPRO_AUTOTUNE_CACHE``
  environment variable) that persists winners across processes, so e.g.
  the process-pool workers of :mod:`repro.parallel.executor` or repeated
  CLI runs skip recalibration.

Calibration is not thrown away: every candidate computes the block's
actual ``(B, c)`` result while being timed, and the winner's result is
returned to the caller, so the first block of a shape class costs one
extra pass per losing candidate and nothing more.  The winner is chosen
purely by measurement — a backend that measures slower on the calibration
block is never selected for that shape class.
"""

from __future__ import annotations

import json
import os
from time import perf_counter
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from .base import (
    KernelBackend,
    NormalEquationsKernel,
    available_backends,
    get_backend,
)

#: Shape classes bucket block sizes by power of two: a 90k-entry and a
#: 100k-entry block behave identically, a 1k and a 100k block do not.
def block_size_bucket(n_entries: int) -> int:
    """Power-of-two bucket of a block's entry count (0 for empty blocks)."""
    if n_entries <= 0:
        return 0
    return 1 << (int(n_entries) - 1).bit_length()


def shape_class_key(
    order: int, core_shape: Sequence[int], n_entries: int
) -> str:
    """Cache key of one (order, rank profile, block-size bucket) class."""
    ranks = "x".join(str(int(r)) for r in core_shape)
    return f"order={order}|ranks={ranks}|block={block_size_bucket(n_entries)}"


def _measure(
    kernel: NormalEquationsKernel,
    args: Tuple[np.ndarray, np.ndarray, np.ndarray],
    repeats: int,
) -> Tuple[float, Tuple[np.ndarray, np.ndarray]]:
    """Best-of-``repeats`` wall time of one kernel call, plus its result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = perf_counter()
        result = kernel(*args)
        best = min(best, perf_counter() - start)
    return best, result


class Autotuner:
    """Per-shape-class winner cache over measured backend timings.

    Parameters
    ----------
    cache_path:
        Optional JSON file persisting ``{shape class: winner}`` across
        processes.  Missing or unreadable files are treated as empty; the
        file is rewritten after every new calibration.
    timer:
        Measurement hook with the signature of :func:`_measure`; tests
        substitute a stub to make timing deterministic.
    repeats:
        Timing repeats per candidate (best-of).
    """

    def __init__(
        self,
        cache_path: Optional[str] = None,
        timer: Callable = _measure,
        repeats: int = 2,
    ) -> None:
        self.cache_path = cache_path
        self.repeats = int(repeats)
        self._timer = timer
        self._choices: Dict[str, str] = {}
        self._timings: Dict[str, Dict[str, float]] = {}
        if cache_path:
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.cache_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            choices = payload.get("choices", {})
            if isinstance(choices, dict):
                self._choices.update(
                    {str(k): str(v) for k, v in choices.items()}
                )
        except (OSError, ValueError):
            pass

    def _save(self) -> None:
        if not self.cache_path:
            return
        payload = {"choices": self._choices, "timings": self._timings}
        try:
            with open(self.cache_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError:
            pass

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[str]:
        """The cached winner of a shape class, or None if never calibrated."""
        return self._choices.get(key)

    def pick(
        self,
        key: str,
        candidates: Dict[str, NormalEquationsKernel],
        args: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> Tuple[str, Optional[Tuple[np.ndarray, np.ndarray]]]:
        """Winner name for ``key``; calibrate on ``args`` at most once.

        On a cache hit returns ``(name, None)`` without invoking the timer
        — the caller runs the winner itself.  On a miss, every candidate
        is timed on the calibration block and ``(name, winner_result)`` is
        returned so the calibration work is not repeated.
        """
        cached = self._choices.get(key)
        if cached in candidates:
            return cached, None
        timings: Dict[str, float] = {}
        results = {}
        for name, kernel in candidates.items():
            timings[name], results[name] = self._timer(
                kernel, args, self.repeats
            )
        winner = min(timings, key=timings.get)
        self._choices[key] = winner
        self._timings[key] = timings
        self._save()
        return winner, results[winner]

    def timings(self, key: str) -> Dict[str, float]:
        """Calibration timings recorded for a shape class (this process)."""
        return dict(self._timings.get(key, {}))


class AutoBackend(KernelBackend):
    """Backend that dispatches each block to the autotuned winner.

    The candidate set defaults to every registered backend; per block the
    tuner's winner for the block's shape class executes.  Per-sweep kernel
    setup (precontraction tables, JIT specialisation) happens lazily per
    candidate, so once a shape class has a cached winner only the winner
    pays it.
    """

    name = "auto"

    def __init__(
        self,
        tuner: Optional[Autotuner] = None,
        candidates: Optional[Sequence[str]] = None,
    ) -> None:
        self.tuner = tuner if tuner is not None else Autotuner()
        self.candidates = (
            list(candidates) if candidates is not None else available_backends()
        )

    def make_normal_equations_kernel(
        self,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
        expected_entries: int,
    ) -> NormalEquationsKernel:
        core_shape = tuple(np.asarray(core).shape)
        order = len(factors)
        # Candidate kernels are built on demand: after the tuner has a
        # winner for a shape class, the losers' per-sweep setup (identical
        # precontraction tables, JIT specialisation) is never repeated.
        built: Dict[str, NormalEquationsKernel] = {}

        def kernel_for(name: str) -> NormalEquationsKernel:
            if name not in built:
                built[name] = get_backend(name).make_normal_equations_kernel(
                    factors, core, mode, expected_entries
                )
            return built[name]

        def kernel(
            indices_block: np.ndarray,
            values_block: np.ndarray,
            starts: np.ndarray,
        ):
            key = shape_class_key(order, core_shape, indices_block.shape[0])
            cached = self.tuner.lookup(key)
            if cached in self.candidates:
                return kernel_for(cached)(indices_block, values_block, starts)
            winner, result = self.tuner.pick(
                key,
                {name: kernel_for(name) for name in self.candidates},
                (indices_block, values_block, starts),
            )
            if result is not None:
                return result
            return kernel_for(winner)(indices_block, values_block, starts)

        return kernel


_DEFAULT_AUTO: Optional[AutoBackend] = None


def default_auto_backend() -> AutoBackend:
    """The shared ``backend="auto"`` dispatcher (one tuner per process).

    Its persistent cache file comes from the ``REPRO_AUTOTUNE_CACHE``
    environment variable when set; otherwise winners live only in this
    process.
    """
    global _DEFAULT_AUTO
    if _DEFAULT_AUTO is None:
        cache_path = os.environ.get("REPRO_AUTOTUNE_CACHE") or None
        _DEFAULT_AUTO = AutoBackend(tuner=Autotuner(cache_path=cache_path))
    return _DEFAULT_AUTO
