"""Call-time JIT degradation: fall back to numpy once, warn once.

The numba backend registers whenever ``import numba`` succeeds, but JIT
*compilation* happens lazily at the first kernel call and can still fail
there — an unsupported LLVM/CPU combination, a broken cache directory, a
numba/numpy version skew.  Crashing mid-sweep over a billion-entry store
for a performance option is unacceptable, so the backend routes every
jitted call through a :class:`JitCallGuard`: the first failure emits one
:class:`RuntimeWarning` and flips the guard, and that call plus every
later one is served by the reference
:class:`~repro.kernels.backends.base.NumpyBackend` — which produces
bitwise-identical results, so the fit continues as if nothing happened,
only slower.
"""

from __future__ import annotations

import warnings
from typing import Optional


class JitCallGuard:
    """One-time degrade switch shared by a JIT backend's kernel calls.

    ``failed`` starts False; :meth:`note_failure` warns once (naming the
    backend and the underlying error) and latches it.  Callers check the
    flag before dispatching to the JIT and route to :meth:`fallback`
    afterwards — the guard caches one NumpyBackend so repeated fallback
    calls cost nothing extra.
    """

    def __init__(self, backend_name: str = "numba") -> None:
        self.backend_name = backend_name
        self.failed = False
        self._fallback = None
        self.last_error: Optional[BaseException] = None

    def fallback(self):
        """The cached numpy reference backend serving degraded calls."""
        if self._fallback is None:
            from .base import NumpyBackend

            self._fallback = NumpyBackend()
        return self._fallback

    def note_failure(self, exc: BaseException) -> None:
        """Record a JIT failure; warn on the first one only."""
        self.last_error = exc
        if self.failed:
            return
        self.failed = True
        warnings.warn(
            f"{self.backend_name} JIT compilation failed at call time "
            f"({type(exc).__name__}: {exc}); degrading to the numpy "
            "kernels for the rest of this process — results are "
            "bitwise-identical, only slower",
            RuntimeWarning,
            stacklevel=3,
        )
